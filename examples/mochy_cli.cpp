// mochy_cli — command-line front end over the library, for working with
// datasets on disk. Two formats are accepted everywhere a dataset is
// loaded (sniffed by magic bytes): the Benson et al. text format (one
// hyperedge per line) and the binary ".mhg" container
// (hypergraph/binary_format.h; `convert` switches between them).
//
// Usage:
//   mochy_cli stats   <file>                      Table 2 statistics
//   mochy_cli count   <file> [--algorithm A] [--ratio R] [--samples N]
//                            [--seed S] [--threads N]
//                            [--projection materialized|lazy|auto]
//                            [--memory-budget BYTES[K|M|G]]
//                            [--spill-dir DIR]
//                                                 h-motif counts/estimates
//                                                 via the MotifEngine;
//                                                 A = exact|edge-sample|
//                                                     link-sample|weighted|
//                                                     auto;
//                                                 --projection lazy samples
//                                                 without materializing the
//                                                 projected graph, keeping
//                                                 memoized neighborhoods
//                                                 within --memory-budget
//                                                 (see docs/MEMORY.md)
//   mochy_cli sample  <file> [flags]              alias for
//                                                 count --algorithm link-sample
//   mochy_cli profile <file> [--random K] [--seed S] [--threads N]
//                            [--sample-ratio R] [--epsilon E]
//                            [--null chung-lu|perturb]
//                                                 batched CP pipeline:
//                                                 real + K null graphs are
//                                                 counted in one BatchRunner
//                                                 pass; prints Δt, CP, the
//                                                 Table 3 RC/RD columns and
//                                                 the batch statistics.
//                                                 R < 0 (default) counts
//                                                 exactly; otherwise
//                                                 MoCHy-A+ with R·|∧| wedge
//                                                 samples per graph
//   mochy_cli enumerate <file> [--limit N]        list instances
//   mochy_cli per-edge <file> [--threads N]       exact per-edge motif
//                                                 participation rows
//                                                 (engine CountPerEdge);
//                                                 one "row <e> <26 counts>"
//                                                 line per hyperedge,
//                                                 hex-float encoded —
//                                                 byte-identical to a served
//                                                 per-edge query body
//   mochy_cli predict <history> <candidates> [--replace F] [--seed S]
//                                            [--threads N]
//                                                 Table-4 hyperedge
//                                                 prediction: fabricate one
//                                                 fake per candidate, train
//                                                 the five reference
//                                                 classifiers on HM26/HM7/HC
//                                                 features; byte-identical
//                                                 to a served predict body
//   mochy_cli generate <domain> <file> [--scale X] [--seed S]
//                                                 write a synthetic dataset
//   mochy_cli stream  <trace> [--window W | --window sliding:W]
//                             [--mode cumulative|tumbling|sliding]
//                             [--horizon H] [--threads N] [--wal PATH]
//                                                 replay a temporal trace
//                                                 (lines: "time v1 v2 ...")
//                                                 through the incremental
//                                                 StreamingEngine; prints
//                                                 one row per window and
//                                                 the final exact counts.
//                                                 sliding evicts arrivals
//                                                 older than H (default W)
//                                                 via the decremental pass.
//                                                 --wal (cumulative only)
//                                                 makes the stream crash-safe:
//                                                 arrivals are logged and
//                                                 fsync'd before applying, a
//                                                 restart recovers the durable
//                                                 prefix bit-identically and
//                                                 resumes the trace from there
//                                                 (motif/streaming_wal.h;
//                                                 docs/OPERATIONS.md)
//   mochy_cli gen-trace <file> [--years N] [--scale X] [--seed S]
//                                                 write a temporal
//                                                 co-authorship trace
//   mochy_cli convert <in> <out>                  re-encode a dataset:
//                                                 out ending in .mhg writes
//                                                 the mmap-able binary
//                                                 container, anything else
//                                                 the text format
//                                                 (docs/STORAGE.md)
//   mochy_cli serve   [--socket PATH | --port N] [--cache-budget BYTES[K|M|G]]
//                     [--load NAME=FILE ...] [--max-connections N]
//                     [--io-timeout MS]
//                                                 run the resident MotifServer
//                                                 (src/serve/): loaded graphs
//                                                 stay in memory, queries are
//                                                 answered through a
//                                                 byte-budgeted result cache;
//                                                 blocks until a shutdown
//                                                 query arrives
//   mochy_cli query <action> [args] --socket PATH | --port N
//                   [--connect-timeout MS] [--io-timeout MS] [--retries N]
//                                                 one query against a running
//                                                 server (N > 1 retries
//                                                 transient failures with
//                                                 jittered exponential
//                                                 backoff); actions:
//                                                   count <name> [count flags]
//                                                   profile <name> [profile
//                                                                   flags]
//                                                   similarity <name1> <name2>
//                                                              [profile flags]
//                                                   per-edge <name>
//                                                            [--threads N]
//                                                   predict <hist> <cands>
//                                                           [--replace F]
//                                                           [--seed S]
//                                                           [--threads N]
//                                                   load <name> <file>
//                                                   stats
//                                                   shutdown
//                                                 count/profile output is
//                                                 formatted exactly like the
//                                                 offline commands (served
//                                                 counts are bit-identical),
//                                                 plus a trailing
//                                                 "cached: yes|no" line
//
// Exit status: 0 on success, 1 on usage errors, 2 on I/O or data errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/parse.h"
#include "gen/generators.h"
#include "gen/temporal.h"
#include "hypergraph/binary_format.h"
#include "hypergraph/io.h"
#include "hypergraph/stats.h"
#include "hypergraph/temporal_trace.h"
#include "motif/engine.h"
#include "motif/enumerate.h"
#include "motif/streaming.h"
#include "motif/streaming_wal.h"
#include "profile/significance.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/render.h"
#include "serve/server.h"

namespace {

using namespace mochy;

struct Flags {
  Algorithm algorithm = Algorithm::kExact;
  ProjectionPolicy projection = ProjectionPolicy::kAuto;
  uint64_t memory_budget = 0;  // bytes; 0 = unbounded
  double ratio = 0.05;
  uint64_t samples = 0;  // 0 = derive from --ratio
  uint64_t seed = 1;
  size_t threads = 0;  // 0 = DefaultThreadCount()
  int random_graphs = 5;
  double sample_ratio = -1.0;  // profile: < 0 = exact counting
  double epsilon = 1.0;
  NullModel null_model = NullModel::kChungLu;
  size_t limit = 50;
  double scale = 0.25;
  double replace = 0.5;  // predict: fake-fabrication member replacement
  uint64_t window = 1;
  uint64_t horizon = 0;  // 0: window width (see ReplayOptions::horizon)
  WindowMode mode = WindowMode::kCumulative;
  size_t years = 33;
  std::string wal;  // stream: WAL path; empty = in-memory only
  std::string spill_dir;  // count/sample: lazy disk tier; empty = off
  // serve/query
  std::string socket;                // unix-domain socket path
  int port = 0;                      // loopback TCP port (when no socket)
  uint64_t cache_budget = 64ull << 20;
  std::vector<std::pair<std::string, std::string>> loads;  // name -> file
  int io_timeout_ms = 10'000;        // per-frame deadline (0 = none)
  int connect_timeout_ms = 5'000;    // query: dial deadline (0 = none)
  size_t max_connections = 256;      // serve: overload cap (0 = uncapped)
  int retries = 1;                   // query: attempts for transient failures
};

/// Prints "<flag>: <error>" and returns false (ParseFlags's failure path).
bool BadFlag(const std::string& key, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", key.c_str(), status.ToString().c_str());
  return false;
}

/// Parses trailing --key value flags; returns false on unknown flags and
/// on values that fail validation (junk, wrong sign, out of range —
/// common/parse.h semantics; nothing is silently coerced to 0).
bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; i += 2) {
    const std::string key = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", key.c_str());
      return false;
    }
    const char* value = argv[i + 1];
    if (key == "--algorithm") {
      auto parsed = ParseAlgorithm(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->algorithm = parsed.value();
    } else if (key == "--projection") {
      auto parsed = ParseProjectionPolicy(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->projection = parsed.value();
    } else if (key == "--memory-budget") {
      auto parsed = ParseMemoryBudget(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->memory_budget = parsed.value();
    } else if (key == "--ratio") {
      auto parsed = ParsePositiveDouble(value, "--ratio");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->ratio = parsed.value();
    } else if (key == "--samples") {
      auto parsed = ParseUint64(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->samples = parsed.value();
    } else if (key == "--seed") {
      auto parsed = ParseUint64(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->seed = parsed.value();
    } else if (key == "--threads") {
      auto parsed = ParseUint64InRange(value, 0, 4096, "--threads");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->threads = static_cast<size_t>(parsed.value());
    } else if (key == "--random") {
      auto parsed = ParseUint64InRange(value, 1, 100000, "--random");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->random_graphs = static_cast<int>(parsed.value());
    } else if (key == "--sample-ratio") {
      // Any finite value: < 0 selects exact counting.
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->sample_ratio = parsed.value();
    } else if (key == "--epsilon") {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->epsilon = parsed.value();
    } else if (key == "--null") {
      const std::string model = value;
      if (model == "chung-lu") {
        flags->null_model = NullModel::kChungLu;
      } else if (model == "perturb") {
        flags->null_model = NullModel::kPerturb;
      } else {
        std::fprintf(stderr, "unknown null model '%s' (want chung-lu|perturb)\n",
                     value);
        return false;
      }
    } else if (key == "--replace") {
      auto parsed = ParsePositiveDouble(value, "--replace");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      if (parsed.value() > 1.0) {
        std::fprintf(stderr, "--replace must be in (0, 1], got %s\n", value);
        return false;
      }
      flags->replace = parsed.value();
    } else if (key == "--limit") {
      auto parsed = ParseUint64(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->limit = static_cast<size_t>(parsed.value());
    } else if (key == "--scale") {
      auto parsed = ParsePositiveDouble(value, "--scale");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->scale = parsed.value();
    } else if (key == "--window") {
      // "--window sliding:W" is shorthand for "--mode sliding --window W".
      std::string_view width = value;
      if (width.rfind("sliding:", 0) == 0) {
        flags->mode = WindowMode::kSliding;
        width.remove_prefix(std::strlen("sliding:"));
      }
      auto parsed = ParseUint64InRange(width, 1, UINT64_MAX, "--window");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->window = parsed.value();
    } else if (key == "--mode") {
      const std::string mode = value;
      if (mode == "cumulative") {
        flags->mode = WindowMode::kCumulative;
      } else if (mode == "tumbling") {
        flags->mode = WindowMode::kTumbling;
      } else if (mode == "sliding") {
        flags->mode = WindowMode::kSliding;
      } else {
        std::fprintf(
            stderr, "unknown mode '%s' (want cumulative|tumbling|sliding)\n",
            value);
        return false;
      }
    } else if (key == "--horizon") {
      auto parsed = ParseUint64InRange(value, 1, UINT64_MAX, "--horizon");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->horizon = parsed.value();
    } else if (key == "--years") {
      auto parsed = ParseUint64InRange(value, 1, 1000, "--years");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->years = static_cast<size_t>(parsed.value());
    } else if (key == "--wal") {
      flags->wal = value;
    } else if (key == "--spill-dir") {
      flags->spill_dir = value;
    } else if (key == "--io-timeout") {
      auto parsed = ParseUint64InRange(value, 0, 86'400'000, "--io-timeout");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->io_timeout_ms = static_cast<int>(parsed.value());
    } else if (key == "--connect-timeout") {
      auto parsed =
          ParseUint64InRange(value, 0, 86'400'000, "--connect-timeout");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->connect_timeout_ms = static_cast<int>(parsed.value());
    } else if (key == "--max-connections") {
      auto parsed =
          ParseUint64InRange(value, 0, 1'000'000, "--max-connections");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->max_connections = static_cast<size_t>(parsed.value());
    } else if (key == "--retries") {
      auto parsed = ParseUint64InRange(value, 1, 1000, "--retries");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->retries = static_cast<int>(parsed.value());
    } else if (key == "--socket") {
      flags->socket = value;
    } else if (key == "--port") {
      auto parsed = ParseUint64InRange(value, 1, 65535, "--port");
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->port = static_cast<int>(parsed.value());
    } else if (key == "--cache-budget") {
      auto parsed = ParseMemoryBudget(value);
      if (!parsed.ok()) return BadFlag(key, parsed.status());
      flags->cache_budget = parsed.value();
    } else if (key == "--load") {
      const std::string spec = value;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--load wants NAME=FILE, got '%s'\n", value);
        return false;
      }
      flags->loads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mochy_cli <stats|count|sample|profile|enumerate|"
               "per-edge> <file> [flags]\n"
               "       mochy_cli predict <history-file> <candidates-file> "
               "[--replace F] [--seed S] [--threads N]\n"
               "       mochy_cli generate <coauth|contact|email|tags|threads>"
               " <file> [flags]\n"
               "       mochy_cli stream <trace-file> [flags]\n"
               "       mochy_cli gen-trace <file> [flags]\n"
               "       mochy_cli convert <in-file> <out-file> (out .mhg = "
               "binary container, else text)\n"
               "       mochy_cli serve [--socket PATH | --port N] "
               "[--cache-budget B] [--load NAME=FILE ...] "
               "[--max-connections N] [--io-timeout MS]\n"
               "       mochy_cli query "
               "<count|profile|similarity|per-edge|predict|load|stats|"
               "shutdown> [args] "
               "--socket PATH | --port N "
               "[--connect-timeout MS] [--io-timeout MS] [--retries N]\n"
               "flags: --algorithm exact|edge-sample|link-sample|weighted|auto "
               "--ratio R --samples N --seed S --threads N (0 = all cores)\n"
               "       count/sample: --projection materialized|lazy|auto "
               "--memory-budget BYTES[K|M|G] (memory-bounded sampling) "
               "--spill-dir DIR (lazy disk tier, docs/STORAGE.md)\n"
               "       profile: --random K --sample-ratio R --epsilon E "
               "--null chung-lu|perturb\n"
               "       stream: --window W|sliding:W "
               "--mode cumulative|tumbling|sliding --horizon H "
               "--wal PATH (crash-safe, cumulative only); "
               "gen-trace: --years N --scale X\n");
  return 1;
}

// Every dataset-loading command accepts both on-disk formats: the magic
// bytes pick the binary ".mhg" container or the text importer.
Result<Hypergraph> Load(const char* path) { return LoadHypergraphAuto(path); }

/// `convert <in> <out>`: re-encodes a dataset between the text format and
/// the binary ".mhg" container. The input format is sniffed; the output
/// format follows the output extension (".mhg" = binary, else text).
int RunConvert(const char* in_path, const char* out_path) {
  auto graph = Load(in_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 2;
  }
  const std::string_view out = out_path;
  const bool binary = out.size() >= 4 && out.substr(out.size() - 4) == ".mhg";
  const Status saved = binary
                           ? SaveHypergraphBinary(graph.value(), out_path)
                           : SaveHypergraph(graph.value(), out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 2;
  }
  std::printf("converted %s -> %s (%s, %zu nodes, %zu edges, %llu pins)\n",
              in_path, out_path, binary ? "binary" : "text",
              graph.value().num_nodes(), graph.value().num_edges(),
              static_cast<unsigned long long>(graph.value().num_pins()));
  return 0;
}

int RunStats(const Hypergraph& graph, const Flags& flags) {
  const DatasetStats stats = ComputeStats(graph, flags.threads);
  std::printf("%-18s %9s %9s %6s %6s %12s %9s\n", "dataset", "|V|", "|E|",
              "max|e|", "avg|e|", "|wedges|", "maxdeg");
  std::printf("%s\n", FormatStatsRow("(input)", stats).c_str());
  return 0;
}

/// Both `count` and `sample` run through the engine; they differ only in
/// the default algorithm.
int RunEngine(const Hypergraph& graph, const Flags& flags) {
  EngineOptions options;
  options.algorithm = flags.algorithm;
  options.num_threads = flags.threads;
  options.num_samples = flags.samples;
  options.sampling_ratio = flags.ratio;
  options.seed = flags.seed;
  options.projection = flags.projection;
  options.memory_budget = flags.memory_budget;
  options.spill_dir = flags.spill_dir;
  auto engine = MotifEngine::Create(graph, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 2;
  }
  auto result = engine.value().Count(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  const MotifCounts& counts = result.value().counts;
  std::printf("%s\n", result.value().stats.ToString().c_str());
  std::printf("%s", counts.ToString().c_str());
  std::printf("total: %.0f (open %.0f, closed %.0f)\n", counts.Total(),
              counts.TotalOpen(), counts.TotalClosed());
  return 0;
}

/// The Δ/CP/RC/RD table shared by the offline profile command and the
/// query-mode printer (which re-derives the rows from served counts with
/// the same pure functions, so both print bit-identical tables).
void PrintProfileTable(const MotifCounts& real, const MotifCounts& random_mean,
                       double epsilon) {
  const ProfileVector delta = ComputeSignificance(real, random_mean, epsilon);
  const ProfileVector cp = NormalizeProfile(delta);
  const ProfileVector rc = RelativeCounts(real, random_mean);
  const std::array<int, kNumHMotifs> rd = RankDifference(real, random_mean);
  std::printf("%7s %12s %12s %8s %8s %8s %4s\n", "h-motif", "real", "random",
              "delta", "CP", "RC", "RD");
  for (int t = 1; t <= kNumHMotifs; ++t) {
    std::printf("%7d %12.4g %12.4g %+8.3f %+8.3f %+8.3f %4d\n", t,
                real[t], random_mean[t], delta[t - 1], cp[t - 1], rc[t - 1],
                rd[t - 1]);
  }
}

int RunProfile(const Hypergraph& graph, const Flags& flags) {
  CharacteristicProfileOptions options;
  options.num_random_graphs = flags.random_graphs;
  options.seed = flags.seed;
  options.num_threads = flags.threads;
  options.sample_ratio = flags.sample_ratio;
  options.epsilon = flags.epsilon;
  options.null_model = flags.null_model;
  auto profile = ComputeCharacteristicProfile(graph, options);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 2;
  }
  const CharacteristicProfile& p = profile.value();
  PrintProfileTable(p.real_counts, p.random_mean, flags.epsilon);
  std::printf("batch: %s\n", p.batch.ToString().c_str());
  return 0;
}

int RunEnumerate(const Hypergraph& graph, const Flags& flags) {
  auto projection = ProjectedGraph::Build(graph, flags.threads);
  if (!projection.ok()) {
    std::fprintf(stderr, "%s\n", projection.status().ToString().c_str());
    return 2;
  }
  size_t printed = 0;
  EnumerateInstances(graph, projection.value(),
                     [&](const MotifInstance& inst) {
                       if (printed >= flags.limit) return;
                       ++printed;
                       std::printf("{%u, %u, %u} -> h-motif %d\n", inst.i,
                                   inst.j, inst.k, inst.motif);
                     });
  std::printf("(printed %zu instances; --limit to change)\n", printed);
  return 0;
}

int RunPerEdge(const Hypergraph& graph, const Flags& flags) {
  EngineOptions options;
  options.num_threads = flags.threads;
  options.projection = ProjectionPolicy::kMaterialized;
  auto engine = MotifEngine::Create(graph, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 2;
  }
  auto result = engine.value().CountPerEdge(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  // The renderer is shared with the server, so this output is
  // byte-identical to a served per-edge body (CI diffs them).
  std::printf("%s", RenderPerEdgeBody(result.value().rows).c_str());
  return 0;
}

int RunPredict(const char* history_path, const char* candidates_path,
               const Flags& flags) {
  auto history = LoadHypergraphAuto(history_path);
  if (!history.ok()) {
    std::fprintf(stderr, "%s\n", history.status().ToString().c_str());
    return 2;
  }
  auto candidates = LoadHypergraphAuto(candidates_path);
  if (!candidates.ok()) {
    std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
    return 2;
  }
  PredictRequestOptions options;
  options.replace_fraction = flags.replace;
  options.seed = flags.seed;
  options.num_threads = flags.threads;
  auto body =
      RenderPredictBody(history.value(), candidates.value(), options);
  if (!body.ok()) {
    std::fprintf(stderr, "%s\n", body.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", body.value().c_str());
  return 0;
}

int RunGenerate(const char* domain_name, const char* path,
                const Flags& flags) {
  Domain domain;
  const std::string name = domain_name;
  if (name == "coauth") {
    domain = Domain::kCoauthorship;
  } else if (name == "contact") {
    domain = Domain::kContact;
  } else if (name == "email") {
    domain = Domain::kEmail;
  } else if (name == "tags") {
    domain = Domain::kTags;
  } else if (name == "threads") {
    domain = Domain::kThreads;
  } else {
    std::fprintf(stderr, "unknown domain '%s'\n", domain_name);
    return 1;
  }
  GeneratorConfig config = DefaultConfig(domain, flags.scale);
  config.seed = flags.seed;
  auto graph = GenerateDomainHypergraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 2;
  }
  if (Status s = SaveHypergraph(graph.value(), path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %zu edges over %zu nodes to %s\n",
              graph.value().num_edges(), graph.value().num_nodes(), path);
  return 0;
}

/// `stream --wal`: the crash-safe cumulative path. Arrivals go through
/// a PersistentStreamingEngine, so each is WAL-logged and fsync'd
/// before it is counted; a restart recovers the durable prefix
/// bit-identically and resumes the trace after it (the WAL's record
/// count says how many arrivals are already in). A final checkpoint
/// makes the next startup replay-free.
int RunStreamWithWal(const TemporalTrace& trace, const Flags& flags) {
  WalOptions options;
  options.path = flags.wal;
  options.streaming.num_threads = flags.threads;
  auto engine = PersistentStreamingEngine::Open(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 2;
  }
  const WalRecoveryInfo& recovery = engine.value()->recovery();
  std::printf("wal: recovered %llu records "
              "(%llu checkpointed, %llu replayed, %llu torn bytes dropped)\n",
              static_cast<unsigned long long>(engine.value()->records()),
              static_cast<unsigned long long>(recovery.checkpoint_records),
              static_cast<unsigned long long>(recovery.replayed_records),
              static_cast<unsigned long long>(recovery.truncated_bytes));
  const uint64_t already_durable = engine.value()->records();
  if (already_durable > trace.size()) {
    std::fprintf(stderr,
                 "wal: log has %llu records but the trace only %zu arrivals; "
                 "is this the right trace for %s?\n",
                 static_cast<unsigned long long>(already_durable),
                 trace.size(), flags.wal.c_str());
    return 2;
  }
  uint64_t index = 0;
  for (const TimedEdge& arrival : trace.arrivals) {
    if (index++ < already_durable) continue;  // durable from a prior run
    auto added = engine.value()->AddEdge(
        std::span<const NodeId>(arrival.nodes.data(), arrival.nodes.size()));
    if (!added.ok()) {
      std::fprintf(stderr, "arrival %llu: %s\n",
                   static_cast<unsigned long long>(index - 1),
                   added.status().ToString().c_str());
      return 2;
    }
  }
  if (Status s = engine.value()->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                 s.ToString().c_str());  // the WAL still has every record
  }
  std::printf("%s\n", engine.value()->engine().stats().ToString().c_str());
  std::printf("%s", engine.value()->counts().ToString().c_str());
  return 0;
}

int RunStream(const char* path, const Flags& flags) {
  if (flags.window == 0) {
    std::fprintf(stderr, "--window must be positive\n");
    return 2;
  }
  auto trace = LoadTemporalTrace(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 2;
  }
  if (!flags.wal.empty()) {
    // Durability is defined for the cumulative stream (the WAL's record
    // order IS the arrival order); windowed modes recompute per window
    // and stay in-memory.
    if (flags.mode != WindowMode::kCumulative) {
      std::fprintf(stderr, "--wal supports --mode cumulative only\n");
      return 2;
    }
    return RunStreamWithWal(trace.value(), flags);
  }
  ReplayOptions options;
  options.streaming.num_threads = flags.threads;
  options.window_width = flags.window;
  options.mode = flags.mode;
  options.horizon = flags.horizon;
  const bool sliding = flags.mode == WindowMode::kSliding;
  // Validate the option combination before printing the table header so
  // a rejected horizon produces only the error line.
  if (sliding && flags.horizon != 0 && flags.horizon < flags.window) {
    std::fprintf(stderr,
                 "--horizon must be at least the window width (%llu)\n",
                 static_cast<unsigned long long>(flags.window));
    return 2;
  }
  if (sliding) {
    std::printf("%10s %8s %8s %8s %12s %7s\n", "window", "arrivals", "evicted",
                "|E|", "instances", "open%");
  } else {
    std::printf("%10s %8s %8s %12s %7s\n", "window", "arrivals", "|E|",
                "instances", "open%");
  }
  auto result = ReplayTrace(
      trace.value(), options, [sliding](const WindowResult& window) {
        const double total = window.counts.Total();
        const double open_pct =
            total > 0 ? 100.0 * window.counts.TotalOpen() / total : 0.0;
        if (sliding) {
          std::printf("%10llu %8llu %8llu %8zu %12.0f %6.1f%%\n",
                      static_cast<unsigned long long>(window.start_time),
                      static_cast<unsigned long long>(window.arrivals),
                      static_cast<unsigned long long>(window.evictions),
                      window.num_edges, total, open_pct);
        } else {
          std::printf("%10llu %8llu %8zu %12.0f %6.1f%%\n",
                      static_cast<unsigned long long>(window.start_time),
                      static_cast<unsigned long long>(window.arrivals),
                      window.num_edges, total, open_pct);
        }
      });
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", result.value().stats.ToString().c_str());
  if (!result.value().windows.empty()) {
    std::printf("%s", result.value().windows.back().counts.ToString().c_str());
  }
  return 0;
}

int RunGenTrace(const char* path, const Flags& flags) {
  TemporalConfig config = ScaledTemporalConfig(flags.scale, flags.years);
  config.seed = flags.seed;
  auto trace = GenerateTemporalTrace(config);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 2;
  }
  if (Status s = SaveTemporalTrace(trace.value(), path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %zu arrivals over %zu years to %s\n",
              trace.value().size(), config.num_years, path);
  return 0;
}

int RunServe(const Flags& flags) {
  if (flags.socket.empty() && flags.port == 0) {
    std::fprintf(stderr, "serve: need --socket PATH or --port N\n");
    return 1;
  }
  ServeOptions options;
  options.socket_path = flags.socket;
  options.port = flags.port;
  options.cache_budget = flags.cache_budget;
  options.io_timeout_ms = flags.io_timeout_ms;
  options.max_connections = flags.max_connections;
  MotifServer server(options);
  for (const auto& [name, path] : flags.loads) {
    if (Status s = server.LoadGraphFile(name, path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("loaded %s from %s\n", name.c_str(), path.c_str());
  }
  if (!flags.socket.empty()) {
    std::printf("serving on unix socket %s\n", flags.socket.c_str());
  } else {
    std::printf("serving on 127.0.0.1:%d\n", flags.port);
  }
  // The CI smoke job backgrounds this process and waits for the line
  // above before querying.
  std::fflush(stdout);
  if (Status s = server.Serve(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const ServerStats stats = server.stats();
  std::printf("server stopped\n%s", stats.ToString().c_str());
  return 0;
}

/// Builds the wire request for a query action; count/profile options are
/// taken from the same flags the offline commands use, doubles encoded as
/// exact hex-float literals so the server parses the identical value.
std::string BuildQueryRequest(const std::string& action, char** argv,
                              const Flags& flags) {
  if (action == "stats" || action == "shutdown") return action;
  if (action == "load") {
    return std::string("load ") + argv[3] + " " + argv[4];
  }
  std::string request = action + " " + argv[3];
  if (action == "similarity" || action == "predict") {
    request += std::string(" ") + argv[4];
  }
  if (action == "per-edge") {
    request += " threads=" + std::to_string(flags.threads);
    return request;
  }
  if (action == "predict") {
    // replace travels as an exact hex-float literal, like count's ratio,
    // so the server canonicalizes the identical double into its cache key.
    request += " replace=" + EncodeDouble(flags.replace);
    request += " seed=" + std::to_string(flags.seed);
    request += " threads=" + std::to_string(flags.threads);
    return request;
  }
  if (action == "count") {
    request += std::string(" algorithm=") + AlgorithmName(flags.algorithm);
    if (flags.samples > 0) request += " samples=" + std::to_string(flags.samples);
    request += " ratio=" + EncodeDouble(flags.ratio);
    request += " seed=" + std::to_string(flags.seed);
  } else {  // profile | similarity
    request += " random=" + std::to_string(flags.random_graphs);
    request += " seed=" + std::to_string(flags.seed);
    request += " ratio=" + EncodeDouble(flags.sample_ratio);
    request += " epsilon=" + EncodeDouble(flags.epsilon);
    request += flags.null_model == NullModel::kChungLu ? " null=chung-lu"
                                                       : " null=perturb";
  }
  request += " threads=" + std::to_string(flags.threads);
  return request;
}

/// First header token whose key matches, or "" ("ok kind=count cached=1").
std::string_view HeaderValue(const std::vector<std::string_view>& header,
                             std::string_view key) {
  for (const std::string_view token : header) {
    if (token.size() > key.size() + 1 && token.substr(0, key.size()) == key &&
        token[key.size()] == '=') {
      return token.substr(key.size() + 1);
    }
  }
  return {};
}

/// Renders a response payload in the offline commands' output format
/// (count/profile bodies decode back into MotifCounts, so the h-motif
/// lines diff clean against `mochy_cli count` — CI relies on this),
/// with a trailing "cached:" line. Returns the process exit code.
int PrintQueryResponse(const std::string& payload) {
  const std::vector<std::string_view> lines = SplitLines(payload);
  const std::vector<std::string_view> header =
      lines.empty() ? std::vector<std::string_view>{}
                    : SplitTokens(lines.front());
  if (header.empty() || header.front() != "ok") {
    std::fprintf(stderr, "%s", payload.c_str());
    return 2;
  }
  const std::string_view kind = HeaderValue(header, "kind");
  const char* cached =
      HeaderValue(header, "cached") == "1" ? "yes" : "no";

  auto body_value = [&lines](std::string_view tag) -> std::string_view {
    for (size_t i = 1; i < lines.size(); ++i) {
      if (lines[i].size() > tag.size() + 1 &&
          lines[i].substr(0, tag.size()) == tag &&
          lines[i][tag.size()] == ' ') {
        return lines[i].substr(tag.size() + 1);
      }
    }
    return {};
  };

  if (kind == "count") {
    auto counts = DecodeCounts(body_value("counts"));
    if (!counts.ok()) {
      std::fprintf(stderr, "%s\n", counts.status().ToString().c_str());
      return 2;
    }
    std::printf("%.*s\n", static_cast<int>(body_value("stats").size()),
                body_value("stats").data());
    std::printf("%s", counts.value().ToString().c_str());
    std::printf("total: %.0f (open %.0f, closed %.0f)\n",
                counts.value().Total(), counts.value().TotalOpen(),
                counts.value().TotalClosed());
    std::printf("cached: %s\n", cached);
    return 0;
  }
  if (kind == "profile") {
    auto real = DecodeCounts(body_value("real"));
    auto random_mean = DecodeCounts(body_value("random"));
    auto epsilon = DecodeDouble(body_value("epsilon"));
    if (!real.ok() || !random_mean.ok() || !epsilon.ok()) {
      std::fprintf(stderr, "malformed profile response\n%s", payload.c_str());
      return 2;
    }
    PrintProfileTable(real.value(), random_mean.value(), epsilon.value());
    std::printf("batch: %.*s\n", static_cast<int>(body_value("batch").size()),
                body_value("batch").data());
    std::printf("cached: %s\n", cached);
    return 0;
  }
  if (kind == "per-edge" || kind == "predict") {
    // The body is already the offline command's exact output (shared
    // renderer, serve/render.h); print it verbatim so CI can diff the
    // two byte-for-byte, then append the cache marker.
    for (size_t i = 1; i < lines.size(); ++i) {
      std::printf("%.*s\n", static_cast<int>(lines[i].size()),
                  lines[i].data());
    }
    std::printf("cached: %s\n", cached);
    return 0;
  }
  if (kind == "similarity") {
    auto pearson = DecodeDouble(body_value("pearson"));
    if (!pearson.ok()) {
      std::fprintf(stderr, "malformed similarity response\n%s",
                   payload.c_str());
      return 2;
    }
    std::printf("pearson: %.6f\n", pearson.value());
    std::printf("cached: %s\n", cached);
    return 0;
  }
  // load / stats / shutdown: the payload is already human-readable.
  std::printf("%s", payload.c_str());
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string action = argv[2];
  int positionals;
  if (action == "count" || action == "profile" || action == "per-edge") {
    positionals = 1;
  } else if (action == "similarity" || action == "load" ||
             action == "predict") {
    positionals = 2;
  } else if (action == "stats" || action == "shutdown") {
    positionals = 0;
  } else {
    std::fprintf(stderr, "unknown query action '%s'\n", action.c_str());
    return Usage();
  }
  if (argc < 3 + positionals) return Usage();
  Flags flags;
  if (!ParseFlags(argc, argv, 3 + positionals, &flags)) return Usage();
  if (flags.socket.empty() && flags.port == 0) {
    std::fprintf(stderr, "query: need --socket PATH or --port N\n");
    return 1;
  }
  ClientOptions client_options;
  client_options.connect_timeout_ms = flags.connect_timeout_ms;
  client_options.io_timeout_ms = flags.io_timeout_ms;
  client_options.backoff.max_attempts = flags.retries;
  MotifClient client(flags.socket, flags.port, client_options);
  if (Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  // --retries > 1 rides out transient failures (timeouts, overload
  // shedding, dropped connections) with jittered exponential backoff;
  // queries are idempotent, so redialing and resending is safe.
  const std::string request = BuildQueryRequest(action, argv, flags);
  auto response = flags.retries > 1 ? client.RequestWithRetry(request)
                                    : client.Request(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 2;
  }
  return PrintQueryResponse(response.value());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;

  if (command == "serve") {
    if (!ParseFlags(argc, argv, 2, &flags)) return Usage();
    return RunServe(flags);
  }
  if (command == "query") return RunQuery(argc, argv);
  if (argc < 3) return Usage();
  if (command == "generate") {
    if (argc < 4 || !ParseFlags(argc, argv, 4, &flags)) return Usage();
    return RunGenerate(argv[2], argv[3], flags);
  }
  if (command == "gen-trace") {
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return RunGenTrace(argv[2], flags);
  }
  if (command == "stream") {
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return RunStream(argv[2], flags);
  }
  if (command == "predict") {
    if (argc < 4 || !ParseFlags(argc, argv, 4, &flags)) return Usage();
    return RunPredict(argv[2], argv[3], flags);
  }
  if (command == "convert") {
    if (argc != 4) return Usage();
    return RunConvert(argv[2], argv[3]);
  }
  // `sample` only changes the default algorithm; an explicit --algorithm
  // flag still wins.
  if (command == "sample") flags.algorithm = Algorithm::kLinkSample;
  if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
  auto graph = Load(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 2;
  }
  if (command == "stats") return RunStats(graph.value(), flags);
  if (command == "count" || command == "sample") {
    return RunEngine(graph.value(), flags);
  }
  if (command == "profile") return RunProfile(graph.value(), flags);
  if (command == "enumerate") return RunEnumerate(graph.value(), flags);
  if (command == "per-edge") return RunPerEdge(graph.value(), flags);
  return Usage();
}
