// mochy_cli — command-line front end over the library, for working with
// datasets on disk (the Benson et al. text format: one hyperedge per line).
//
// Usage:
//   mochy_cli stats   <file>                      Table 2 statistics
//   mochy_cli count   <file> [--algorithm A] [--ratio R] [--samples N]
//                            [--seed S] [--threads N]
//                            [--projection materialized|lazy|auto]
//                            [--memory-budget BYTES[K|M|G]]
//                                                 h-motif counts/estimates
//                                                 via the MotifEngine;
//                                                 A = exact|edge-sample|
//                                                     link-sample|auto;
//                                                 --projection lazy samples
//                                                 without materializing the
//                                                 projected graph, keeping
//                                                 memoized neighborhoods
//                                                 within --memory-budget
//                                                 (see docs/MEMORY.md)
//   mochy_cli sample  <file> [flags]              alias for
//                                                 count --algorithm link-sample
//   mochy_cli profile <file> [--random K] [--seed S] [--threads N]
//                            [--sample-ratio R] [--epsilon E]
//                            [--null chung-lu|perturb]
//                                                 batched CP pipeline:
//                                                 real + K null graphs are
//                                                 counted in one BatchRunner
//                                                 pass; prints Δt, CP, the
//                                                 Table 3 RC/RD columns and
//                                                 the batch statistics.
//                                                 R < 0 (default) counts
//                                                 exactly; otherwise
//                                                 MoCHy-A+ with R·|∧| wedge
//                                                 samples per graph
//   mochy_cli enumerate <file> [--limit N]        list instances
//   mochy_cli generate <domain> <file> [--scale X] [--seed S]
//                                                 write a synthetic dataset
//   mochy_cli stream  <trace> [--window W] [--mode cumulative|tumbling]
//                             [--threads N]
//                                                 replay a temporal trace
//                                                 (lines: "time v1 v2 ...")
//                                                 through the incremental
//                                                 StreamingEngine; prints
//                                                 one row per window and
//                                                 the final exact counts
//   mochy_cli gen-trace <file> [--years N] [--scale X] [--seed S]
//                                                 write a temporal
//                                                 co-authorship trace
//
// Exit status: 0 on success, 1 on usage errors, 2 on I/O or data errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "gen/generators.h"
#include "gen/temporal.h"
#include "hypergraph/io.h"
#include "hypergraph/stats.h"
#include "hypergraph/temporal_trace.h"
#include "motif/engine.h"
#include "motif/enumerate.h"
#include "motif/streaming.h"
#include "profile/significance.h"

namespace {

using namespace mochy;

struct Flags {
  Algorithm algorithm = Algorithm::kExact;
  ProjectionPolicy projection = ProjectionPolicy::kAuto;
  uint64_t memory_budget = 0;  // bytes; 0 = unbounded
  double ratio = 0.05;
  uint64_t samples = 0;  // 0 = derive from --ratio
  uint64_t seed = 1;
  size_t threads = 0;  // 0 = DefaultThreadCount()
  int random_graphs = 5;
  double sample_ratio = -1.0;  // profile: < 0 = exact counting
  double epsilon = 1.0;
  NullModel null_model = NullModel::kChungLu;
  size_t limit = 50;
  double scale = 0.25;
  uint64_t window = 1;
  WindowMode mode = WindowMode::kCumulative;
  size_t years = 33;
};

/// Parses trailing --key value flags; returns false on unknown flags.
bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; i += 2) {
    const std::string key = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", key.c_str());
      return false;
    }
    const char* value = argv[i + 1];
    if (key == "--algorithm") {
      auto parsed = ParseAlgorithm(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return false;
      }
      flags->algorithm = parsed.value();
    } else if (key == "--projection") {
      auto parsed = ParseProjectionPolicy(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return false;
      }
      flags->projection = parsed.value();
    } else if (key == "--memory-budget") {
      auto parsed = ParseMemoryBudget(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return false;
      }
      flags->memory_budget = parsed.value();
    } else if (key == "--ratio") {
      flags->ratio = std::atof(value);
    } else if (key == "--samples") {
      flags->samples = static_cast<uint64_t>(std::atoll(value));
    } else if (key == "--seed") {
      flags->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (key == "--threads") {
      flags->threads = static_cast<size_t>(std::atoll(value));
    } else if (key == "--random") {
      flags->random_graphs = std::atoi(value);
    } else if (key == "--sample-ratio") {
      flags->sample_ratio = std::atof(value);
    } else if (key == "--epsilon") {
      flags->epsilon = std::atof(value);
    } else if (key == "--null") {
      const std::string model = value;
      if (model == "chung-lu") {
        flags->null_model = NullModel::kChungLu;
      } else if (model == "perturb") {
        flags->null_model = NullModel::kPerturb;
      } else {
        std::fprintf(stderr, "unknown null model '%s' (want chung-lu|perturb)\n",
                     value);
        return false;
      }
    } else if (key == "--limit") {
      flags->limit = static_cast<size_t>(std::atoll(value));
    } else if (key == "--scale") {
      flags->scale = std::atof(value);
    } else if (key == "--window") {
      flags->window = static_cast<uint64_t>(std::atoll(value));
    } else if (key == "--mode") {
      const std::string mode = value;
      if (mode == "cumulative") {
        flags->mode = WindowMode::kCumulative;
      } else if (mode == "tumbling") {
        flags->mode = WindowMode::kTumbling;
      } else {
        std::fprintf(stderr,
                     "unknown mode '%s' (want cumulative|tumbling)\n", value);
        return false;
      }
    } else if (key == "--years") {
      flags->years = static_cast<size_t>(std::atoll(value));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mochy_cli <stats|count|sample|profile|enumerate> "
               "<file> [flags]\n"
               "       mochy_cli generate <coauth|contact|email|tags|threads>"
               " <file> [flags]\n"
               "       mochy_cli stream <trace-file> [flags]\n"
               "       mochy_cli gen-trace <file> [flags]\n"
               "flags: --algorithm exact|edge-sample|link-sample|auto "
               "--ratio R --samples N --seed S --threads N (0 = all cores)\n"
               "       count/sample: --projection materialized|lazy|auto "
               "--memory-budget BYTES[K|M|G] (memory-bounded sampling)\n"
               "       profile: --random K --sample-ratio R --epsilon E "
               "--null chung-lu|perturb\n"
               "       stream: --window W --mode cumulative|tumbling; "
               "gen-trace: --years N --scale X\n");
  return 1;
}

Result<Hypergraph> Load(const char* path) { return LoadHypergraph(path); }

int RunStats(const Hypergraph& graph, const Flags& flags) {
  const DatasetStats stats = ComputeStats(graph, flags.threads);
  std::printf("%-18s %9s %9s %6s %6s %12s %9s\n", "dataset", "|V|", "|E|",
              "max|e|", "avg|e|", "|wedges|", "maxdeg");
  std::printf("%s\n", FormatStatsRow("(input)", stats).c_str());
  return 0;
}

/// Both `count` and `sample` run through the engine; they differ only in
/// the default algorithm.
int RunEngine(const Hypergraph& graph, const Flags& flags) {
  EngineOptions options;
  options.algorithm = flags.algorithm;
  options.num_threads = flags.threads;
  options.num_samples = flags.samples;
  options.sampling_ratio = flags.ratio;
  options.seed = flags.seed;
  options.projection = flags.projection;
  options.memory_budget = flags.memory_budget;
  auto engine = MotifEngine::Create(graph, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 2;
  }
  auto result = engine.value().Count(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  const MotifCounts& counts = result.value().counts;
  std::printf("%s\n", result.value().stats.ToString().c_str());
  std::printf("%s", counts.ToString().c_str());
  std::printf("total: %.0f (open %.0f, closed %.0f)\n", counts.Total(),
              counts.TotalOpen(), counts.TotalClosed());
  return 0;
}

int RunProfile(const Hypergraph& graph, const Flags& flags) {
  CharacteristicProfileOptions options;
  options.num_random_graphs = flags.random_graphs;
  options.seed = flags.seed;
  options.num_threads = flags.threads;
  options.sample_ratio = flags.sample_ratio;
  options.epsilon = flags.epsilon;
  options.null_model = flags.null_model;
  auto profile = ComputeCharacteristicProfile(graph, options);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 2;
  }
  const CharacteristicProfile& p = profile.value();
  std::printf("%7s %12s %12s %8s %8s %8s %4s\n", "h-motif", "real", "random",
              "delta", "CP", "RC", "RD");
  for (int t = 1; t <= kNumHMotifs; ++t) {
    std::printf("%7d %12.4g %12.4g %+8.3f %+8.3f %+8.3f %4d\n", t,
                p.real_counts[t], p.random_mean[t], p.delta[t - 1],
                p.cp[t - 1], p.relative_counts[t - 1],
                p.rank_difference[t - 1]);
  }
  std::printf("batch: %s\n", p.batch.ToString().c_str());
  return 0;
}

int RunEnumerate(const Hypergraph& graph, const Flags& flags) {
  auto projection = ProjectedGraph::Build(graph, flags.threads);
  if (!projection.ok()) {
    std::fprintf(stderr, "%s\n", projection.status().ToString().c_str());
    return 2;
  }
  size_t printed = 0;
  EnumerateInstances(graph, projection.value(),
                     [&](const MotifInstance& inst) {
                       if (printed >= flags.limit) return;
                       ++printed;
                       std::printf("{%u, %u, %u} -> h-motif %d\n", inst.i,
                                   inst.j, inst.k, inst.motif);
                     });
  std::printf("(printed %zu instances; --limit to change)\n", printed);
  return 0;
}

int RunGenerate(const char* domain_name, const char* path,
                const Flags& flags) {
  Domain domain;
  const std::string name = domain_name;
  if (name == "coauth") {
    domain = Domain::kCoauthorship;
  } else if (name == "contact") {
    domain = Domain::kContact;
  } else if (name == "email") {
    domain = Domain::kEmail;
  } else if (name == "tags") {
    domain = Domain::kTags;
  } else if (name == "threads") {
    domain = Domain::kThreads;
  } else {
    std::fprintf(stderr, "unknown domain '%s'\n", domain_name);
    return 1;
  }
  GeneratorConfig config = DefaultConfig(domain, flags.scale);
  config.seed = flags.seed;
  auto graph = GenerateDomainHypergraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 2;
  }
  if (Status s = SaveHypergraph(graph.value(), path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %zu edges over %zu nodes to %s\n",
              graph.value().num_edges(), graph.value().num_nodes(), path);
  return 0;
}

int RunStream(const char* path, const Flags& flags) {
  if (flags.window == 0) {
    std::fprintf(stderr, "--window must be positive\n");
    return 2;
  }
  auto trace = LoadTemporalTrace(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 2;
  }
  ReplayOptions options;
  options.streaming.num_threads = flags.threads;
  options.window_width = flags.window;
  options.mode = flags.mode;
  std::printf("%10s %8s %8s %12s %7s\n", "window", "arrivals", "|E|",
              "instances", "open%");
  auto result = ReplayTrace(
      trace.value(), options, [](const WindowResult& window) {
        const double total = window.counts.Total();
        std::printf("%10llu %8llu %8zu %12.0f %6.1f%%\n",
                    static_cast<unsigned long long>(window.start_time),
                    static_cast<unsigned long long>(window.arrivals),
                    window.num_edges, total,
                    total > 0 ? 100.0 * window.counts.TotalOpen() / total
                              : 0.0);
      });
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", result.value().stats.ToString().c_str());
  if (!result.value().windows.empty()) {
    std::printf("%s", result.value().windows.back().counts.ToString().c_str());
  }
  return 0;
}

int RunGenTrace(const char* path, const Flags& flags) {
  TemporalConfig config = ScaledTemporalConfig(flags.scale, flags.years);
  config.seed = flags.seed;
  auto trace = GenerateTemporalTrace(config);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 2;
  }
  if (Status s = SaveTemporalTrace(trace.value(), path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %zu arrivals over %zu years to %s\n",
              trace.value().size(), config.num_years, path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  Flags flags;

  if (command == "generate") {
    if (argc < 4 || !ParseFlags(argc, argv, 4, &flags)) return Usage();
    return RunGenerate(argv[2], argv[3], flags);
  }
  if (command == "gen-trace") {
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return RunGenTrace(argv[2], flags);
  }
  if (command == "stream") {
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return RunStream(argv[2], flags);
  }
  // `sample` only changes the default algorithm; an explicit --algorithm
  // flag still wins.
  if (command == "sample") flags.algorithm = Algorithm::kLinkSample;
  if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
  auto graph = Load(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 2;
  }
  if (command == "stats") return RunStats(graph.value(), flags);
  if (command == "count" || command == "sample") {
    return RunEngine(graph.value(), flags);
  }
  if (command == "profile") return RunProfile(graph.value(), flags);
  if (command == "enumerate") return RunEnumerate(graph.value(), flags);
  return Usage();
}
