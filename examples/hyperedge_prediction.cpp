// Hyperedge prediction with h-motif features (paper Section 4.4, Table 4).
//
// Trains five classifiers to separate real future hyperedges from
// fabricated ones, using HM26 (h-motif participation counts), HM7 (the 7
// highest-variance HM26 features), and HC (hand-crafted degree features).
// Reproduces the feature-set ordering HM26 >= HM7 > HC.
//
//   $ ./build/examples/hyperedge_prediction
#include <cstdio>
#include <memory>

#include "gen/generators.h"
#include "ml/decision_tree.h"
#include "ml/features.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

int main() {
  using namespace mochy;

  // "History" = earlier co-authorship period; candidates = later period.
  GeneratorConfig history_config = DefaultConfig(Domain::kCoauthorship, 0.25);
  history_config.seed = 100;
  const Hypergraph history =
      GenerateDomainHypergraph(history_config).value();

  GeneratorConfig future_config = history_config;
  future_config.seed = 200;
  future_config.num_edges = history_config.num_edges / 3;
  const Hypergraph future = GenerateDomainHypergraph(future_config).value();
  std::vector<std::vector<NodeId>> candidates;
  for (EdgeId e = 0; e < future.num_edges(); ++e) {
    const auto span = future.edge(e);
    if (span.size() >= 2) candidates.emplace_back(span.begin(), span.end());
  }
  std::printf("history: %zu edges; candidates: %zu real + %zu fake\n",
              history.num_edges(), candidates.size(), candidates.size());

  PredictionTaskOptions task_options;
  task_options.seed = 3;
  task_options.num_threads = 2;
  const PredictionTask task =
      BuildHyperedgePredictionTask(history, candidates, task_options).value();

  struct Entry {
    const char* name;
    std::unique_ptr<Classifier> (*make)();
  };
  const Entry classifiers[] = {
      {"Logistic Regression",
       [] { return std::unique_ptr<Classifier>(new LogisticRegression()); }},
      {"Random Forest",
       [] { return std::unique_ptr<Classifier>(new RandomForest()); }},
      {"Decision Tree",
       [] { return std::unique_ptr<Classifier>(new DecisionTree()); }},
      {"K-Nearest Neighbors",
       [] { return std::unique_ptr<Classifier>(new KNearestNeighbors()); }},
      {"MLP Classifier",
       [] { return std::unique_ptr<Classifier>(new MlpClassifier()); }},
  };
  const Dataset* sets[] = {&task.hm26, &task.hm7, &task.hc};

  std::printf("\n%-22s %6s %6s %6s   %6s %6s %6s\n", "",
              "ACC", "ACC", "ACC", "AUC", "AUC", "AUC");
  std::printf("%-22s %6s %6s %6s   %6s %6s %6s\n", "classifier", "HM26",
              "HM7", "HC", "HM26", "HM7", "HC");
  for (const Entry& entry : classifiers) {
    double acc[3], auc[3];
    for (int s = 0; s < 3; ++s) {
      Dataset train, test;
      if (!TrainTestSplit(*sets[s], 0.3, 17, &train, &test).ok()) return 1;
      auto clf = entry.make();
      if (!clf->Fit(train).ok()) return 1;
      const auto scores = clf->PredictAll(test);
      acc[s] = Accuracy(test.labels, scores);
      auc[s] = AucScore(test.labels, scores);
    }
    std::printf("%-22s %6.3f %6.3f %6.3f   %6.3f %6.3f %6.3f\n", entry.name,
                acc[0], acc[1], acc[2], auc[0], auc[1], auc[2]);
  }
  std::printf("\nHM7 uses h-motifs:");
  for (int idx : task.hm7_feature_indices) std::printf(" %d", idx + 1);
  std::printf("\n");
  return 0;
}
