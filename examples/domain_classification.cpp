// Domain identification from characteristic profiles (paper Q3).
//
// Generates the 11-dataset benchmark suite (5 domains), computes each
// dataset's CP, and shows that (a) same-domain CPs correlate strongly,
// (b) a 1-NN classifier on CPs identifies every dataset's domain.
//
//   $ ./build/examples/domain_classification
#include <cstdio>
#include <vector>

#include "gen/generators.h"
#include "profile/significance.h"
#include "profile/similarity.h"

int main() {
  using namespace mochy;

  std::printf("generating the 11-dataset suite...\n");
  const auto suite = GenerateBenchmarkSuite(/*seed=*/7, /*scale=*/0.25);

  std::vector<std::vector<double>> profiles;
  std::vector<std::string> names, domains;
  for (const auto& dataset : suite) {
    CharacteristicProfileOptions options;
    options.num_random_graphs = 5;
    options.seed = 11;
    options.num_threads = 2;
    const auto profile =
        ComputeCharacteristicProfile(dataset.graph, options).value();
    profiles.emplace_back(profile.cp.begin(), profile.cp.end());
    names.push_back(dataset.name);
    domains.push_back(dataset.domain);
    std::printf("  %-16s (%s): |E| = %zu\n", dataset.name.c_str(),
                dataset.domain.c_str(), dataset.graph.num_edges());
  }

  // Pairwise CP correlation matrix (Figure 6a analogue).
  const auto matrix = CorrelationMatrix(profiles).value();
  std::printf("\nCP correlation matrix:\n%18s", "");
  for (const auto& name : names) std::printf(" %7.7s", name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < matrix.size(); ++i) {
    std::printf("%18s", names[i].c_str());
    for (size_t j = 0; j < matrix.size(); ++j) {
      std::printf(" %+7.2f", matrix[i][j]);
    }
    std::printf("\n");
  }

  const auto separation = ComputeDomainSeparation(matrix, domains).value();
  std::printf("\nmean correlation within domains : %+.3f\n",
              separation.within_mean);
  std::printf("mean correlation across domains : %+.3f\n",
              separation.across_mean);
  std::printf("separation gap                  : %+.3f\n", separation.gap);

  const size_t correct = LeaveOneOutDomainAccuracy(profiles, domains);
  std::printf("\n1-NN domain identification: %zu / %zu datasets correct\n",
              correct, profiles.size());
  return correct == profiles.size() ? 0 : 0;
}
