// Quickstart: build a hypergraph, count h-motifs exactly and
// approximately, and compute its characteristic profile.
//
//   $ ./build/examples/quickstart
//
// The example uses the co-authorship hypergraph from Figure 2 of the paper
// plus a slightly larger synthetic graph to show the approximate counters.
#include <cstdio>

#include "gen/generators.h"
#include "hypergraph/builder.h"
#include "hypergraph/projection.h"
#include "hypergraph/stats.h"
#include "motif/engine.h"
#include "motif/enumerate.h"
#include "profile/significance.h"

int main() {
  using namespace mochy;

  // --- 1. The paper's running example (Figure 2). -------------------------
  // Authors: L=0, K=1, F=2, H=3, B=4, G=5, S=6, R=7.
  auto example = MakeHypergraph({
      {0, 1, 2},  // e1 = {L, K, F}   (KDD'05)
      {0, 3, 1},  // e2 = {L, H, K}   (WWW'10)
      {4, 5, 0},  // e3 = {B, G, L}   (Science'16)
      {6, 7, 2},  // e4 = {S, R, F}   (VLDB'87)
  });
  if (!example.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 example.status().ToString().c_str());
    return 1;
  }
  const Hypergraph& graph = example.value();

  std::printf("== Figure 2 example ==\n");
  std::printf("|V| = %zu, |E| = %zu\n", graph.num_nodes(), graph.num_edges());
  const ProjectedGraph projection = ProjectedGraph::Build(graph).value();
  std::printf("hyperwedges |∧| = %llu\n",
              static_cast<unsigned long long>(projection.num_wedges()));

  // Enumerate every h-motif instance (Algorithm 3).
  std::printf("h-motif instances:\n");
  EnumerateInstances(graph, projection, [&](const MotifInstance& inst) {
    std::printf("  {e%u, e%u, e%u} -> h-motif %d  [%s]\n", inst.i + 1,
                inst.j + 1, inst.k + 1, inst.motif,
                MotifToString(inst.motif).c_str());
  });

  // --- 2. Exact vs. approximate counting on a bigger graph. ---------------
  // The MotifEngine builds the projection once and exposes every MoCHy
  // variant behind one options struct.
  GeneratorConfig config = DefaultConfig(Domain::kCoauthorship, 0.3);
  config.seed = 42;
  const Hypergraph big = GenerateDomainHypergraph(config).value();
  std::printf("\n== Synthetic co-authorship graph ==\n");
  std::printf("|V| = %zu, |E| = %zu\n", big.num_nodes(), big.num_edges());

  const MotifEngine engine = MotifEngine::Create(big).value();

  EngineOptions exact_options;
  exact_options.algorithm = Algorithm::kExact;
  const EngineResult exact = engine.Count(exact_options).value();

  EngineOptions approx_options;
  approx_options.algorithm = Algorithm::kLinkSample;  // MoCHy-A+
  approx_options.sampling_ratio = 0.1;                // 10% of the wedges
  approx_options.seed = 7;
  const EngineResult approx = engine.Count(approx_options).value();

  std::printf("exact:    %s\n", exact.stats.ToString().c_str());
  std::printf("estimate: %s\n", approx.stats.ToString().c_str());
  std::printf("total instances: exact %.0f, MoCHy-A+ estimate %.0f\n",
              exact.counts.Total(), approx.counts.Total());
  std::printf("MoCHy-A+ relative error at 10%% wedge sampling: %.4f\n",
              approx.counts.RelativeError(exact.counts));

  // --- 3. Characteristic profile (Eq. 1 + Eq. 2). --------------------------
  CharacteristicProfileOptions cp_options;
  cp_options.num_random_graphs = 5;
  cp_options.seed = 1;
  const CharacteristicProfile profile =
      ComputeCharacteristicProfile(big, cp_options).value();
  std::printf("\ncharacteristic profile (CP):\n");
  for (int t = 1; t <= kNumHMotifs; ++t) {
    std::printf("  h-motif %2d: CP = %+.3f\n", t, profile.cp[t - 1]);
  }
  return 0;
}
