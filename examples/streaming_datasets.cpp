// Working with on-disk datasets and memory-bounded counting.
//
// Demonstrates the I/O layer (the text format of the public Benson et al.
// datasets), Table 2-style statistics, and the on-the-fly MoCHy-A+ variant
// that avoids materializing the projected graph (paper Section 3.4) —
// useful when |∧| is much larger than the memory budget. ("Streaming"
// here means streaming *over a stored dataset* with bounded memory; for
// incremental counting over live hyperedge *arrivals*, see
// motif/streaming.h and docs/STREAMING.md.)
//
//   $ ./build/examples/streaming_datasets
#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "gen/generators.h"
#include "hypergraph/io.h"
#include "hypergraph/lazy_projection.h"
#include "hypergraph/stats.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"

int main() {
  using namespace mochy;

  // Write a dataset to disk in the standard text format, then re-load it.
  GeneratorConfig config = DefaultConfig(Domain::kTags, 0.4);
  config.seed = 77;
  const Hypergraph generated = GenerateDomainHypergraph(config).value();
  const std::string path =
      (std::filesystem::temp_directory_path() / "tags-demo.txt").string();
  if (Status s = SaveHypergraph(generated, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const Hypergraph graph = LoadHypergraph(path).value();
  std::printf("loaded %s\n", path.c_str());

  const DatasetStats stats = ComputeStats(graph, 2);
  std::printf("%-18s %9s %9s %5s %6s %12s %9s\n", "dataset", "|V|", "|E|",
              "max|e|", "avg|e|", "|wedges|", "maxdeg");
  std::printf("%s\n", FormatStatsRow("tags-demo", stats).c_str());

  // Exact counts as the reference.
  const MotifCounts exact = CountMotifsExact(graph, 2);

  // On-the-fly MoCHy-A+ under three memoization budgets.
  const ProjectedDegrees degrees = ComputeProjectedDegrees(graph, 2);
  MochyAPlusOptions sampling;
  sampling.num_samples = degrees.num_wedges / 20;  // 5% of wedges
  sampling.seed = 5;
  std::printf("\non-the-fly MoCHy-A+ (r = %llu wedge samples):\n",
              static_cast<unsigned long long>(sampling.num_samples));
  std::printf("%12s %12s %12s %10s %8s\n", "budget", "computes", "hits",
              "rel.err", "time(s)");
  for (uint64_t budget : {0ull, 64ull << 10, 16ull << 20}) {
    LazyProjectionOptions lazy;
    lazy.memory_budget_bytes = budget;
    lazy.policy = EvictionPolicy::kDegreePriority;
    LazyProjection::Stats memo_stats;
    Timer timer;
    const MotifCounts estimate =
        CountMotifsWedgeSampleOnTheFly(graph, degrees, sampling, lazy,
                                       &memo_stats)
            .value();
    std::printf("%12llu %12llu %12llu %10.4f %8.3f\n",
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(memo_stats.computations),
                static_cast<unsigned long long>(memo_stats.memo_hits),
                estimate.RelativeError(exact), timer.Seconds());
  }
  std::remove(path.c_str());
  return 0;
}
