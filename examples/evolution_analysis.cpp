// Evolution of collaboration structure (paper Section 4.4, Figure 7).
//
// Generates yearly co-authorship snapshots and tracks the fraction of each
// h-motif's instances per year, plus the open/closed split. As in the
// paper, collaborations become less clustered over time: the open-motif
// fraction rises.
//
//   $ ./build/examples/evolution_analysis
#include <cstdio>

#include "gen/temporal.h"
#include "motif/mochy_e.h"

int main() {
  using namespace mochy;

  TemporalConfig config;
  config.num_years = 17;  // a compact version of the paper's 33 years
  config.num_nodes = 900;
  config.edges_first_year = 250;
  config.edges_last_year = 700;
  config.seed = 9;
  const auto years = GenerateTemporalCoauthorship(config).value();

  std::printf("year  edges  instances  open%%  closed%%  top motifs\n");
  for (size_t y = 0; y < years.size(); ++y) {
    const MotifCounts counts = CountMotifsExact(years[y], 2);
    const double total = counts.Total();
    const double open = total > 0 ? 100.0 * counts.TotalOpen() / total : 0.0;
    // Two most frequent motifs this year.
    int top1 = 1, top2 = 2;
    for (int t = 1; t <= kNumHMotifs; ++t) {
      if (counts[t] > counts[top1]) {
        top2 = top1;
        top1 = t;
      } else if (t != top1 && counts[t] > counts[top2]) {
        top2 = t;
      }
    }
    std::printf("%4zu  %5zu  %9.0f  %5.1f  %6.1f   h%d (%.0f%%), h%d (%.0f%%)\n",
                1984 + y, years[y].num_edges(), total, open, 100.0 - open,
                top1, total > 0 ? 100.0 * counts[top1] / total : 0.0, top2,
                total > 0 ? 100.0 * counts[top2] / total : 0.0);
  }
  std::printf("\nAs in Figure 7(b), the open fraction trends upward as\n"
              "collaborations reach across communities.\n");
  return 0;
}
