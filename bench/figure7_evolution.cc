// Regenerates Figure 7 on the incremental path: evolution of h-motif
// instance fractions as the temporal co-authorship network grows, year by
// year, replayed as a hyperedge arrival trace through StreamingEngine
// (one O(Δ) delta pass per publication) instead of rebuilding the
// hypergraph + projection and recounting every snapshot from scratch.
//
// Paper shape to verify: (a) a handful of motifs (the generic closed and
// open ones) dominate and grow; (b) the open fraction rises over the
// years (collaborations become less clustered). Both hold on the
// cumulative network the stream accretes.
//
// The driver also measures the path this replaced — rebuild + projection
// + MoCHy-E recount at every yearly boundary — checks the two count
// series are bit-identical, and reports the incremental-vs-recount
// speedup.
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "gen/temporal.h"
#include "hypergraph/builder.h"
#include "motif/mochy_e.h"
#include "motif/streaming.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 7: evolution of collaboration structure "
                     "(incremental replay)");

  TemporalConfig config = ScaledTemporalConfig(bench::BenchScale());
  config.seed = 9;
  const TemporalTrace trace = GenerateTemporalTrace(config).value();

  // Incremental path: one cumulative window per year, counts maintained
  // arrival by arrival.
  Timer streaming_timer;
  ReplayOptions replay;
  replay.window_width = 1;
  const ReplayResult incremental = ReplayTrace(trace, replay).value();
  const double streaming_wall = streaming_timer.Seconds();

  // (a) per-motif fractions; print a manageable subset of columns plus the
  // aggregate open fraction.
  const int tracked[] = {2, 4, 6, 10, 17, 18, 21, 22, 26};
  std::printf("(cumulative network through each year, duplicates retained; "
              "for the paper's\n per-year snapshot view: mochy_cli stream "
              "--mode tumbling)\n");
  std::printf("%4s %6s %10s", "year", "|E|", "instances");
  for (int t : tracked) std::printf("  h%-4d", t);
  std::printf("  %6s\n", "open%");

  double first_open = -1.0, last_open = 0.0;
  for (const WindowResult& window : incremental.windows) {
    const MotifCounts& counts = window.counts;
    const double total = counts.Total();
    std::printf("%4llu %6zu %10.0f",
                1984 + static_cast<unsigned long long>(window.start_time),
                window.num_edges, total);
    for (int t : tracked) {
      std::printf(" %5.1f%%", total > 0 ? 100.0 * counts[t] / total : 0.0);
    }
    const double open =
        total > 0 ? 100.0 * counts.TotalOpen() / total : 0.0;
    std::printf("  %5.1f%%\n", open);
    if (first_open < 0.0) first_open = open;
    last_open = open;
  }
  std::printf("\n(b) open-motif fraction: first year %.1f%% -> last year "
              "%.1f%%  (paper: rises steadily)\n",
              first_open, last_open);

  // The replaced path: rebuild the cumulative graph and recount from
  // scratch at every yearly boundary. Counts must agree bit-for-bit.
  Timer recount_timer;
  bool identical = true;
  size_t index = 0;
  std::vector<std::vector<NodeId>> edges;
  for (const WindowResult& window : incremental.windows) {
    for (; index < trace.size() &&
           trace.arrivals[index].time < window.end_time;
         ++index) {
      edges.push_back(trace.arrivals[index].nodes);
    }
    BuildOptions options;
    options.dedup_edges = false;
    options.num_nodes = config.num_nodes;
    const Hypergraph snapshot = MakeHypergraph(edges, options).value();
    const MotifCounts recount = CountMotifsExact(snapshot, 1);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      if (recount[t] != window.counts[t]) identical = false;
    }
  }
  const double recount_wall = recount_timer.Seconds();

  std::printf("\nincremental replay: %zu arrivals in %.3fs (%.0f arrivals/s, "
              "%llu candidate triples)\n",
              trace.size(), streaming_wall,
              streaming_wall > 0
                  ? static_cast<double>(trace.size()) / streaming_wall
                  : 0.0,
              static_cast<unsigned long long>(
                  incremental.stats.candidate_triples));
  std::printf("rebuild+recount per year: %.3fs -> incremental speedup "
              "%.1fx  [%s]\n",
              recount_wall,
              streaming_wall > 0 ? recount_wall / streaming_wall : 0.0,
              identical ? "counts bit-identical" : "COUNTS DIVERGE");
  return identical ? 0 : 1;
}
