// Regenerates Figure 7: evolution of h-motif instance fractions in yearly
// co-authorship snapshots, and the open/closed split over time.
//
// Paper shape to verify: (a) a handful of motifs (the generic closed and
// open ones) dominate and grow; (b) the open fraction rises over the
// years (collaborations become less clustered).
#include "bench/bench_util.h"
#include "gen/temporal.h"
#include "motif/mochy_e.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 7: evolution of collaboration structure");

  TemporalConfig config;
  config.num_years = 33;
  config.num_nodes = static_cast<size_t>(3000 * bench::BenchScale());
  config.edges_first_year = static_cast<size_t>(900 * bench::BenchScale());
  config.edges_last_year = static_cast<size_t>(2600 * bench::BenchScale());
  config.seed = 9;
  const auto years = GenerateTemporalCoauthorship(config).value();

  // (a) per-motif fractions; print a manageable subset of columns plus the
  // aggregate open fraction.
  const int tracked[] = {2, 4, 6, 10, 17, 18, 21, 22, 26};
  std::printf("%4s %6s %10s", "year", "|E|", "instances");
  for (int t : tracked) std::printf("  h%-4d", t);
  std::printf("  %6s\n", "open%");

  double first_open = -1.0, last_open = 0.0;
  for (size_t y = 0; y < years.size(); ++y) {
    const MotifCounts counts = CountMotifsExact(years[y], 2);
    const double total = counts.Total();
    std::printf("%4zu %6zu %10.0f", 1984 + y, years[y].num_edges(), total);
    for (int t : tracked) {
      std::printf(" %5.1f%%", total > 0 ? 100.0 * counts[t] / total : 0.0);
    }
    const double open =
        total > 0 ? 100.0 * counts.TotalOpen() / total : 0.0;
    std::printf("  %5.1f%%\n", open);
    if (first_open < 0.0) first_open = open;
    last_open = open;
  }
  std::printf("\n(b) open-motif fraction: first year %.1f%% -> last year "
              "%.1f%%  (paper: rises steadily)\n",
              first_open, last_open);
  return 0;
}
