// Regenerates Table 2: statistics of the 11 (synthetic) datasets —
// |V|, |E|, max |e|, |∧|, and the (estimated) number of h-motif instances.
#include <cstdlib>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "hypergraph/projection.h"
#include "hypergraph/stats.h"
#include "motif/mochy_aplus.h"

int main() {
  using namespace mochy;
  bench::PrintHeader(
      "Table 2: dataset statistics (synthetic stand-ins, 5 domains)");

  const auto suite = GenerateBenchmarkSuite(7, bench::BenchScale());
  std::printf("%-16s %8s %8s %7s %7s %12s %14s\n", "dataset", "|V|", "|E|",
              "max|e|", "avg|e|", "|wedges|", "#h-motifs(est)");
  for (const auto& dataset : suite) {
    const DatasetStats stats = ComputeStats(dataset.graph, 2);
    // Estimated instance total via MoCHy-A+ with 5% wedge sampling (the
    // paper, likewise, estimates the largest datasets' totals).
    const ProjectedGraph projection =
        ProjectedGraph::Build(dataset.graph, 2).value();
    MochyAPlusOptions options;
    options.num_samples =
        std::max<uint64_t>(1, projection.num_wedges() / 20);
    options.seed = 3;
    options.num_threads = 2;
    const MotifCounts estimate =
        CountMotifsWedgeSample(dataset.graph, projection, options);
    std::printf("%-16s %8llu %8llu %7llu %7.2f %12llu %14s\n",
                dataset.name.c_str(),
                static_cast<unsigned long long>(stats.num_nodes),
                static_cast<unsigned long long>(stats.num_edges),
                static_cast<unsigned long long>(stats.max_edge_size),
                stats.mean_edge_size,
                static_cast<unsigned long long>(stats.num_wedges),
                bench::Sci(estimate.Total()).c_str());
  }
  std::printf(
      "\nShape check vs paper Table 2: contact/email domains are small and\n"
      "dense; tags graphs have few nodes but many wedges; co-authorship has\n"
      "the largest node population.\n");
  return 0;
}
