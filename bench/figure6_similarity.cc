// Regenerates Figure 6: dataset similarity matrices from (a) h-motif CPs
// and (b) network-motif CPs on the star expansion, plus the within/across
// domain correlation gap for both.
//
// Paper shape to verify: the h-motif gap is much larger than the
// network-motif gap (paper: 0.324 vs 0.069), i.e. h-motifs separate
// domains and network motifs mostly do not.
#include "baseline/network_cp.h"
#include "bench/bench_util.h"
#include "gen/generators.h"
#include "profile/significance.h"
#include "profile/similarity.h"

namespace {

void PrintMatrix(const std::vector<std::string>& names,
                 const std::vector<std::vector<double>>& matrix) {
  std::printf("%16s", "");
  for (const auto& name : names) std::printf(" %7.7s", name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < matrix.size(); ++i) {
    std::printf("%16s", names[i].c_str());
    for (double value : matrix[i]) std::printf(" %+7.2f", value);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace mochy;
  bench::PrintHeader(
      "Figure 6: h-motif CPs vs network-motif CPs (domain separation)");

  const auto suite = GenerateBenchmarkSuite(7, bench::BenchScale(0.2));
  std::vector<std::vector<double>> hmotif_profiles, network_profiles;
  std::vector<std::string> names, domains;
  for (const auto& dataset : suite) {
    names.push_back(dataset.name);
    domains.push_back(dataset.domain);

    CharacteristicProfileOptions options;
    options.num_random_graphs = 3;
    options.seed = 11;
    options.num_threads = 2;
    const auto profile =
        ComputeCharacteristicProfile(dataset.graph, options).value();
    hmotif_profiles.emplace_back(profile.cp.begin(), profile.cp.end());

    NetworkCpOptions network_options;
    network_options.num_random_graphs = 3;
    network_options.seed = 11;
    network_options.census.min_size = 3;
    network_options.census.max_size = 4;  // Motivo counted 3-5; see DESIGN.md
    network_profiles.push_back(
        ComputeNetworkMotifCP(dataset.graph, network_options).value());
    std::printf("profiled %-16s (%s)\n", dataset.name.c_str(),
                dataset.domain.c_str());
  }

  std::printf("\n(a) similarity matrix from h-motif CPs\n");
  const auto hmotif_matrix = CorrelationMatrix(hmotif_profiles).value();
  PrintMatrix(names, hmotif_matrix);
  const auto hmotif_sep =
      ComputeDomainSeparation(hmotif_matrix, domains).value();

  std::printf("\n(b) similarity matrix from network-motif CPs\n");
  const auto network_matrix = CorrelationMatrix(network_profiles).value();
  PrintMatrix(names, network_matrix);
  const auto network_sep =
      ComputeDomainSeparation(network_matrix, domains).value();

  std::printf("\n%-22s %8s %8s %8s\n", "profile", "within", "across", "gap");
  std::printf("%-22s %+8.3f %+8.3f %+8.3f   (paper: 0.978, 0.654, 0.324)\n",
              "h-motif CP", hmotif_sep.within_mean, hmotif_sep.across_mean,
              hmotif_sep.gap);
  std::printf("%-22s %+8.3f %+8.3f %+8.3f   (paper: 0.988, 0.919, 0.069)\n",
              "network-motif CP", network_sep.within_mean,
              network_sep.across_mean, network_sep.gap);
  std::printf("shape check: h-motif gap %s network-motif gap\n",
              hmotif_sep.gap > network_sep.gap ? ">" : "<=");
  return 0;
}
