// Shared helpers for the experiment harness binaries (one per paper
// table/figure). These are *report generators*: each prints the rows or
// series of its artifact so shapes can be compared against the paper.
#ifndef MOCHY_BENCH_BENCH_UTIL_H_
#define MOCHY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace mochy::bench {

/// Compact scientific notation like the paper's Table 3 ("9.6E07").
inline std::string Sci(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1E", value);
  return buffer;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

/// Experiment scale shared by the harness binaries; override with
/// MOCHY_BENCH_SCALE to run bigger/smaller reproductions.
inline double BenchScale(double fallback = 0.25) {
  const char* env = std::getenv("MOCHY_BENCH_SCALE");
  if (env == nullptr) return fallback;
  const double parsed = std::atof(env);
  return parsed > 0.0 ? parsed : fallback;
}

}  // namespace mochy::bench

#endif  // MOCHY_BENCH_BENCH_UTIL_H_
