// Not a paper figure: measures what batched multi-graph counting buys on
// the paper's headline application. One characteristic profile needs
// counts for the real hypergraph plus 5 null-model graphs; the baseline
// runs one MotifEngine per graph sequentially (generation, projection
// build, count — each graph alone on the machine), while the batched
// pipeline pushes all 6 graphs through one BatchRunner work queue on the
// shared pool, overlapping null-graph generation and projection builds
// with counting.
//
// Shape to verify: batched CP computation is >= 1.5x faster than
// one-engine-per-graph at 4+ threads, with bit-identical CP vectors
// (speedup requires >= 4 hardware cores; the binary prints the hardware
// concurrency so single-core CI runs are interpretable).
#include <cmath>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "motif/batch.h"
#include "motif/engine.h"
#include "profile/significance.h"
#include "random/chung_lu.h"

namespace {

using namespace mochy;

constexpr int kNullGraphs = 5;
constexpr uint64_t kSeed = 23;

// The pre-batch pipeline: every graph pays its own engine (projection
// build + count) with `threads`-way intra-graph parallelism, one graph at
// a time. Seed derivations match ComputeCharacteristicProfile exactly so
// the CP vectors must agree bit for bit.
ProfileVector BaselineProfile(const Hypergraph& graph, size_t threads) {
  EngineOptions count_options;
  count_options.algorithm = Algorithm::kExact;
  count_options.num_threads = threads;

  auto count_one = [&](const Hypergraph& g) {
    auto engine = MotifEngine::Create(g, threads);
    MOCHY_CHECK(engine.ok()) << engine.status().ToString();
    auto result = engine.value().Count(count_options);
    MOCHY_CHECK(result.ok()) << result.status().ToString();
    return result.value().counts;
  };

  const MotifCounts real = count_one(graph);
  std::vector<MotifCounts> random_counts;
  for (int i = 0; i < kNullGraphs; ++i) {
    ChungLuOptions cl;
    cl.seed = kSeed + 0x9e3779b9u * static_cast<uint64_t>(i + 1);
    auto null_graph = GenerateChungLu(graph, cl);
    MOCHY_CHECK(null_graph.ok()) << null_graph.status().ToString();
    random_counts.push_back(count_one(null_graph.value()));
  }
  return NormalizeProfile(
      ComputeSignificance(real, MotifCounts::Mean(random_counts)));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Batched CP pipeline vs one-engine-per-graph (real + 5 null graphs)");
  std::printf("hardware threads: %zu   (speedup needs >= 4 cores)\n\n",
              DefaultThreadCount());

  GeneratorConfig config = DefaultConfig(Domain::kCoauthorship,
                                         bench::BenchScale());
  config.seed = 7;
  const Hypergraph graph =
      GenerateDomainHypergraph(config).value();
  std::printf("input: |V|=%zu |E|=%zu pins=%llu\n\n", graph.num_nodes(),
              graph.num_edges(),
              static_cast<unsigned long long>(graph.num_pins()));

  // Warm up the shared pool and page in the generators before timing.
  (void)BaselineProfile(graph, 2);

  std::printf("%8s %14s %12s %9s %13s\n", "threads", "baseline(s)",
              "batched(s)", "speedup", "utilization");

  bool identical = true;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Timer baseline_timer;
    const ProfileVector baseline_cp = BaselineProfile(graph, threads);
    const double baseline_seconds = baseline_timer.Seconds();

    CharacteristicProfileOptions options;
    options.num_random_graphs = kNullGraphs;
    options.seed = kSeed;
    options.num_threads = threads;
    Timer batched_timer;
    const CharacteristicProfile batched =
        ComputeCharacteristicProfile(graph, options).value();
    const double batched_seconds = batched_timer.Seconds();

    for (int i = 0; i < kNumHMotifs; ++i) {
      // Bit-identical, not approximately equal: both paths must run the
      // exact same deterministic computation.
      if (baseline_cp[i] != batched.cp[i]) identical = false;
    }

    std::printf("%8zu %14.3f %12.3f %8.2fx %12.0f%%\n", threads,
                baseline_seconds, batched_seconds,
                baseline_seconds / batched_seconds,
                100.0 * batched.batch.pool_utilization);
  }

  std::printf("\nCP vectors bit-identical across all runs: %s\n",
              identical ? "yes" : "NO — DETERMINISM BUG");
  return identical ? 0 : 1;
}
