// Regenerates Figure 8: the speed/accuracy trade-off of MoCHy-E, MoCHy-A
// and MoCHy-A+ at matched sampling ratios.
//
// Paper shape to verify: at the same ratio alpha = s/|E| = r/|∧|,
// MoCHy-A+ is substantially more accurate than MoCHy-A (paper: up to 25x)
// and much faster than MoCHy-E with small error (paper: up to 32x).
//
// All three variants run through the MotifEngine facade; the engine's run
// statistics provide the timings.
#include "bench/bench_util.h"
#include "gen/generators.h"
#include "motif/engine.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 8: speed vs accuracy of MoCHy variants");

  const Domain domains[] = {Domain::kContact, Domain::kEmail, Domain::kTags};
  const int kTrials = 5;
  for (Domain domain : domains) {
    GeneratorConfig config = DefaultConfig(domain, bench::BenchScale());
    config.seed = 5;
    const Hypergraph graph = GenerateDomainHypergraph(config).value();
    const MotifEngine engine = MotifEngine::Create(graph, 2).value();

    EngineOptions exact_options;
    exact_options.algorithm = Algorithm::kExact;
    const EngineResult exact = engine.Count(exact_options).value();
    std::printf("\n--- %s: |E| = %zu, |wedges| = %llu ---\n",
                DomainName(domain).c_str(), graph.num_edges(),
                static_cast<unsigned long long>(engine.projection().num_wedges()));
    std::printf("MoCHy-E: %.3fs (exact reference)\n",
                exact.stats.elapsed_seconds);
    std::printf("%7s | %10s %10s | %10s %10s | %8s %8s\n", "ratio",
                "A time(s)", "A err", "A+ time(s)", "A+ err", "A+/E", "A/A+");

    for (double ratio : {0.025, 0.05, 0.10, 0.15, 0.20, 0.25}) {
      double time_a = 0.0, err_a = 0.0, time_ap = 0.0, err_ap = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        EngineOptions options;
        options.sampling_ratio = ratio;
        options.seed = 40 + static_cast<uint64_t>(trial);

        options.algorithm = Algorithm::kEdgeSample;
        const EngineResult a = engine.Count(options).value();
        time_a += a.stats.elapsed_seconds / kTrials;
        err_a += a.counts.RelativeError(exact.counts) / kTrials;

        options.algorithm = Algorithm::kLinkSample;
        const EngineResult ap = engine.Count(options).value();
        time_ap += ap.stats.elapsed_seconds / kTrials;
        err_ap += ap.counts.RelativeError(exact.counts) / kTrials;
      }
      std::printf("%6.1f%% | %10.3f %10.4f | %10.3f %10.4f | %7.1fx %7.1fx\n",
                  100 * ratio, time_a, err_a, time_ap, err_ap,
                  time_ap > 0 ? exact.stats.elapsed_seconds / time_ap : 0.0,
                  err_ap > 0 ? err_a / err_ap : 0.0);
    }
  }
  std::printf("\nshape check: A+ errors are consistently below A at equal\n"
              "ratio, and A+ runs a large factor faster than MoCHy-E.\n");
  return 0;
}
