// Regenerates Figure 8: the speed/accuracy trade-off of MoCHy-E, MoCHy-A
// and MoCHy-A+ at matched sampling ratios.
//
// Paper shape to verify: at the same ratio alpha = s/|E| = r/|∧|,
// MoCHy-A+ is substantially more accurate than MoCHy-A (paper: up to 25x)
// and much faster than MoCHy-E with small error (paper: up to 32x).
#include "bench/bench_util.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 8: speed vs accuracy of MoCHy variants");

  const Domain domains[] = {Domain::kContact, Domain::kEmail, Domain::kTags};
  const int kTrials = 5;
  for (Domain domain : domains) {
    GeneratorConfig config = DefaultConfig(domain, bench::BenchScale());
    config.seed = 5;
    const Hypergraph graph = GenerateDomainHypergraph(config).value();
    const ProjectedGraph projection = ProjectedGraph::Build(graph, 2).value();

    Timer exact_timer;
    const MotifCounts exact = CountMotifsExact(graph, projection, 1);
    const double exact_seconds = exact_timer.Seconds();
    std::printf("\n--- %s: |E| = %zu, |wedges| = %llu ---\n",
                DomainName(domain).c_str(), graph.num_edges(),
                static_cast<unsigned long long>(projection.num_wedges()));
    std::printf("MoCHy-E: %.3fs (exact reference)\n", exact_seconds);
    std::printf("%7s | %10s %10s | %10s %10s | %8s %8s\n", "ratio",
                "A time(s)", "A err", "A+ time(s)", "A+ err", "A+/E", "A/A+");

    for (double ratio : {0.025, 0.05, 0.10, 0.15, 0.20, 0.25}) {
      double time_a = 0.0, err_a = 0.0, time_ap = 0.0, err_ap = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        MochyAOptions oa;
        oa.num_samples = std::max<uint64_t>(
            1, static_cast<uint64_t>(ratio * graph.num_edges()));
        oa.seed = 40 + static_cast<uint64_t>(trial);
        Timer t1;
        const MotifCounts counts_a =
            CountMotifsEdgeSample(graph, projection, oa);
        time_a += t1.Seconds() / kTrials;
        err_a += counts_a.RelativeError(exact) / kTrials;

        MochyAPlusOptions op;
        op.num_samples = std::max<uint64_t>(
            1, static_cast<uint64_t>(ratio * projection.num_wedges()));
        op.seed = 40 + static_cast<uint64_t>(trial);
        Timer t2;
        const MotifCounts counts_ap =
            CountMotifsWedgeSample(graph, projection, op);
        time_ap += t2.Seconds() / kTrials;
        err_ap += counts_ap.RelativeError(exact) / kTrials;
      }
      std::printf("%6.1f%% | %10.3f %10.4f | %10.3f %10.4f | %7.1fx %7.1fx\n",
                  100 * ratio, time_a, err_a, time_ap, err_ap,
                  time_ap > 0 ? exact_seconds / time_ap : 0.0,
                  err_ap > 0 ? err_a / err_ap : 0.0);
    }
  }
  std::printf("\nshape check: A+ errors are consistently below A at equal\n"
              "ratio, and A+ runs a large factor faster than MoCHy-E.\n");
  return 0;
}
