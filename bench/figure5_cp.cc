// Regenerates Figures 1 and 5: the characteristic profile (normalized
// significance of all 26 h-motifs) of every dataset, grouped by domain.
//
// Paper shape to verify: CPs are similar within a domain and differ across
// domains (quantified in figure6_similarity).
#include "bench/bench_util.h"
#include "gen/generators.h"
#include "profile/significance.h"
#include "profile/similarity.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figures 1 & 5: characteristic profiles by domain");

  const auto suite = GenerateBenchmarkSuite(7, bench::BenchScale());
  std::vector<std::vector<double>> profiles;
  std::vector<std::string> domains;

  std::string current_domain;
  for (const auto& dataset : suite) {
    CharacteristicProfileOptions options;
    options.num_random_graphs = 5;
    options.seed = 11;
    options.num_threads = 2;
    const auto profile =
        ComputeCharacteristicProfile(dataset.graph, options).value();
    profiles.emplace_back(profile.cp.begin(), profile.cp.end());
    domains.push_back(dataset.domain);

    if (dataset.domain != current_domain) {
      current_domain = dataset.domain;
      std::printf("\n== domain: %s ==\n", current_domain.c_str());
      std::printf("%-16s", "dataset\\motif");
      for (int t = 1; t <= kNumHMotifs; ++t) std::printf("%6d", t);
      std::printf("\n");
    }
    std::printf("%-16s", dataset.name.c_str());
    for (double cp : profile.cp) std::printf("%+6.2f", cp);
    std::printf("\n");
  }

  // Within-domain pairwise CP correlations (the visual claim of Figure 5).
  const auto matrix = CorrelationMatrix(profiles).value();
  const auto separation = ComputeDomainSeparation(matrix, domains).value();
  std::printf("\nwithin-domain mean CP correlation : %+.3f\n",
              separation.within_mean);
  std::printf("across-domain mean CP correlation : %+.3f\n",
              separation.across_mean);
  return 0;
}
