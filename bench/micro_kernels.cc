// Micro-benchmarks (google-benchmark) for the hot kernels and the design
// ablations DESIGN.md calls out: projection construction, pair-weight
// lookup strategy (flat hash map vs. binary search over adjacency),
// motif classification, triple intersection, wedge sampling, the Chung-Lu
// null model, and the ESU census.
#include <benchmark/benchmark.h>

#include <atomic>
#include <unordered_map>

#include "baseline/bipartite.h"
#include "baseline/graphlet.h"
#include "common/flat_map.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/scratch_arena.h"
#include "gen/generators.h"
#include "hypergraph/projection.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "motif/pattern.h"
#include "motif/reference.h"
#include "motif/stamp_kernels.h"
#include "random/chung_lu.h"

namespace {

using namespace mochy;

const Hypergraph& TestGraph() {
  static const Hypergraph graph = [] {
    GeneratorConfig config = DefaultConfig(Domain::kCoauthorship, 0.25);
    config.seed = 3;
    return GenerateDomainHypergraph(config).value();
  }();
  return graph;
}

const ProjectedGraph& TestProjection() {
  static const ProjectedGraph projection =
      ProjectedGraph::Build(TestGraph(), 2).value();
  return projection;
}

void BM_ProjectionBuild(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  for (auto _ : state) {
    auto projection =
        ProjectedGraph::Build(graph, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(projection);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_ProjectionBuild)->Arg(1)->Arg(4);

void BM_ProjectedDegreesOnly(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  for (auto _ : state) {
    auto degrees = ComputeProjectedDegrees(graph, 1);
    benchmark::DoNotOptimize(degrees);
  }
}
BENCHMARK(BM_ProjectedDegreesOnly);

void BM_ClassifyMotifKernel(benchmark::State& state) {
  Rng rng(1);
  // Pre-generate valid cardinality tuples from real instances.
  struct Tuple {
    uint64_t s[3], w[3], t;
  };
  std::vector<Tuple> tuples;
  const Hypergraph& graph = TestGraph();
  const ProjectedGraph& projection = TestProjection();
  for (EdgeId e = 0; e < graph.num_edges() && tuples.size() < 4096; e += 7) {
    const auto nbrs = projection.neighbors(e);
    for (size_t a = 0; a + 1 < nbrs.size() && tuples.size() < 4096; ++a) {
      const EdgeId j = nbrs[a].edge, k = nbrs[a + 1].edge;
      Tuple tuple;
      tuple.s[0] = graph.edge_size(e);
      tuple.s[1] = graph.edge_size(j);
      tuple.s[2] = graph.edge_size(k);
      tuple.w[0] = nbrs[a].weight;
      tuple.w[1] = projection.Weight(j, k);
      tuple.w[2] = nbrs[a + 1].weight;
      tuple.t = tuple.w[1] == 0 ? 0 : graph.TripleIntersectionSize(e, j, k);
      tuples.push_back(tuple);
    }
  }
  size_t index = 0;
  for (auto _ : state) {
    const Tuple& t = tuples[index++ % tuples.size()];
    benchmark::DoNotOptimize(ClassifyMotifOrZero(t.s[0], t.s[1], t.s[2],
                                                 t.w[0], t.w[1], t.w[2],
                                                 t.t));
  }
}
BENCHMARK(BM_ClassifyMotifKernel);

void BM_TripleIntersection(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  Rng rng(2);
  const size_t m = graph.num_edges();
  for (auto _ : state) {
    const EdgeId a = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId b = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId c = static_cast<EdgeId>(rng.UniformInt(m));
    benchmark::DoNotOptimize(graph.TripleIntersectionSize(a, b, c));
  }
}
BENCHMARK(BM_TripleIntersection);

// Ablation: O(1) flat-map pair-weight probes vs binary search in the
// sorted neighbor list vs std::unordered_map.
void BM_PairWeightFlatMap(benchmark::State& state) {
  const ProjectedGraph& projection = TestProjection();
  Rng rng(3);
  const size_t m = projection.num_edges();
  for (auto _ : state) {
    const EdgeId a = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId b = static_cast<EdgeId>(rng.UniformInt(m));
    benchmark::DoNotOptimize(projection.Weight(a, b));
  }
}
BENCHMARK(BM_PairWeightFlatMap);

void BM_PairWeightBinarySearch(benchmark::State& state) {
  const ProjectedGraph& projection = TestProjection();
  Rng rng(3);
  const size_t m = projection.num_edges();
  for (auto _ : state) {
    const EdgeId a = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId b = static_cast<EdgeId>(rng.UniformInt(m));
    const auto nbrs = projection.neighbors(a);
    const auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), b,
        [](const Neighbor& n, EdgeId e) { return n.edge < e; });
    const uint32_t w =
        (it != nbrs.end() && it->edge == b) ? it->weight : 0;
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_PairWeightBinarySearch);

void BM_PairWeightUnorderedMap(benchmark::State& state) {
  const ProjectedGraph& projection = TestProjection();
  std::unordered_map<uint64_t, uint32_t> map;
  for (EdgeId e = 0; e < projection.num_edges(); ++e) {
    for (const Neighbor& n : projection.neighbors(e)) {
      if (n.edge > e) map[PackPair(e, n.edge)] = n.weight;
    }
  }
  Rng rng(3);
  const size_t m = projection.num_edges();
  for (auto _ : state) {
    const EdgeId a = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId b = static_cast<EdgeId>(rng.UniformInt(m));
    const auto it = map.find(PackPair(a, b));
    benchmark::DoNotOptimize(it == map.end() ? 0u : it->second);
  }
}
BENCHMARK(BM_PairWeightUnorderedMap);

// Stamp-array pair-weight lookup as the MoCHy-E inner loop performs it:
// scatter one neighborhood into the epoch-stamped array, then probe. The
// scatter is amortized over the probes of the pair loop; compare against
// BM_PairWeightFlatMap / BinarySearch / UnorderedMap above.
void BM_PairWeightStampArray(benchmark::State& state) {
  const ProjectedGraph& projection = TestProjection();
  const size_t m = projection.num_edges();
  StampedWeights weights;
  weights.EnsureSize(m);
  Rng rng(3);
  int64_t probes = 0;
  for (auto _ : state) {
    const EdgeId a = static_cast<EdgeId>(rng.UniformInt(m));
    weights.NewEpoch();
    for (const Neighbor& n : projection.neighbors(a)) {
      weights.Set(n.edge, n.weight);
    }
    // Probe the pattern of a pair loop: another edge's neighbor ids.
    const EdgeId b = static_cast<EdgeId>(rng.UniformInt(m));
    uint64_t sum = 0;
    for (const Neighbor& n : projection.neighbors(b)) {
      sum += weights.Get(n.edge);
      ++probes;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(probes);
}
BENCHMARK(BM_PairWeightStampArray);

void BM_TripleIntersectionStamped(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  ScratchArena arena;
  arena.EnsureNodes(graph.num_nodes());
  Rng rng(2);
  const size_t m = graph.num_edges();
  for (auto _ : state) {
    const EdgeId a = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId b = static_cast<EdgeId>(rng.UniformInt(m));
    const EdgeId c = static_cast<EdgeId>(rng.UniformInt(m));
    internal::StampHubNodes(graph, a, arena);
    internal::StampPairNodes(graph, b, arena);
    benchmark::DoNotOptimize(
        internal::StampedTripleIntersection(graph, c, arena));
  }
}
BENCHMARK(BM_TripleIntersectionStamped);

// Ablation: claiming overhead of the hub scheduler. Per-hub: one atomic
// fetch_add per item (the pre-PR3 design). Chunked: one fetch_add per
// Σd²-balanced chunk (WorkChunkBoundaries). The loop body is deliberately
// tiny so the claim cost dominates.
void BM_HubClaimPerHub(benchmark::State& state) {
  const size_t n = 1 << 16;
  for (auto _ : state) {
    std::atomic<size_t> next{0};
    uint64_t sum = 0;
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      sum += i;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_HubClaimPerHub);

void BM_HubClaimChunked(benchmark::State& state) {
  const size_t n = 1 << 16;
  // Skewed per-item work estimates, as projected degrees are.
  std::vector<uint64_t> cost(n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) cost[i] = 1 + (rng.UniformInt(64) == 0 ? 640 : rng.UniformInt(8));
  const std::vector<size_t> chunks = WorkChunkBoundaries(cost, 64);
  const size_t num_chunks = chunks.size() - 1;
  for (auto _ : state) {
    std::atomic<size_t> next{0};
    uint64_t sum = 0;
    while (true) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      for (size_t i = chunks[c]; i < chunks[c + 1]; ++i) sum += i;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_HubClaimChunked);

void BM_MochyExact(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  const ProjectedGraph& projection = TestProjection();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountMotifsExact(
        graph, projection, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_MochyExact)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The retained pre-stamp kernel (motif/reference.h) on the same input, so
// the stamp-array win is measurable end-to-end in isolation.
void BM_MochyExactReference(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  const ProjectedGraph& projection = TestProjection();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::CountMotifsExact(
        graph, projection, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_MochyExactReference)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MochyAPlusSampling(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  const ProjectedGraph& projection = TestProjection();
  MochyAPlusOptions options;
  options.num_samples = static_cast<uint64_t>(state.range(0));
  options.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountMotifsWedgeSample(graph, projection, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MochyAPlusSampling)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_WedgeSampling(benchmark::State& state) {
  const ProjectedGraph& projection = TestProjection();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        projection.WedgeAt(rng.UniformInt(projection.num_wedges())));
  }
}
BENCHMARK(BM_WedgeSampling);

void BM_ChungLuSample(benchmark::State& state) {
  const Hypergraph& graph = TestGraph();
  uint64_t seed = 1;
  for (auto _ : state) {
    ChungLuOptions options;
    options.seed = seed++;
    benchmark::DoNotOptimize(GenerateChungLu(graph, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_ChungLuSample)->Unit(benchmark::kMillisecond);

void BM_EsuCensus(benchmark::State& state) {
  static const Graph star = [] {
    GeneratorConfig config = DefaultConfig(Domain::kContact, 0.15);
    config.seed = 3;
    return StarExpansion(GenerateDomainHypergraph(config).value());
  }();
  GraphletCensusOptions options;
  options.min_size = 3;
  options.max_size = static_cast<int>(state.range(0));
  options.sample_probability = state.range(0) == 5 ? 0.2 : 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountGraphlets(star, options));
  }
}
BENCHMARK(BM_EsuCensus)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CanonicalPatternTable(benchmark::State& state) {
  uint8_t bits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MotifIdFromPattern(bits));
    bits = static_cast<uint8_t>((bits + 1) & 0x7f);
  }
}
BENCHMARK(BM_CanonicalPatternTable);

}  // namespace

BENCHMARK_MAIN();
