// Regenerates Figure 9: characteristic profiles estimated by MoCHy-A+ at
// small sample counts vs. the exact CP.
//
// Paper shape to verify: even r = 0.1% of |∧| recovers the CP almost
// perfectly (correlation close to 1).
#include <cmath>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "profile/significance.h"
#include "profile/similarity.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 9: CP estimation vs number of wedge samples");

  const Domain domains[] = {Domain::kEmail, Domain::kContact,
                            Domain::kCoauthorship};
  for (Domain domain : domains) {
    GeneratorConfig config = DefaultConfig(domain, bench::BenchScale());
    config.seed = 13;
    const Hypergraph graph = GenerateDomainHypergraph(config).value();

    CharacteristicProfileOptions exact_options;
    exact_options.num_random_graphs = 3;
    exact_options.seed = 29;
    exact_options.num_threads = 2;
    const auto exact = ComputeCharacteristicProfile(graph, exact_options).value();
    const std::vector<double> exact_cp(exact.cp.begin(), exact.cp.end());

    std::printf("\n--- %s ---\n", DomainName(domain).c_str());
    std::printf("%10s %14s %10s\n", "r / |∧|", "correlation", "L2 diff");
    for (double ratio : {0.001, 0.005, 0.01, 0.05}) {
      CharacteristicProfileOptions options = exact_options;
      options.sample_ratio = ratio;
      const auto approx = ComputeCharacteristicProfile(graph, options).value();
      const std::vector<double> approx_cp(approx.cp.begin(), approx.cp.end());
      double l2 = 0.0;
      for (int i = 0; i < kNumHMotifs; ++i) {
        l2 += (approx_cp[i] - exact_cp[i]) * (approx_cp[i] - exact_cp[i]);
      }
      std::printf("%9.1f%% %14.4f %10.4f\n", 100 * ratio,
                  PearsonCorrelation(exact_cp, approx_cp), std::sqrt(l2));
    }
  }
  std::printf("\nshape check: correlation approaches 1 from small ratios on\n"
              "(the paper estimates CPs 'near perfectly' from few samples).\n");
  return 0;
}
