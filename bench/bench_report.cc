// Reproducible perf harness for the MoCHy hot paths: runs the production
// stamp-array kernels AND the retained pre-stamp baselines
// (motif/reference.h) for E/A/A+ on the example graphs and writes one
// machine-readable BENCH_*.json — wall time (min over repeats), hubs/s,
// samples/s, per-kernel timers and stamped-vs-reference speedups — so
// every PR leaves a measured trajectory behind. Counts from both kernel
// generations are compared bit-for-bit in-run; a mismatch fails the
// harness.
//
// Driven by tools/run_bench.py (which also owns the CI smoke-regression
// check); run it directly for ad-hoc measurements:
//
//   bench_report --out BENCH_pr3.json --scale 1.0 --threads 1 --repeat 3
//   bench_report --smoke --out BENCH_smoke.json
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "hypergraph/binary_format.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"
#include "motif/engine.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "motif/mochy_weighted.h"
#include "motif/per_edge.h"
#include "motif/reference.h"
#include "motif/streaming.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace mochy::bench {
namespace {

struct Config {
  std::string out = "BENCH_report.json";
  std::string tag = "report";
  // scale/repeat <= 0 mean "not set on the command line"; resolved after
  // parsing so --smoke provides defaults without clobbering explicit
  // flags.
  double scale = 0.0;
  size_t threads = 1;
  int repeat = 0;
  bool smoke = false;
  double sample_ratio = 0.1;
  // Sampler budget cap: on dense domains the projection is near-complete
  // and 0.1·|∧| would be millions of samples; the throughput metric does
  // not need that many.
  uint64_t max_samples = 50'000;
  // Sampler budget floor: the smoke gate needs every measured kernel in
  // the multi-millisecond range, above shared-runner timer jitter.
  uint64_t min_samples = 1;
};

struct KernelRow {
  std::string kernel;       // e.g. "mochy-e/stamped"
  size_t threads = 1;
  double wall_s = 0.0;      // min over repeats
  uint64_t samples = 0;     // 0 for exact kernels
  double hubs_per_s = 0.0;  // exact kernels: hubs (= |E|) per second
  double samples_per_s = 0.0;
};

struct GraphReport {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  uint64_t pins = 0;
  uint64_t wedges = 0;
  double projection_s = 0.0;
  std::vector<KernelRow> kernels;
  double exact_speedup = 0.0;  // reference wall / stamped wall, 0 if absent
  // Streaming scenario: the graph's edges replayed as an arrival stream
  // through StreamingEngine (one O(Δ) delta pass each), final counts
  // verified bit-identical to the exact kernels in-run.
  uint64_t stream_arrivals = 0;
  double stream_wall_s = 0.0;           // min over repeats
  double stream_arrivals_per_s = 0.0;
  double stream_mean_arrival_us = 0.0;  // mean per-arrival latency
  // (projection build + reference exact recount) / mean per-arrival cost:
  // what maintaining exact counts on one arrival costs with a recount
  // vs. with the incremental delta pass, at this graph's size.
  double stream_speedup_vs_recount = 0.0;
  // Decremental scenario: the populated graph drained back to empty,
  // one reverse delta pass per removal; the end state is verified to be
  // exactly the zero vector in-run.
  uint64_t stream_removals = 0;
  double stream_remove_wall_s = 0.0;    // min over repeats
  double stream_removals_per_s = 0.0;
  double stream_mean_removal_us = 0.0;
  // Sliding-window scenario: the edges replayed as a one-arrival-per-
  // tick trace through WindowMode::kSliding (horizon = 2 widths), so
  // every emitted window pays both the arrival and the eviction pass.
  uint64_t stream_windows = 0;
  uint64_t stream_evictions = 0;
  double stream_sliding_wall_s = 0.0;   // min over repeats
  double stream_windows_per_s = 0.0;
  // Multi-producer scenario: producer threads round-robin the edges
  // into a ShardedStreamingEngine while a drainer folds them in; final
  // counts verified bit-identical to the exact kernels in-run.
  uint64_t ingest_producers = 0;
  double ingest_wall_s = 0.0;           // min over repeats
  double ingest_edges_per_s = 0.0;
  // Memory scenario: MoCHy-A+ through the engine's lazy projection policy
  // under a budget of 1/8 the materialized footprint; estimates verified
  // bit-identical to the materialized kernel in-run.
  uint64_t mem_materialized_bytes = 0;  // full ProjectedGraph footprint
  uint64_t mem_budget_bytes = 0;        // configured memo budget
  uint64_t mem_lazy_peak_bytes = 0;     // memo peak + wedge index
  uint64_t mem_lazy_resident_bytes = 0; // memo resident + wedge index
  double mem_lazy_hit_rate = 0.0;       // warm-run memo hit rate
  uint64_t mem_lazy_recomputes = 0;     // warm-run recomputations
  double mem_lazy_wall_ratio = 0.0;     // lazy wall / materialized a+ wall
  // Out-of-core scenario: the graph round-tripped through the mmap-able
  // binary container (hypergraph/binary_format.h), then MoCHy-A+ at a
  // budget of 1/10 the materialized footprint with the spill-to-disk
  // tier attached; estimates verified bit-identical to the materialized
  // kernel in-run.
  uint64_t ooc_file_bytes = 0;          // size of the .mhg container
  uint64_t ooc_budget_bytes = 0;        // configured memo budget
  uint64_t ooc_spills = 0;              // records appended to spill logs
  uint64_t ooc_readmits = 0;            // neighborhoods served from disk
  uint64_t ooc_fallbacks = 0;           // corrupt/short reads -> recompute
  double ooc_hit_rate = 0.0;            // disk-tier hit rate:
                                        // readmits / (readmits + recomputes)
  double ooc_wall_ratio = 0.0;          // spill wall / materialized a+ wall
  uint64_t ooc_peak_rss_kb = 0;         // process peak RSS after the run
  // Serving scenario: a deterministic mixed count/profile workload driven
  // through MotifServer::HandleRequest in-process (no sockets, so the
  // numbers measure the serving layer, not the kernel or the transport).
  // Served counts are verified bit-identical to the direct kernel runs
  // above — both on the cold round and on the cached rounds.
  uint64_t serve_queries = 0;
  double serve_wall_s = 0.0;
  double serve_queries_per_s = 0.0;
  double serve_hit_rate = 0.0;  // result-cache hit rate over the workload
  double serve_p50_us = 0.0;    // per-query latency percentiles
  double serve_p99_us = 0.0;
  // Fault-resilience scenario: the same query mix over a real unix
  // socket, once clean and once under a seeded 1% fault schedule on
  // every frame-I/O point, with the client retrying transient failures.
  // Every response (clean or faulty) is verified bit-identical to the
  // direct kernel runs; the delta between the rows is the price of
  // riding out the faults (reconnects + backoff).
  uint64_t faults_queries = 0;
  double faults_clean_wall_s = 0.0;
  double faults_clean_qps = 0.0;
  double faults_clean_p99_us = 0.0;
  double faults_wall_s = 0.0;
  double faults_qps = 0.0;
  double faults_p99_us = 0.0;
  uint64_t faults_fired = 0;      // injected faults during the faulty phase
  uint64_t faults_dropped = 0;    // connections the server cut because of them
};

/// Minimum wall time of `fn` over `repeat` runs; the first run's result is
/// kept for the bit-identity check.
template <typename Fn>
double MinWall(int repeat, MotifCounts* out, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    Timer timer;
    MotifCounts counts = fn();
    const double elapsed = timer.Seconds();
    if (r == 0) {
      if (out != nullptr) *out = counts;
      best = elapsed;
    } else {
      best = std::min(best, elapsed);
    }
  }
  return best;
}

bool BitIdentical(const MotifCounts& a, const MotifCounts& b) {
  for (int t = 1; t <= kNumHMotifs; ++t) {
    if (a[t] != b[t]) return false;
  }
  return true;
}

GraphReport MeasureGraph(const std::string& name, const Hypergraph& graph,
                         const Config& config) {
  std::fprintf(stderr, "measuring %s (|E|=%zu)...\n", name.c_str(),
               graph.num_edges());
  GraphReport report;
  report.name = name;
  report.nodes = graph.num_nodes();
  report.edges = graph.num_edges();
  report.pins = graph.num_pins();

  Timer projection_timer;
  const ProjectedGraph projection =
      ProjectedGraph::Build(graph, config.threads).value();
  report.projection_s = projection_timer.Seconds();
  report.wedges = projection.num_wedges();

  const double m = static_cast<double>(graph.num_edges());
  auto add_exact = [&](const char* kernel, MotifCounts* counts, auto&& fn) {
    KernelRow row;
    row.kernel = kernel;
    row.threads = config.threads;
    row.wall_s = MinWall(config.repeat, counts, fn);
    row.hubs_per_s = row.wall_s > 0.0 ? m / row.wall_s : 0.0;
    report.kernels.push_back(row);
    return row.wall_s;
  };
  auto add_sampler = [&](const char* kernel, uint64_t samples,
                         MotifCounts* counts, auto&& fn) {
    KernelRow row;
    row.kernel = kernel;
    row.threads = config.threads;
    row.samples = samples;
    row.wall_s = MinWall(config.repeat, counts, fn);
    row.samples_per_s =
        row.wall_s > 0.0 ? static_cast<double>(samples) / row.wall_s : 0.0;
    report.kernels.push_back(row);
    return row.wall_s;
  };

  MotifCounts exact_stamped, exact_reference;
  const double stamped_wall =
      add_exact("mochy-e/stamped", &exact_stamped, [&] {
        return CountMotifsExact(graph, projection, config.threads);
      });
  const double reference_wall =
      add_exact("mochy-e/reference", &exact_reference, [&] {
        return reference::CountMotifsExact(graph, projection, config.threads);
      });
  if (!BitIdentical(exact_stamped, exact_reference)) {
    std::fprintf(stderr, "FATAL: %s: stamped exact counts diverge from the "
                         "reference kernel\n",
                 name.c_str());
    std::exit(1);
  }
  if (stamped_wall > 0.0) {
    report.exact_speedup = reference_wall / stamped_wall;
  }

  MochyAOptions a;
  a.num_samples = std::clamp(
      static_cast<uint64_t>(config.sample_ratio * m), config.min_samples,
      config.max_samples);
  a.num_threads = config.threads;
  MotifCounts a_stamped, a_reference;
  add_sampler("mochy-a/stamped", a.num_samples, &a_stamped, [&] {
    return CountMotifsEdgeSample(graph, projection, a);
  });
  add_sampler("mochy-a/reference", a.num_samples, &a_reference, [&] {
    return reference::CountMotifsEdgeSample(graph, projection, a);
  });
  if (!BitIdentical(a_stamped, a_reference)) {
    std::fprintf(stderr, "FATAL: %s: stamped MoCHy-A diverges from the "
                         "reference kernel\n",
                 name.c_str());
    std::exit(1);
  }

  MochyAPlusOptions aplus;
  aplus.num_samples = std::clamp(
      static_cast<uint64_t>(config.sample_ratio *
                            static_cast<double>(projection.num_wedges())),
      config.min_samples, config.max_samples);
  aplus.num_threads = config.threads;
  MotifCounts aplus_stamped, aplus_reference;
  const double aplus_wall =
      add_sampler("mochy-a+/stamped", aplus.num_samples, &aplus_stamped, [&] {
        return CountMotifsWedgeSample(graph, projection, aplus);
      });
  add_sampler("mochy-a+/reference", aplus.num_samples, &aplus_reference, [&] {
    return reference::CountMotifsWedgeSample(graph, projection, aplus);
  });
  if (!BitIdentical(aplus_stamped, aplus_reference)) {
    std::fprintf(stderr, "FATAL: %s: stamped MoCHy-A+ diverges from the "
                         "reference kernel\n",
                 name.c_str());
    std::exit(1);
  }

  // Weighted estimator (MoCHy-A+W) through the engine facade, verified
  // bit-identical to the projection-free kernel it promotes.
  {
    EngineOptions weighted_options;
    weighted_options.algorithm = Algorithm::kWeighted;
    weighted_options.num_samples = aplus.num_samples;
    weighted_options.seed = 1;
    const MotifEngine weighted_engine =
        MotifEngine::Create(graph, weighted_options).value();
    MotifCounts weighted_counts;
    add_sampler("mochy-w/engine", aplus.num_samples, &weighted_counts, [&] {
      return weighted_engine.Count(weighted_options).value().counts;
    });
    MochyWeightedOptions kernel_options;
    kernel_options.num_samples = aplus.num_samples;
    kernel_options.seed = 1;
    const MotifCounts weighted_kernel =
        CountMotifsWeightedWedge(graph, kernel_options).value().counts;
    if (!BitIdentical(weighted_counts, weighted_kernel)) {
      std::fprintf(stderr, "FATAL: %s: engine MoCHy-A+W diverges from the "
                           "projection-free kernel\n",
                   name.c_str());
      std::exit(1);
    }
  }

  // Per-edge strategy (the Table-4 HM26 rows) through the engine
  // facade. Two in-run oracles: bit-identity against the free-function
  // kernel, and every motif's column summing to exactly 3x the global
  // exact count (each instance credits its three member rows).
  {
    EngineOptions pe_options;
    pe_options.projection = ProjectionPolicy::kMaterialized;
    pe_options.num_threads = config.threads;
    const MotifEngine pe_engine =
        MotifEngine::Create(graph, pe_options).value();
    KernelRow row;
    row.kernel = "per_edge/engine";
    row.threads = config.threads;
    PerEdgeCounts engine_rows;
    for (int rep = 0; rep < std::max(config.repeat, 1); ++rep) {
      Timer timer;
      auto result = pe_engine.CountPerEdge(pe_options);
      const double wall = timer.Seconds();
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s: engine per-edge failed: %s\n",
                     name.c_str(), result.status().ToString().c_str());
        std::exit(1);
      }
      if (rep == 0) {
        engine_rows = std::move(result.value().rows);
        row.wall_s = wall;
      } else {
        row.wall_s = std::min(row.wall_s, wall);
      }
    }
    row.hubs_per_s = row.wall_s > 0.0 ? m / row.wall_s : 0.0;
    report.kernels.push_back(row);
    const PerEdgeCounts oracle_rows =
        ComputePerEdgeMotifCounts(graph, projection);
    if (engine_rows != oracle_rows) {
      std::fprintf(stderr, "FATAL: %s: engine per-edge rows diverge from "
                           "the free-function kernel\n",
                   name.c_str());
      std::exit(1);
    }
    for (int t = 1; t <= kNumHMotifs; ++t) {
      double column = 0.0;
      for (const auto& edge_row : engine_rows) column += edge_row[t - 1];
      if (column != 3.0 * exact_stamped[t]) {
        std::fprintf(stderr, "FATAL: %s: per-edge column for motif %d sums "
                             "to %g, want 3x the exact count %g\n",
                     name.c_str(), t, column, exact_stamped[t]);
        std::exit(1);
      }
    }
  }

  // Streaming scenario: replay the graph's own edges as an arrival
  // stream. The end state is the measured graph itself, so the final
  // incremental counts must equal the exact kernels bit-for-bit.
  MotifCounts streamed;
  KernelRow stream_row;
  stream_row.kernel = "streaming/replay";
  stream_row.threads = config.threads;
  stream_row.samples = graph.num_edges();
  stream_row.wall_s = MinWall(config.repeat, &streamed, [&] {
    StreamingOptions streaming;
    streaming.num_threads = config.threads;
    StreamingEngine engine(streaming);
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      auto added = engine.AddEdge(graph.edge(e));
      if (!added.ok()) {
        std::fprintf(stderr, "FATAL: %s: streaming AddEdge failed: %s\n",
                     name.c_str(), added.status().ToString().c_str());
        std::exit(1);
      }
    }
    return engine.counts();
  });
  stream_row.samples_per_s =
      stream_row.wall_s > 0.0 ? m / stream_row.wall_s : 0.0;
  report.kernels.push_back(stream_row);
  if (!BitIdentical(streamed, exact_stamped)) {
    std::fprintf(stderr, "FATAL: %s: streaming replay counts diverge from "
                         "the exact kernel\n",
                 name.c_str());
    std::exit(1);
  }
  report.stream_arrivals = graph.num_edges();
  report.stream_wall_s = stream_row.wall_s;
  report.stream_arrivals_per_s = stream_row.samples_per_s;
  const double mean_arrival_s =
      graph.num_edges() > 0 ? stream_row.wall_s / m : 0.0;
  report.stream_mean_arrival_us = mean_arrival_s * 1e6;
  if (mean_arrival_s > 0.0) {
    report.stream_speedup_vs_recount =
        (report.projection_s + reference_wall) / mean_arrival_s;
  }

  // Decremental scenario: drain the streamed graph back down through
  // the reverse delta pass. Each repeat repopulates a fresh engine
  // (untimed) and times only the removals; finishing at exactly the
  // zero vector pins every reverse enumeration to its forward twin
  // across the whole graph.
  {
    KernelRow remove_row;
    remove_row.kernel = "streaming/remove";
    remove_row.threads = config.threads;
    remove_row.samples = graph.num_edges();
    for (int rep = 0; rep < std::max(config.repeat, 1); ++rep) {
      StreamingOptions streaming;
      streaming.num_threads = config.threads;
      StreamingEngine engine(streaming);
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        if (!engine.AddEdge(graph.edge(e)).ok()) {
          std::fprintf(stderr, "FATAL: %s: decremental repopulate failed\n",
                       name.c_str());
          std::exit(1);
        }
      }
      Timer timer;
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        if (!engine.RemoveEdge(e).ok()) {
          std::fprintf(stderr, "FATAL: %s: RemoveEdge(%llu) failed\n",
                       name.c_str(), static_cast<unsigned long long>(e));
          std::exit(1);
        }
      }
      const double wall = timer.Seconds();
      if (rep == 0 || wall < remove_row.wall_s) remove_row.wall_s = wall;
      if (!BitIdentical(engine.counts(), MotifCounts())) {
        std::fprintf(stderr, "FATAL: %s: decremental drain did not return "
                             "the counts to zero\n",
                     name.c_str());
        std::exit(1);
      }
    }
    remove_row.samples_per_s =
        remove_row.wall_s > 0.0 ? m / remove_row.wall_s : 0.0;
    report.kernels.push_back(remove_row);
    report.stream_removals = graph.num_edges();
    report.stream_remove_wall_s = remove_row.wall_s;
    report.stream_removals_per_s = remove_row.samples_per_s;
    report.stream_mean_removal_us =
        graph.num_edges() > 0 ? remove_row.wall_s / m * 1e6 : 0.0;
  }

  // Sliding-window scenario: one arrival per time tick, window width
  // |E|/16, horizon two widths — every window close both ingests and
  // evicts, the steady state of a production sliding counter.
  {
    TemporalTrace trace;
    trace.arrivals.reserve(graph.num_edges());
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      TimedEdge arrival;
      arrival.time = e;
      const auto span = graph.edge(e);
      arrival.nodes.assign(span.begin(), span.end());
      trace.arrivals.push_back(std::move(arrival));
    }
    ReplayOptions sliding;
    sliding.streaming.num_threads = config.threads;
    sliding.window_width = std::max<uint64_t>(1, graph.num_edges() / 16);
    sliding.horizon = 2 * sliding.window_width;
    sliding.mode = WindowMode::kSliding;
    double wall = 0.0;
    for (int rep = 0; rep < std::max(config.repeat, 1); ++rep) {
      Timer timer;
      auto replayed = ReplayTrace(trace, sliding);
      const double elapsed = timer.Seconds();
      if (!replayed.ok()) {
        std::fprintf(stderr, "FATAL: %s: sliding replay failed: %s\n",
                     name.c_str(), replayed.status().ToString().c_str());
        std::exit(1);
      }
      if (rep == 0 || elapsed < wall) wall = elapsed;
      if (rep == 0) {
        report.stream_windows = replayed.value().windows.size();
        for (const WindowResult& window : replayed.value().windows) {
          report.stream_evictions += window.evictions;
        }
      }
    }
    report.stream_sliding_wall_s = wall;
    report.stream_windows_per_s =
        wall > 0.0 ? static_cast<double>(report.stream_windows) / wall : 0.0;
  }

  // Multi-producer scenario: 4 producer threads round-robin the edges
  // into a sharded engine while a drainer folds staged arrivals in;
  // whatever the interleaving, the final counts must equal the exact
  // kernels bit-for-bit.
  {
    constexpr size_t kProducers = 4;
    double wall = 0.0;
    for (int rep = 0; rep < std::max(config.repeat, 1); ++rep) {
      StreamingOptions streaming;
      streaming.num_threads = 1;  // producers supply the parallelism
      ShardedStreamingEngine sharded(kProducers, streaming);
      Timer timer;
      std::vector<std::thread> producers;
      for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (size_t e = p; e < graph.num_edges(); e += kProducers) {
            if (!sharded.Submit(p, graph.edge(static_cast<EdgeId>(e))).ok()) {
              std::fprintf(stderr, "FATAL: %s: sharded Submit failed\n",
                           name.c_str());
              std::exit(1);
            }
          }
        });
      }
      std::thread drainer([&] {
        for (int round = 0; round < 16; ++round) sharded.Drain();
      });
      for (std::thread& t : producers) t.join();
      drainer.join();
      const MotifCounts counts = sharded.Counts();  // final drain + read
      const double elapsed = timer.Seconds();
      if (rep == 0 || elapsed < wall) wall = elapsed;
      if (!BitIdentical(counts, exact_stamped)) {
        std::fprintf(stderr, "FATAL: %s: sharded ingest counts diverge from "
                             "the exact kernel\n",
                     name.c_str());
        std::exit(1);
      }
    }
    report.ingest_producers = kProducers;
    report.ingest_wall_s = wall;
    report.ingest_edges_per_s = wall > 0.0 ? m / wall : 0.0;
  }

  // Memory scenario: the same MoCHy-A+ workload through the engine's lazy
  // projection policy, budgeted to 1/8 of the materialized footprint. The
  // engine is built once (cold memo); repeats measure the steady state,
  // so hit rate and wall time reflect a warm, budget-resident memo.
  // Estimates must match the materialized kernel bit-for-bit.
  {
    report.mem_materialized_bytes = projection.MemoryBytes();
    EngineOptions lazy_options;
    lazy_options.algorithm = Algorithm::kLinkSample;
    lazy_options.projection = ProjectionPolicy::kLazy;
    lazy_options.num_samples = aplus.num_samples;
    lazy_options.num_threads = config.threads;
    lazy_options.seed = 1;  // = MochyAPlusOptions default the kernels used
    lazy_options.memory_budget =
        std::max<uint64_t>(1, report.mem_materialized_bytes / 8);
    report.mem_budget_bytes = lazy_options.memory_budget;
    const MotifEngine engine =
        MotifEngine::Create(graph, lazy_options).value();
    MotifCounts lazy_counts;
    EngineStats lazy_stats;
    KernelRow lazy_row;
    lazy_row.kernel = "mochy-a+/lazy";
    lazy_row.threads = config.threads;
    lazy_row.samples = aplus.num_samples;
    lazy_row.wall_s = MinWall(config.repeat, &lazy_counts, [&] {
      EngineResult counted = engine.Count(lazy_options).value();
      lazy_stats = counted.stats;
      return counted.counts;
    });
    lazy_row.samples_per_s =
        lazy_row.wall_s > 0.0
            ? static_cast<double>(aplus.num_samples) / lazy_row.wall_s
            : 0.0;
    report.kernels.push_back(lazy_row);
    if (!BitIdentical(lazy_counts, aplus_stamped)) {
      std::fprintf(stderr, "FATAL: %s: lazy-projection MoCHy-A+ diverges "
                           "from the materialized kernel\n",
                   name.c_str());
      std::exit(1);
    }
    if (lazy_stats.projection_peak_bytes >= report.mem_materialized_bytes) {
      std::fprintf(stderr, "FATAL: %s: lazy peak projection bytes (%llu) "
                           "not below the materialized footprint (%llu)\n",
                   name.c_str(),
                   static_cast<unsigned long long>(
                       lazy_stats.projection_peak_bytes),
                   static_cast<unsigned long long>(
                       report.mem_materialized_bytes));
      std::exit(1);
    }
    report.mem_lazy_peak_bytes = lazy_stats.projection_peak_bytes;
    report.mem_lazy_resident_bytes = lazy_stats.projection_bytes;
    report.mem_lazy_hit_rate = lazy_stats.lazy_hit_rate;
    report.mem_lazy_recomputes = lazy_stats.lazy_recomputes;
    if (aplus_wall > 0.0) {
      report.mem_lazy_wall_ratio = lazy_row.wall_s / aplus_wall;
    }
  }

  // Out-of-core scenario: the graph saved as an .mhg container, loaded
  // back through the binary reader, and counted at a budget of 1/10 the
  // materialized footprint with the spill tier attached — the full
  // storage stack (format round trip + disk-backed memo) priced in one
  // row. Estimates must match the materialized kernel bit-for-bit.
  {
    const std::string stem = "mochy_bench_ooc_" + std::to_string(::getpid());
    const std::string mhg_path =
        (std::filesystem::temp_directory_path() / (stem + ".mhg")).string();
    const std::string spill_dir =
        (std::filesystem::temp_directory_path() / (stem + "_spill")).string();
    if (Status s = SaveHypergraphBinary(graph, mhg_path); !s.ok()) {
      std::fprintf(stderr, "FATAL: %s: binary save failed: %s\n",
                   name.c_str(), s.ToString().c_str());
      std::exit(1);
    }
    std::error_code ec;
    report.ooc_file_bytes = std::filesystem::file_size(mhg_path, ec);
    auto from_disk = LoadHypergraphBinary(mhg_path);
    if (!from_disk.ok()) {
      std::fprintf(stderr, "FATAL: %s: binary load failed: %s\n",
                   name.c_str(), from_disk.status().ToString().c_str());
      std::exit(1);
    }
    EngineOptions spill_options;
    spill_options.algorithm = Algorithm::kLinkSample;
    spill_options.projection = ProjectionPolicy::kLazy;
    spill_options.num_samples = aplus.num_samples;
    spill_options.num_threads = config.threads;
    spill_options.seed = 1;  // = MochyAPlusOptions default the kernels used
    spill_options.memory_budget =
        std::max<uint64_t>(1, report.mem_materialized_bytes / 10);
    spill_options.spill_dir = spill_dir;
    report.ooc_budget_bytes = spill_options.memory_budget;
    {
      const MotifEngine engine =
          MotifEngine::Create(from_disk.value(), spill_options).value();
      MotifCounts spill_counts;
      EngineStats spill_stats;
      KernelRow spill_row;
      spill_row.kernel = "mochy-a+/spill";
      spill_row.threads = config.threads;
      spill_row.samples = aplus.num_samples;
      spill_row.wall_s = MinWall(config.repeat, &spill_counts, [&] {
        EngineResult counted = engine.Count(spill_options).value();
        spill_stats = counted.stats;
        return counted.counts;
      });
      spill_row.samples_per_s =
          spill_row.wall_s > 0.0
              ? static_cast<double>(aplus.num_samples) / spill_row.wall_s
              : 0.0;
      report.kernels.push_back(spill_row);
      if (!BitIdentical(spill_counts, aplus_stamped)) {
        std::fprintf(stderr, "FATAL: %s: out-of-core MoCHy-A+ (mmap load + "
                             "spill tier) diverges from the materialized "
                             "kernel\n",
                     name.c_str());
        std::exit(1);
      }
      report.ooc_spills = spill_stats.lazy_spills;
      report.ooc_readmits = spill_stats.lazy_spill_readmits;
      report.ooc_fallbacks = spill_stats.lazy_spill_fallbacks;
      const double disk_touches =
          static_cast<double>(spill_stats.lazy_spill_readmits) +
          static_cast<double>(spill_stats.lazy_recomputes);
      report.ooc_hit_rate =
          disk_touches > 0.0
              ? static_cast<double>(spill_stats.lazy_spill_readmits) /
                    disk_touches
              : 0.0;
      if (aplus_wall > 0.0) {
        report.ooc_wall_ratio = spill_row.wall_s / aplus_wall;
      }
    }  // engine destroyed: its spill logs unlink themselves
    struct rusage usage {};
    if (::getrusage(RUSAGE_SELF, &usage) == 0) {
      report.ooc_peak_rss_kb = static_cast<uint64_t>(usage.ru_maxrss);
    }
    std::filesystem::remove(mhg_path, ec);
    std::filesystem::remove_all(spill_dir, ec);
  }

  // Serving scenario: the graph loaded into a MotifServer, then a mixed
  // workload of distinct count/profile queries replayed for several
  // rounds — round 0 is all cache misses, later rounds all hits, so the
  // workload exercises both sides of the result cache. Every count
  // response (cold and cached) is decoded and compared bit-for-bit
  // against the direct kernel runs above.
  {
    MotifServer server{ServeOptions{}};
    if (Status s = server.LoadGraph(name, graph); !s.ok()) {
      std::fprintf(stderr, "FATAL: %s: serve load failed: %s\n", name.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    const std::string threads = std::to_string(config.threads);
    const std::vector<std::pair<std::string, const MotifCounts*>> queries = {
        {"count " + name + " algorithm=exact threads=" + threads,
         &exact_stamped},
        {"count " + name + " algorithm=edge-sample samples=" +
             std::to_string(a.num_samples) + " seed=1 threads=" + threads,
         &a_stamped},
        {"count " + name + " algorithm=link-sample samples=" +
             std::to_string(aplus.num_samples) + " seed=1 threads=" + threads,
         &aplus_stamped},
        {"count " + name + " algorithm=link-sample samples=" +
             std::to_string(aplus.num_samples) + " seed=7 threads=" + threads,
         nullptr},
        {"profile " + name + " random=2 seed=1 ratio=0.1 threads=" + threads,
         nullptr},
    };
    constexpr int kRounds = 4;
    std::vector<double> latencies;
    latencies.reserve(queries.size() * kRounds);
    Timer serve_timer;
    for (int round = 0; round < kRounds; ++round) {
      for (const auto& [request, expected] : queries) {
        Timer query_timer;
        const std::string response = server.HandleRequest(request);
        latencies.push_back(query_timer.Seconds());
        if (response.rfind("ok ", 0) != 0) {
          std::fprintf(stderr, "FATAL: %s: serve query failed: %s\n",
                       name.c_str(), response.c_str());
          std::exit(1);
        }
        if (expected == nullptr) continue;
        MotifCounts served;
        bool decoded = false;
        for (const std::string_view line : SplitLines(response)) {
          if (line.rfind("counts ", 0) == 0) {
            auto counts = DecodeCounts(line.substr(7));
            if (counts.ok()) {
              served = counts.value();
              decoded = true;
            }
          }
        }
        if (!decoded || !BitIdentical(served, *expected)) {
          std::fprintf(stderr, "FATAL: %s: served counts diverge from the "
                               "direct kernel run (%s round %d)\n",
                       name.c_str(), round == 0 ? "cold" : "cached", round);
          std::exit(1);
        }
      }
    }
    const double serve_wall = serve_timer.Seconds();
    const ServerStats stats = server.stats();
    report.serve_queries = latencies.size();
    report.serve_wall_s = serve_wall;
    report.serve_queries_per_s =
        serve_wall > 0.0 ? static_cast<double>(latencies.size()) / serve_wall
                         : 0.0;
    report.serve_hit_rate = stats.cache.HitRate();
    std::sort(latencies.begin(), latencies.end());
    report.serve_p50_us = latencies[latencies.size() / 2] * 1e6;
    report.serve_p99_us =
        latencies[std::min(latencies.size() - 1, latencies.size() * 99 / 100)] *
        1e6;

    KernelRow serve_row;
    serve_row.kernel = "serve/mixed";
    serve_row.threads = config.threads;
    serve_row.samples = latencies.size();
    serve_row.wall_s = serve_wall;
    serve_row.samples_per_s = report.serve_queries_per_s;
    report.kernels.push_back(serve_row);
  }

  // Fault-resilience scenario: the mixed workload again, but over a real
  // unix socket (frames, deadlines, reconnects — the transport the
  // in-process scenario skips), measured clean and then under a seeded
  // 1% fault schedule on every frame-I/O point. The retrying client must
  // land a bit-identical answer either way; the faulty row prices what
  // the retries cost.
  {
    ServeOptions serve_options;
    serve_options.socket_path =
        "/tmp/mochy_bench_serve_" + std::to_string(::getpid()) + ".sock";
    MotifServer server(serve_options);
    if (Status s = server.LoadGraph(name, graph); !s.ok()) {
      std::fprintf(stderr, "FATAL: %s: serve/faults load failed: %s\n",
                   name.c_str(), s.ToString().c_str());
      std::exit(1);
    }
    std::thread serving([&server] { (void)server.Serve(); });
    const std::string threads = std::to_string(config.threads);
    const std::vector<std::pair<std::string, const MotifCounts*>> queries = {
        {"count " + name + " algorithm=exact threads=" + threads,
         &exact_stamped},
        {"count " + name + " algorithm=edge-sample samples=" +
             std::to_string(a.num_samples) + " seed=1 threads=" + threads,
         &a_stamped},
        {"count " + name + " algorithm=link-sample samples=" +
             std::to_string(aplus.num_samples) + " seed=1 threads=" + threads,
         &aplus_stamped},
    };
    ClientOptions client_options;
    client_options.backoff.max_attempts = 12;
    client_options.backoff.initial_delay_ms = 1.0;
    client_options.backoff.max_delay_ms = 20.0;
    MotifClient client(serve_options.socket_path, 0, client_options);
    for (int attempt = 0; attempt < 250 && !client.Connect().ok(); ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    constexpr int kFaultRounds = 6;
    auto run_phase = [&](const char* phase, double* wall_out,
                         double* p99_out) {
      std::vector<double> latencies;
      latencies.reserve(queries.size() * kFaultRounds);
      Timer phase_timer;
      for (int round = 0; round < kFaultRounds; ++round) {
        for (const auto& [request, expected] : queries) {
          Timer query_timer;
          auto response = client.RequestWithRetry(request);
          latencies.push_back(query_timer.Seconds());
          if (!response.ok() || response.value().rfind("ok ", 0) != 0) {
            std::fprintf(stderr, "FATAL: %s: serve/faults %s query failed: %s\n",
                         name.c_str(), phase,
                         response.ok() ? response.value().c_str()
                                       : response.status().ToString().c_str());
            std::exit(1);
          }
          MotifCounts served;
          bool decoded = false;
          for (const std::string_view line : SplitLines(response.value())) {
            if (line.rfind("counts ", 0) == 0) {
              auto counts = DecodeCounts(line.substr(7));
              if (counts.ok()) {
                served = counts.value();
                decoded = true;
              }
            }
          }
          if (!decoded || !BitIdentical(served, *expected)) {
            std::fprintf(stderr, "FATAL: %s: serve/faults %s response diverges "
                                 "from the direct kernel run\n",
                         name.c_str(), phase);
            std::exit(1);
          }
        }
      }
      *wall_out = phase_timer.Seconds();
      std::sort(latencies.begin(), latencies.end());
      *p99_out = latencies[std::min(latencies.size() - 1,
                                    latencies.size() * 99 / 100)] * 1e6;
      return latencies.size();
    };

    // Warm the server's result cache first so both phases price the
    // transport + retries, not a one-time cold kernel run.
    for (const auto& [request, expected] : queries) {
      (void)expected;
      (void)client.RequestWithRetry(request);
    }

    report.faults_queries =
        run_phase("clean", &report.faults_clean_wall_s,
                  &report.faults_clean_p99_us);
    report.faults_clean_qps =
        report.faults_clean_wall_s > 0.0
            ? static_cast<double>(report.faults_queries) /
                  report.faults_clean_wall_s
            : 0.0;

    FaultPlan plan;
    plan.seed = 1234;
    plan.rate = 0.01;  // 1% of frame reads/writes fail with EIO
    FaultInjector::Global().Arm(plan);
    run_phase("faulty", &report.faults_wall_s, &report.faults_p99_us);
    FaultInjector::Global().Disarm();
    report.faults_qps =
        report.faults_wall_s > 0.0
            ? static_cast<double>(report.faults_queries) /
                  report.faults_wall_s
            : 0.0;
    report.faults_fired = FaultInjector::Global().total_fired();
    report.faults_dropped = server.stats().dropped_connections;

    client.Close();
    server.RequestStop();
    serving.join();

    KernelRow faults_row;
    faults_row.kernel = "serve/faults";
    faults_row.threads = config.threads;
    faults_row.samples = report.faults_queries;
    faults_row.wall_s = report.faults_wall_s;
    faults_row.samples_per_s = report.faults_qps;
    report.kernels.push_back(faults_row);
  }
  return report;
}

void WriteJson(const Config& config, const std::vector<GraphReport>& graphs) {
  FILE* out = std::fopen(config.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n",
                 config.out.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"mochy-bench-v1\",\n");
  std::fprintf(out, "  \"tag\": \"%s\",\n", config.tag.c_str());
  std::fprintf(out,
               "  \"config\": {\"scale\": %g, \"threads\": %zu, "
               "\"repeat\": %d, \"smoke\": %s, \"sample_ratio\": %g, "
               "\"max_samples\": %llu},\n",
               config.scale, config.threads, config.repeat,
               config.smoke ? "true" : "false", config.sample_ratio,
               static_cast<unsigned long long>(config.max_samples));
  std::fprintf(out, "  \"host\": {\"hardware_threads\": %zu, \"ndebug\": %s},\n",
               DefaultThreadCount(),
#ifdef NDEBUG
               "true"
#else
               "false"
#endif
  );
  std::fprintf(out, "  \"graphs\": [\n");
  for (size_t g = 0; g < graphs.size(); ++g) {
    const GraphReport& report = graphs[g];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"name\": \"%s\",\n", report.name.c_str());
    std::fprintf(out,
                 "      \"nodes\": %zu, \"edges\": %zu, \"pins\": %llu, "
                 "\"wedges\": %llu,\n",
                 report.nodes, report.edges,
                 static_cast<unsigned long long>(report.pins),
                 static_cast<unsigned long long>(report.wedges));
    std::fprintf(out, "      \"timers\": {\"projection_s\": %.6f},\n",
                 report.projection_s);
    std::fprintf(out, "      \"exact_speedup_vs_reference\": %.3f,\n",
                 report.exact_speedup);
    std::fprintf(out,
                 "      \"streaming\": {\"arrivals\": %llu, \"wall_s\": %.6f, "
                 "\"arrivals_per_s\": %.1f, \"mean_arrival_us\": %.3f, "
                 "\"per_arrival_speedup_vs_recount\": %.1f, "
                 "\"removals\": %llu, \"remove_wall_s\": %.6f, "
                 "\"removals_per_s\": %.1f, \"mean_removal_us\": %.3f},\n",
                 static_cast<unsigned long long>(report.stream_arrivals),
                 report.stream_wall_s, report.stream_arrivals_per_s,
                 report.stream_mean_arrival_us,
                 report.stream_speedup_vs_recount,
                 static_cast<unsigned long long>(report.stream_removals),
                 report.stream_remove_wall_s, report.stream_removals_per_s,
                 report.stream_mean_removal_us);
    std::fprintf(out,
                 "      \"windowed\": {\"windows\": %llu, "
                 "\"evictions\": %llu, \"wall_s\": %.6f, "
                 "\"windows_per_s\": %.1f},\n",
                 static_cast<unsigned long long>(report.stream_windows),
                 static_cast<unsigned long long>(report.stream_evictions),
                 report.stream_sliding_wall_s, report.stream_windows_per_s);
    std::fprintf(out,
                 "      \"ingest\": {\"producers\": %llu, \"wall_s\": %.6f, "
                 "\"edges_per_s\": %.1f},\n",
                 static_cast<unsigned long long>(report.ingest_producers),
                 report.ingest_wall_s, report.ingest_edges_per_s);
    std::fprintf(out,
                 "      \"memory\": {\"materialized_bytes\": %llu, "
                 "\"budget_bytes\": %llu, \"lazy_peak_bytes\": %llu, "
                 "\"lazy_resident_bytes\": %llu, \"lazy_hit_rate\": %.4f, "
                 "\"lazy_recomputes\": %llu, "
                 "\"lazy_vs_materialized_wall\": %.3f},\n",
                 static_cast<unsigned long long>(
                     report.mem_materialized_bytes),
                 static_cast<unsigned long long>(report.mem_budget_bytes),
                 static_cast<unsigned long long>(report.mem_lazy_peak_bytes),
                 static_cast<unsigned long long>(
                     report.mem_lazy_resident_bytes),
                 report.mem_lazy_hit_rate,
                 static_cast<unsigned long long>(report.mem_lazy_recomputes),
                 report.mem_lazy_wall_ratio);
    std::fprintf(out,
                 "      \"out_of_core\": {\"file_bytes\": %llu, "
                 "\"budget_bytes\": %llu, \"spills\": %llu, "
                 "\"readmits\": %llu, \"fallbacks\": %llu, "
                 "\"disk_hit_rate\": %.4f, "
                 "\"spill_vs_materialized_wall\": %.3f, "
                 "\"peak_rss_kb\": %llu},\n",
                 static_cast<unsigned long long>(report.ooc_file_bytes),
                 static_cast<unsigned long long>(report.ooc_budget_bytes),
                 static_cast<unsigned long long>(report.ooc_spills),
                 static_cast<unsigned long long>(report.ooc_readmits),
                 static_cast<unsigned long long>(report.ooc_fallbacks),
                 report.ooc_hit_rate, report.ooc_wall_ratio,
                 static_cast<unsigned long long>(report.ooc_peak_rss_kb));
    std::fprintf(out,
                 "      \"serving\": {\"queries\": %llu, \"wall_s\": %.6f, "
                 "\"queries_per_s\": %.1f, \"hit_rate\": %.4f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f},\n",
                 static_cast<unsigned long long>(report.serve_queries),
                 report.serve_wall_s, report.serve_queries_per_s,
                 report.serve_hit_rate, report.serve_p50_us,
                 report.serve_p99_us);
    std::fprintf(out,
                 "      \"serving_faults\": {\"queries\": %llu, "
                 "\"fault_rate\": 0.01, "
                 "\"clean_wall_s\": %.6f, \"clean_qps\": %.1f, "
                 "\"clean_p99_us\": %.1f, "
                 "\"faulty_wall_s\": %.6f, \"faulty_qps\": %.1f, "
                 "\"faulty_p99_us\": %.1f, "
                 "\"faults_fired\": %llu, \"connections_dropped\": %llu},\n",
                 static_cast<unsigned long long>(report.faults_queries),
                 report.faults_clean_wall_s, report.faults_clean_qps,
                 report.faults_clean_p99_us, report.faults_wall_s,
                 report.faults_qps, report.faults_p99_us,
                 static_cast<unsigned long long>(report.faults_fired),
                 static_cast<unsigned long long>(report.faults_dropped));
    std::fprintf(out, "      \"kernels\": [\n");
    for (size_t k = 0; k < report.kernels.size(); ++k) {
      const KernelRow& row = report.kernels[k];
      std::fprintf(out,
                   "        {\"kernel\": \"%s\", \"threads\": %zu, "
                   "\"wall_s\": %.6f, \"samples\": %llu, "
                   "\"hubs_per_s\": %.1f, \"samples_per_s\": %.1f}%s\n",
                   row.kernel.c_str(), row.threads, row.wall_s,
                   static_cast<unsigned long long>(row.samples),
                   row.hubs_per_s, row.samples_per_s,
                   k + 1 < report.kernels.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n");
    std::fprintf(out, "    }%s\n", g + 1 < graphs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "FATAL: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      config.out = next("--out");
    } else if (arg == "--tag") {
      config.tag = next("--tag");
      // The tag is emitted into JSON unescaped; keep it trivially safe.
      for (const char c : config.tag) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
            c != '_' && c != '.') {
          std::fprintf(stderr,
                       "FATAL: --tag must match [A-Za-z0-9._-]+, got '%s'\n",
                       config.tag.c_str());
          return 2;
        }
      }
    } else if (arg == "--scale") {
      config.scale = std::atof(next("--scale"));
    } else if (arg == "--threads") {
      config.threads = static_cast<size_t>(std::atoi(next("--threads")));
    } else if (arg == "--repeat") {
      config.repeat = std::max(1, std::atoi(next("--repeat")));
    } else if (arg == "--smoke") {
      config.smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out FILE] [--tag NAME] "
                   "[--scale S] [--threads N] [--repeat R] [--smoke]\n");
      return 2;
    }
  }
  if (config.smoke) {
    // One small graph: the CI perf-smoke payload. Defaults (explicit
    // --scale/--repeat flags win) are sized so every measured kernel
    // takes multiple milliseconds — large enough that the >25%
    // regression gate measures the kernel, not timer jitter; the sample
    // floor pulls the (otherwise sub-ms) sampler kernels up too.
    if (config.scale <= 0.0) config.scale = 0.2;
    if (config.repeat <= 0) config.repeat = 5;
    config.min_samples = 5000;
    if (config.tag == "report") config.tag = "smoke";
  } else {
    if (config.scale <= 0.0) config.scale = 1.0;
    if (config.repeat <= 0) config.repeat = 3;
  }

  std::vector<GraphReport> reports;
  if (config.smoke) {
    GeneratorConfig gen = DefaultConfig(Domain::kCoauthorship, config.scale);
    gen.seed = 3;
    reports.push_back(MeasureGraph(
        "coauth-smoke", GenerateDomainHypergraph(gen).value(), config));
  } else {
    for (const Domain domain :
         {Domain::kCoauthorship, Domain::kContact, Domain::kEmail,
          Domain::kTags, Domain::kThreads}) {
      GeneratorConfig gen = DefaultConfig(domain, config.scale);
      gen.seed = 3;
      reports.push_back(MeasureGraph(
          DomainName(domain), GenerateDomainHypergraph(gen).value(), config));
    }
  }

  WriteJson(config, reports);
  for (const GraphReport& report : reports) {
    std::printf("%-10s |E|=%-6zu wedges=%-8llu exact speedup %.2fx | "
                "stream %.0f arrivals/s, %.0f removals/s, "
                "per-arrival speedup %.0fx | "
                "sliding %.0f windows/s (%llu evictions) | "
                "ingest x%llu %.0f edges/s | "
                "lazy a+ peak %.2f/%.2fMB, hit %.0f%%, wall %.2fx | "
                "ooc %llu spills, disk hit %.0f%%, wall %.2fx | "
                "serve %.0f q/s, hit %.0f%%, p99 %.0fus | "
                "faults(1%%) %.0f->%.0f q/s, p99 %.0f->%.0fus, "
                "%llu fired\n",
                report.name.c_str(), report.edges,
                static_cast<unsigned long long>(report.wedges),
                report.exact_speedup, report.stream_arrivals_per_s,
                report.stream_removals_per_s,
                report.stream_speedup_vs_recount,
                report.stream_windows_per_s,
                static_cast<unsigned long long>(report.stream_evictions),
                static_cast<unsigned long long>(report.ingest_producers),
                report.ingest_edges_per_s,
                report.mem_lazy_peak_bytes / 1048576.0,
                report.mem_materialized_bytes / 1048576.0,
                report.mem_lazy_hit_rate * 100.0,
                report.mem_lazy_wall_ratio,
                static_cast<unsigned long long>(report.ooc_spills),
                report.ooc_hit_rate * 100.0, report.ooc_wall_ratio,
                report.serve_queries_per_s, report.serve_hit_rate * 100.0,
                report.serve_p99_us, report.faults_clean_qps,
                report.faults_qps, report.faults_clean_p99_us,
                report.faults_p99_us,
                static_cast<unsigned long long>(report.faults_fired));
  }
  std::printf("wrote %s\n", config.out.c_str());
  return 0;
}

}  // namespace
}  // namespace mochy::bench

int main(int argc, char** argv) { return mochy::bench::Main(argc, argv); }
