// Regenerates Table 3: per-motif instance counts in one real dataset per
// domain vs. the mean over 5 Chung-Lu randomizations, with each motif's
// count rank, rank difference (RD) and relative count (RC).
//
// Paper shape to verify: real and random count distributions are clearly
// different; h-motifs 17/18 (a hyperedge with two disjoint subsets) are
// drastically over-represented in the *random* hypergraphs.
#include <array>
#include <cmath>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "motif/mochy_e.h"
#include "profile/significance.h"
#include "random/chung_lu.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Table 3: real vs random h-motif counts (RD, RC)");

  const Domain domains[] = {Domain::kCoauthorship, Domain::kContact,
                            Domain::kEmail, Domain::kTags, Domain::kThreads};
  for (Domain domain : domains) {
    GeneratorConfig config = DefaultConfig(domain, bench::BenchScale());
    config.seed = 21;
    const Hypergraph graph = GenerateDomainHypergraph(config).value();
    const MotifCounts real = CountMotifsExact(graph, 2);

    std::vector<MotifCounts> randoms;
    for (int i = 0; i < 5; ++i) {
      ChungLuOptions cl;
      cl.seed = 100 + static_cast<uint64_t>(i);
      const Hypergraph randomized = GenerateChungLu(graph, cl).value();
      randoms.push_back(CountMotifsExact(randomized, 2));
    }
    const MotifCounts random_mean = MotifCounts::Mean(randoms);
    const auto real_rank = RankByCount(real);
    const auto rand_rank = RankByCount(random_mean);
    const auto rank_diff = RankDifference(real, random_mean);
    const auto relative = RelativeCounts(real, random_mean);

    std::printf("\n--- %s ---\n", DomainName(domain).c_str());
    std::printf("%7s %14s %14s %4s %7s\n", "h-motif", "real(rank)",
                "random(rank)", "RD", "RC");
    for (int t = 1; t <= kNumHMotifs; ++t) {
      std::printf("%7d %8s (%2d) %8s (%2d) %4d %+7.2f\n", t,
                  bench::Sci(real[t]).c_str(), real_rank[t - 1],
                  bench::Sci(random_mean[t]).c_str(), rand_rank[t - 1],
                  rank_diff[t - 1], relative[t - 1]);
    }
    // Headline observation from Section 4.2: in the paper's real datasets,
    // h-motifs 17/18 (a hyperedge plus two disjoint subsets) occur far more
    // often in the *randomized* hypergraphs. With synthetic stand-ins this
    // direction reproduces for the densest domains (tags; partially email/
    // coauth) but not for all -- see EXPERIMENTS.md for the analysis.
    const double rc17 = relative[16], rc18 = relative[17];
    std::printf("observation: RC(17) = %+.2f, RC(18) = %+.2f "
                "(paper: strongly negative)\n", rc17, rc18);
    // The primary Table 3 claim -- real and random count distributions are
    // clearly distinguished -- is quantified as the mean |RC| and mean RD.
    double mean_abs_rc = 0.0, mean_rd = 0.0;
    for (int t = 0; t < kNumHMotifs; ++t) {
      mean_abs_rc += std::abs(relative[t]) / kNumHMotifs;
      mean_rd += static_cast<double>(rank_diff[t]) / kNumHMotifs;
    }
    std::printf("distinguishability: mean |RC| = %.2f, mean RD = %.1f "
                "(0 would mean indistinguishable)\n", mean_abs_rc, mean_rd);
  }
  return 0;
}
