// Regenerates Figure 11: on-the-fly MoCHy-A+ under different memoization
// budgets, plus the eviction-policy ablation DESIGN.md calls out.
//
// Paper shape to verify: speed rises with the memo budget, and the
// degree-priority policy beats random and LRU eviction at small budgets
// ("memoizing 1% of the edges achieves speedups of about 2").
#include "bench/bench_util.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "hypergraph/lazy_projection.h"
#include "motif/mochy_aplus.h"

int main() {
  using namespace mochy;
  bench::PrintHeader(
      "Figure 11: on-the-fly MoCHy-A+ memoization budget & policy ablation");

  GeneratorConfig config = DefaultConfig(Domain::kThreads, bench::BenchScale(0.35));
  config.seed = 5;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();
  const ProjectedDegrees degrees = ComputeProjectedDegrees(graph, 2);

  // Estimate the bytes of a full projection to express budgets as a
  // fraction of the projected graph ("% of edges memoized").
  uint64_t full_bytes = 0;
  for (uint32_t d : degrees.degree) {
    full_bytes += d * sizeof(Neighbor) + 64;
  }
  MochyAPlusOptions sampling;
  sampling.num_samples = std::max<uint64_t>(1, degrees.num_wedges / 10);
  sampling.seed = 3;
  std::printf("dataset: |E| = %zu, |wedges| = %llu, full projection ~%.1f MB,"
              " r = %llu\n",
              graph.num_edges(),
              static_cast<unsigned long long>(degrees.num_wedges),
              full_bytes / 1048576.0,
              static_cast<unsigned long long>(sampling.num_samples));

  struct PolicyEntry {
    EvictionPolicy policy;
    const char* name;
  };
  const PolicyEntry policies[] = {
      {EvictionPolicy::kDegreePriority, "degree"},
      {EvictionPolicy::kLru, "lru"},
      {EvictionPolicy::kRandom, "random"},
  };

  std::printf("\n%9s | %8s | %10s %12s %12s %8s\n", "budget%", "policy",
              "time(s)", "computes", "hits", "speedup");
  double base_time = -1.0;
  for (double percent : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    for (const PolicyEntry& entry : policies) {
      LazyProjectionOptions lazy;
      lazy.memory_budget_bytes =
          static_cast<uint64_t>(full_bytes * percent / 100.0);
      lazy.policy = entry.policy;
      LazyProjection::Stats stats;
      Timer timer;
      const MotifCounts counts = CountMotifsWedgeSampleOnTheFly(
          graph, degrees, sampling, lazy, &stats);
      (void)counts;
      const double seconds = timer.Seconds();
      if (base_time < 0.0) base_time = seconds;
      std::printf("%8.1f%% | %8s | %10.3f %12llu %12llu %7.2fx\n", percent,
                  entry.name, seconds,
                  static_cast<unsigned long long>(stats.computations),
                  static_cast<unsigned long long>(stats.memo_hits),
                  base_time / seconds);
      if (percent == 0.0) break;  // policies are identical at zero budget
    }
  }
  std::printf(
      "\nshape check: more budget -> fewer recomputations -> faster, with\n"
      "degree-priority ahead of LRU/random at partial budgets. Note: the\n"
      "paper's 2x-at-1%% point relies on the extreme projected-degree skew\n"
      "of threads-ubuntu; our synthetic degree distribution is flatter, so\n"
      "the same speedup appears at a larger budget (see EXPERIMENTS.md).\n");
  return 0;
}
