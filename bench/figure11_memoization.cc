// Regenerates Figure 11: memory-bounded MoCHy-A+ under different
// memoization budgets — now running through the engine's projection
// policy (ProjectionPolicy::kLazy + EngineOptions::memory_budget) — plus
// the raw eviction-policy ablation DESIGN.md calls out.
//
// Paper shape to verify: speed rises with the memo budget, the lazy path
// never materializes the full projection (peak projection bytes stay
// within the budget), and estimates are bit-identical to the materialized
// engine for the same seed. Exits 1 on any divergence.
#include <cinttypes>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "hypergraph/lazy_projection.h"
#include "motif/engine.h"
#include "motif/mochy_aplus.h"

int main() {
  using namespace mochy;
  bench::PrintHeader(
      "Figure 11: memory-bounded MoCHy-A+ — engine projection policy + "
      "eviction ablation");

  GeneratorConfig config =
      DefaultConfig(Domain::kThreads, bench::BenchScale(0.35));
  config.seed = 5;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();

  // Materialized reference: the engine default, full projection resident.
  const MotifEngine eager = MotifEngine::Create(graph, 2).value();
  const uint64_t full_bytes = eager.projection().MemoryBytes();

  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.num_samples =
      std::max<uint64_t>(1, eager.projection().num_wedges() / 10);
  options.seed = 3;
  options.num_threads = 2;

  Timer eager_timer;
  const EngineResult reference = eager.Count(options).value();
  const double eager_seconds = eager_timer.Seconds();
  std::printf("dataset: |E| = %zu, |wedges| = %llu, materialized projection "
              "%.1f MB, r = %llu, eager time %.3fs\n",
              graph.num_edges(),
              static_cast<unsigned long long>(eager.num_wedges()),
              full_bytes / 1048576.0,
              static_cast<unsigned long long>(options.num_samples),
              eager_seconds);

  std::printf("\nengine path (--projection lazy --memory-budget B):\n");
  std::printf("%9s | %10s %9s %12s %12s %10s\n", "budget%", "time(s)",
              "hit-rate", "recomputes", "peak bytes", "vs eager");
  for (double percent : {0.1, 1.0, 10.0, 50.0}) {
    EngineOptions lazy_options = options;
    lazy_options.projection = ProjectionPolicy::kLazy;
    lazy_options.memory_budget =
        std::max<uint64_t>(1, static_cast<uint64_t>(full_bytes * percent /
                                                    100.0));
    Timer timer;
    const MotifEngine engine =
        MotifEngine::Create(graph, lazy_options).value();
    const EngineResult lazy = engine.Count(lazy_options).value();
    const double seconds = timer.Seconds();
    for (int t = 1; t <= kNumHMotifs; ++t) {
      if (lazy.counts[t] != reference.counts[t]) {
        std::printf("FATAL: lazy estimate diverges from materialized at "
                    "motif %d (budget %.1f%%)\n",
                    t, percent);
        return 1;
      }
    }
    if (lazy.stats.projection_peak_bytes >= full_bytes) {
      std::printf("FATAL: lazy peak projection bytes (%" PRIu64
                  ") not below the materialized footprint (%" PRIu64 ")\n",
                  lazy.stats.projection_peak_bytes, full_bytes);
      return 1;
    }
    std::printf("%8.1f%% | %10.3f %9.2f %12llu %12llu %9.2fx\n", percent,
                seconds, lazy.stats.lazy_hit_rate,
                static_cast<unsigned long long>(lazy.stats.lazy_recomputes),
                static_cast<unsigned long long>(
                    lazy.stats.projection_peak_bytes),
                seconds > 0.0 ? eager_seconds / seconds : 0.0);
  }

  // Raw single-threaded ablation: the eviction policies under partial
  // budgets (wedge-admission is the production default; degree / LRU /
  // random retained from the paper's comparison).
  const ProjectedDegrees degrees = ComputeProjectedDegrees(graph, 2);
  MochyAPlusOptions sampling;
  sampling.num_samples = options.num_samples;
  sampling.seed = 3;

  struct PolicyEntry {
    EvictionPolicy policy;
    const char* name;
  };
  const PolicyEntry policies[] = {
      {EvictionPolicy::kWedgeAdmission, "wedge"},
      {EvictionPolicy::kDegreePriority, "degree"},
      {EvictionPolicy::kLru, "lru"},
      {EvictionPolicy::kRandom, "random"},
  };

  std::printf("\neviction ablation (single-threaded on-the-fly):\n");
  std::printf("%9s | %8s | %10s %12s %12s %8s\n", "budget%", "policy",
              "time(s)", "computes", "hits", "speedup");
  double base_time = -1.0;
  for (double percent : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    for (const PolicyEntry& entry : policies) {
      LazyProjectionOptions lazy;
      lazy.memory_budget_bytes =
          static_cast<uint64_t>(full_bytes * percent / 100.0);
      lazy.policy = entry.policy;
      LazyProjection::Stats stats;
      Timer timer;
      const MotifCounts counts =
          CountMotifsWedgeSampleOnTheFly(graph, degrees, sampling, lazy,
                                         &stats)
              .value();
      (void)counts;
      const double seconds = timer.Seconds();
      if (base_time < 0.0) base_time = seconds;
      std::printf("%8.1f%% | %8s | %10.3f %12llu %12llu %7.2fx\n", percent,
                  entry.name, seconds,
                  static_cast<unsigned long long>(stats.computations),
                  static_cast<unsigned long long>(stats.memo_hits),
                  base_time / seconds);
      if (percent == 0.0) break;  // policies are identical at zero budget
    }
  }
  std::printf(
      "\nshape check: more budget -> fewer recomputations -> faster, with\n"
      "the reuse-aware policies (wedge-admission, degree) ahead of\n"
      "LRU/random at partial budgets. Note: the paper's 2x-at-1%% point\n"
      "relies on the extreme projected-degree skew of threads-ubuntu; our\n"
      "synthetic degree distribution is flatter, so the same speedup\n"
      "appears at a larger budget (see EXPERIMENTS.md).\n");
  return 0;
}
