// Regenerates Figure 10: parallel speedups of MoCHy-E and MoCHy-A+ with
// 1..8 threads.
//
// Paper shape to verify: both algorithms scale near-linearly (paper: 5.4x
// and 6.7x at 8 threads). Absolute speedups depend on the machine's cores.
#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 10: parallel speedup (MoCHy-E, MoCHy-A+)");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  GeneratorConfig config =
      DefaultConfig(Domain::kThreads, bench::BenchScale(0.4));
  config.seed = 5;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();
  const ProjectedGraph projection = ProjectedGraph::Build(graph, 4).value();
  const uint64_t samples = projection.num_wedges() / 4;
  std::printf("dataset: |E| = %zu, |wedges| = %llu, A+ samples = %llu\n",
              graph.num_edges(),
              static_cast<unsigned long long>(projection.num_wedges()),
              static_cast<unsigned long long>(samples));

  double base_e = 0.0, base_ap = 0.0;
  std::printf("%8s | %12s %8s | %12s %8s\n", "threads", "E time(s)",
              "speedup", "A+ time(s)", "speedup");
  for (size_t threads : {1, 2, 4, 8}) {
    Timer te;
    const MotifCounts exact = CountMotifsExact(graph, projection, threads);
    const double e_seconds = te.Seconds();
    MochyAPlusOptions options;
    options.num_samples = samples;
    options.seed = 3;
    options.num_threads = threads;
    Timer ta;
    const MotifCounts approx =
        CountMotifsWedgeSample(graph, projection, options);
    const double ap_seconds = ta.Seconds();
    (void)exact;
    (void)approx;
    if (threads == 1) {
      base_e = e_seconds;
      base_ap = ap_seconds;
    }
    std::printf("%8zu | %12.3f %7.2fx | %12.3f %7.2fx\n", threads, e_seconds,
                base_e / e_seconds, ap_seconds, base_ap / ap_seconds);
  }
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("\nNOTE: this machine exposes a single hardware thread, so\n"
                "no parallel speedup is observable here; on multi-core\n"
                "hardware both algorithms scale with the thread count\n"
                "(paper: 5.4x / 6.7x at 8 threads). Thread-count\n"
                "independence of the results is verified by the tests.\n");
  } else {
    std::printf("\nshape check: speedup grows with thread count for both\n"
                "algorithms (sub-linear beyond physical cores is expected).\n");
  }
  return 0;
}
