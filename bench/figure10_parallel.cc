// Regenerates Figure 10: parallel speedups of MoCHy-E and MoCHy-A+ with
// 1..8 threads.
//
// Paper shape to verify: both algorithms scale near-linearly (paper: 5.4x
// and 6.7x at 8 threads). Absolute speedups depend on the machine's cores.
//
// Both variants run through the MotifEngine facade; only
// EngineOptions::num_threads varies between runs.
#include <thread>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "motif/engine.h"

int main() {
  using namespace mochy;
  bench::PrintHeader("Figure 10: parallel speedup (MoCHy-E, MoCHy-A+)");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  GeneratorConfig config =
      DefaultConfig(Domain::kThreads, bench::BenchScale(0.4));
  config.seed = 5;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();
  const MotifEngine engine = MotifEngine::Create(graph, 4).value();
  const uint64_t samples = engine.projection().num_wedges() / 4;
  std::printf("dataset: |E| = %zu, |wedges| = %llu, A+ samples = %llu\n",
              graph.num_edges(),
              static_cast<unsigned long long>(engine.projection().num_wedges()),
              static_cast<unsigned long long>(samples));

  double base_e = 0.0, base_ap = 0.0;
  std::printf("%8s | %12s %8s | %12s %8s\n", "threads", "E time(s)",
              "speedup", "A+ time(s)", "speedup");
  for (size_t threads : {1, 2, 4, 8}) {
    EngineOptions options;
    options.num_threads = threads;

    options.algorithm = Algorithm::kExact;
    const EngineResult exact = engine.Count(options).value();

    options.algorithm = Algorithm::kLinkSample;
    options.num_samples = samples;
    options.seed = 3;
    const EngineResult approx = engine.Count(options).value();

    const double e_seconds = exact.stats.elapsed_seconds;
    const double ap_seconds = approx.stats.elapsed_seconds;
    if (threads == 1) {
      base_e = e_seconds;
      base_ap = ap_seconds;
    }
    std::printf("%8zu | %12.3f %7.2fx | %12.3f %7.2fx\n", threads, e_seconds,
                base_e / e_seconds, ap_seconds, base_ap / ap_seconds);
  }
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("\nNOTE: this machine exposes a single hardware thread, so\n"
                "no parallel speedup is observable here; on multi-core\n"
                "hardware both algorithms scale with the thread count\n"
                "(paper: 5.4x / 6.7x at 8 threads). Thread-count\n"
                "independence of the results is verified by the tests.\n");
  } else {
    std::printf("\nshape check: speedup grows with thread count for both\n"
                "algorithms (sub-linear beyond physical cores is expected).\n");
  }
  return 0;
}
