/// \file
/// Fixed-size worker pool used by the parallel MoCHy variants.
///
/// Tasks are arbitrary callables. The pool exists for the library's
/// ParallelWorkers / ParallelFor (see parallel.h), which is how
/// Algorithm 1, MoCHy-E, the samplers and BatchRunner parallelize over
/// hyperedges / samples / batch items (Section 3.4 of the paper). One
/// process-wide instance (SharedThreadPool()) executes every parallel
/// region, so concurrent engines and batches share one set of workers
/// instead of oversubscribing the machine.
///
/// \par Thread safety
/// Submit() and Wait() are safe to call from any thread. Submit() may
/// additionally be called from inside a running task; Wait() must NOT —
/// the waiting task itself counts as in-flight, so the "all done"
/// condition could never hold (guaranteed self-deadlock). Destruction
/// drains the queue before joining.
///
/// \par Scheduling contract
/// Tasks run in FIFO order but with no isolation between submitters, and
/// a task must never block waiting for a *later-queued* task to finish —
/// with all workers busy that later task may never start (deadlock).
/// Higher-level code upholds this by running nested parallel regions
/// inline on the worker that encounters them (see parallel.h), which is
/// also why batch items never submit sub-tasks of their own.
///
/// \par Determinism
/// Which worker executes a task is nondeterministic; every algorithm in
/// this library therefore derives its results from the task's *index*
/// (hub id, sample number, batch item), never from the executing worker,
/// which is what makes counting results thread-count-invariant.
#ifndef MOCHY_COMMON_THREAD_POOL_H_
#define MOCHY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mochy {

/// Fixed-size FIFO task pool; see the file comment for the scheduling
/// contract.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (fixed at construction).
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker. Thread-safe; may be
  /// called from inside a running task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing — including
  /// tasks submitted by other threads; callers that need to wait for
  /// *their* work only should count completions themselves (as
  /// ParallelWorkers does). Never call from inside a task: the caller's
  /// own task stays in-flight, so this would deadlock.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_THREAD_POOL_H_
