// Fixed-size worker pool used by the parallel MoCHy variants.
//
// Tasks are arbitrary callables; Submit() is thread-safe. The pool exists
// for the library's ParallelFor (see parallel.h), which is how Algorithm 1,
// MoCHy-E and the samplers parallelize over hyperedges / samples
// (Section 3.4 of the paper).
#ifndef MOCHY_COMMON_THREAD_POOL_H_
#define MOCHY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mochy {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_THREAD_POOL_H_
