/// \file
/// Byte-budgeted LRU cache for serving-layer results.
///
/// The serve layer (src/serve/) answers repeated queries from a result
/// cache keyed by (graph fingerprint, canonicalized EngineOptions); this
/// is the storage behind it. The contract follows the memory vocabulary
/// of docs/MEMORY.md (admission / residency / eviction, byte-denominated
/// budget — the unit ParseMemoryBudget parses):
///
/// - **Residency**: entries are charged their key + value bytes plus a
///   fixed per-entry overhead; the summed charge never exceeds the
///   budget.
/// - **Admission**: an entry whose own charge exceeds the whole budget is
///   rejected outright (counted in `admission_rejects`) — one oversized
///   result must not flush the entire cache.
/// - **Eviction**: admitting an entry evicts least-recently-used entries
///   until the new entry fits. Get() refreshes recency.
///
/// \par Thread safety
/// All methods are safe to call concurrently (one internal mutex). The
/// cache stores values by copy; Get() returns a copy, so no reference
/// escapes the lock.
#ifndef MOCHY_COMMON_LRU_CACHE_H_
#define MOCHY_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace mochy {

/// Counters describing cache effectiveness; returned by
/// BudgetedLruCache::stats() as one consistent snapshot.
struct LruCacheStats {
  uint64_t hits = 0;               ///< Get() calls that found the key
  uint64_t misses = 0;             ///< Get() calls that did not
  uint64_t insertions = 0;         ///< entries admitted by Put()
  uint64_t evictions = 0;          ///< entries evicted to make room
  uint64_t admission_rejects = 0;  ///< Put() calls rejected (entry > budget)
  uint64_t resident_bytes = 0;     ///< summed charge of resident entries
  uint64_t budget_bytes = 0;       ///< configured budget
  size_t entries = 0;              ///< resident entry count

  /// hits / (hits + misses); 0 when no Get() has been served.
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// String-keyed, string-valued LRU map bounded by a byte budget. The
/// serve layer stores serialized response payloads, which keeps the
/// byte accounting exact (no guessing at heap shapes of structured
/// values) and makes a cache hit a plain memcpy onto the wire.
class BudgetedLruCache {
 public:
  /// Fixed per-entry bookkeeping charge (list + map node estimate), on
  /// top of the key and value bytes themselves.
  static constexpr uint64_t kEntryOverheadBytes = 64;

  /// A zero budget disables the cache: every Put() is an admission
  /// reject, every Get() a miss.
  explicit BudgetedLruCache(uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  BudgetedLruCache(const BudgetedLruCache&) = delete;
  BudgetedLruCache& operator=(const BudgetedLruCache&) = delete;

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<std::string> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->value;
  }

  /// Admits (or refreshes) `key` -> `value`, evicting LRU entries until
  /// it fits. Returns false when the entry alone exceeds the budget (the
  /// admission reject); an existing entry under `key` is replaced either
  /// way (removed even on reject, so a stale value never outlives a
  /// newer, uncacheably large one).
  bool Put(const std::string& key, std::string value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = index_.find(key); it != index_.end()) {
      stats_.resident_bytes -= it->second->charge;
      entries_.erase(it->second);
      index_.erase(it);
    }
    const uint64_t charge = key.size() + value.size() + kEntryOverheadBytes;
    if (charge > budget_bytes_) {
      ++stats_.admission_rejects;
      return false;
    }
    while (stats_.resident_bytes + charge > budget_bytes_) {
      const Entry& victim = entries_.back();
      stats_.resident_bytes -= victim.charge;
      index_.erase(victim.key);
      entries_.pop_back();
      ++stats_.evictions;
    }
    entries_.push_front(Entry{key, std::move(value), charge});
    index_[key] = entries_.begin();
    stats_.resident_bytes += charge;
    ++stats_.insertions;
    return true;
  }

  /// One consistent snapshot of the counters.
  LruCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    LruCacheStats snapshot = stats_;
    snapshot.budget_bytes = budget_bytes_;
    snapshot.entries = index_.size();
    return snapshot;
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
    uint64_t charge = 0;
  };

  const uint64_t budget_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  LruCacheStats stats_;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_LRU_CACHE_H_
