#include "common/alias_table.h"

#include "common/logging.h"

namespace mochy {

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasTable: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("AliasTable: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("AliasTable: total weight is zero");
  }

  const size_t n = weights.size();
  AliasTable table;
  table.total_weight_ = total;
  table.prob_.assign(n, 0.0);
  table.alias_.assign(n, 0);

  // Vose's stable two-worklist construction.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    table.prob_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are all (approximately) probability 1.
  for (uint32_t i : large) table.prob_[i] = 1.0;
  for (uint32_t i : small) table.prob_[i] = 1.0;
  return table;
}

uint64_t AliasTable::Sample(Rng& rng) const {
  MOCHY_DCHECK(!prob_.empty());
  const uint64_t bucket = rng.UniformInt(prob_.size());
  if (rng.UniformDouble() < prob_[bucket]) return bucket;
  return alias_[bucket];
}

}  // namespace mochy
