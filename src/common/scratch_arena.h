// Epoch-stamped scratch arrays for the counting hot paths.
//
// The MoCHy kernels repeatedly need "a map from a dense id (hyperedge or
// node) to a small value, emptied between hubs / samples". Hash probes pay
// a mix + probe chain per lookup and zero-clearing an |E|-sized array per
// hub pays O(|E|); an epoch-stamped array gives O(1) true-random-access
// reads and O(1) logical clears: each slot stores the epoch it was written
// in, and bumping the epoch invalidates every slot at once. Slots are only
// physically zeroed when the 32-bit epoch wraps (once per ~4.3e9 clears).
//
// ScratchArena bundles the four stamped structures the kernels share and
// LocalScratchArena() hands every pool worker a persistent thread-local
// instance, so batch items and repeated Count() calls reuse the same
// allocations instead of reallocating |E|-sized vectors per run.
#ifndef MOCHY_COMMON_SCRATCH_ARENA_H_
#define MOCHY_COMMON_SCRATCH_ARENA_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mochy {

/// Dense id -> uint32 weight map with O(1) epoch clears. Each slot packs
/// (epoch << 32 | weight) into one uint64 so a probe costs a single load:
/// the stamp comparison and the value come from the same cache line.
class StampedWeights {
 public:
  /// Grows to at least `n` slots; never shrinks, existing stamps survive.
  void EnsureSize(size_t n) {
    if (slots_.size() < n) slots_.resize(n, 0);
  }

  size_t size() const { return slots_.size(); }

  /// Logically clears every slot. O(1) except on 32-bit epoch wraparound.
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(slots_.begin(), slots_.end(), uint64_t{0});
      epoch_ = 1;
    }
  }

  /// Sets slot `i` in the current epoch.
  void Set(size_t i, uint32_t value) {
    slots_[i] = (static_cast<uint64_t>(epoch_) << 32) | value;
  }

  /// Value of slot `i`, or 0 when it was not written this epoch.
  uint32_t Get(size_t i) const {
    const uint64_t slot = slots_[i];
    return (slot >> 32) == epoch_ ? static_cast<uint32_t>(slot) : 0;
  }

  /// Whether slot `i` was written this epoch.
  bool Test(size_t i) const { return (slots_[i] >> 32) == epoch_; }

  /// Heap footprint in bytes.
  size_t MemoryBytes() const { return slots_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> slots_;
  // Starts above the zero-initialized slot stamps so a fresh array reads
  // as empty even before the first NewEpoch().
  uint32_t epoch_ = 1;
};

/// Dense id set (membership only) with O(1) epoch clears.
class StampedSet {
 public:
  /// Grows to at least `n` slots; never shrinks.
  void EnsureSize(size_t n) {
    if (stamps_.size() < n) stamps_.resize(n, 0);
  }

  size_t size() const { return stamps_.size(); }

  /// Logically empties the set. O(1) except on 32-bit epoch wraparound.
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), uint32_t{0});
      epoch_ = 1;
    }
  }

  /// Inserts id `i`.
  void Insert(size_t i) { stamps_[i] = epoch_; }

  /// Whether id `i` is in the set this epoch.
  bool Test(size_t i) const { return stamps_[i] == epoch_; }

  /// Heap footprint in bytes.
  size_t MemoryBytes() const { return stamps_.size() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> stamps_;
  // Starts above the zero-initialized stamps so a fresh set reads as
  // empty even before the first NewEpoch().
  uint32_t epoch_ = 1;
};

/// The per-thread scratch the counting kernels share. One arena serves any
/// number of graphs: Ensure*() only ever grows the arrays, and epochs make
/// stale contents from a previous graph invisible. Obtain it through
/// LocalScratchArena() inside a worker; never share one across threads.
struct ScratchArena {
  /// w(e_x, ·) scatter target (MoCHy-E pair loop, sampler stamp arrays).
  StampedWeights edge_weight;
  /// Second edge-indexed array for kernels that stamp two neighborhoods
  /// at once (the samplers' N(e_i) membership + weights).
  StampedWeights edge_weight2;
  /// Node membership of the current hub / sampled hyperedge e_i.
  StampedSet node_hub;
  /// Node membership of e_i ∩ e_j for the current pair (triple kernel).
  StampedSet node_pair;

  /// Sizes every edge-indexed structure for `m` hyperedges.
  void EnsureEdges(size_t m) {
    edge_weight.EnsureSize(m);
    edge_weight2.EnsureSize(m);
  }

  /// Sizes every node-indexed structure for `n` nodes.
  void EnsureNodes(size_t n) {
    node_hub.EnsureSize(n);
    node_pair.EnsureSize(n);
  }

  /// Total heap footprint in bytes.
  size_t MemoryBytes() const {
    return edge_weight.MemoryBytes() + edge_weight2.MemoryBytes() +
           node_hub.MemoryBytes() + node_pair.MemoryBytes();
  }
};

/// The calling thread's persistent arena. Pool workers live for the whole
/// process, so across engine runs and batch items each worker keeps — and
/// reuses — one grown-to-fit arena; no per-run allocation. The arena is
/// plain scratch: callers must Ensure*() capacity and must not assume any
/// contents across calls.
ScratchArena& LocalScratchArena();

}  // namespace mochy

#endif  // MOCHY_COMMON_SCRATCH_ARENA_H_
