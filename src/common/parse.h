/// \file
/// Validating numeric parsers for command-line flags and wire requests.
///
/// The C `atoi`/`atof` family silently maps junk to 0 and lets negatives
/// wrap through unsigned conversions ("--threads -1" becoming a huge
/// size_t). Every parser here consumes the WHOLE input or fails: junk,
/// trailing garbage, signs on unsigned values, overflow and (for doubles)
/// NaN/infinity all return InvalidArgument with the offending text, so
/// callers can surface a usage error instead of running with a silently
/// mangled value. Used by mochy_cli and the serve-layer request decoder.
#ifndef MOCHY_COMMON_PARSE_H_
#define MOCHY_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace mochy {

/// Parses a non-negative decimal integer ("0", "42"). No sign, no
/// whitespace, no hex/octal, whole string only. Errors on empty input,
/// junk, a leading '-' or '+', and overflow past UINT64_MAX.
Result<uint64_t> ParseUint64(std::string_view text);

/// ParseUint64 plus an inclusive range check; `what` names the flag in
/// the error message (e.g. "--threads").
Result<uint64_t> ParseUint64InRange(std::string_view text, uint64_t min_value,
                                    uint64_t max_value, std::string_view what);

/// Parses a decimal integer with an optional leading '-'. Whole string
/// only; errors on junk and on values outside [INT64_MIN, INT64_MAX].
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a finite double ("0.5", "-1", "1e-3"). Whole string only;
/// errors on junk, trailing garbage, NaN, infinity and empty input.
Result<double> ParseDouble(std::string_view text);

/// ParseDouble plus a strict positivity check (> 0); `what` names the
/// flag in the error message.
Result<double> ParsePositiveDouble(std::string_view text,
                                   std::string_view what);

}  // namespace mochy

#endif  // MOCHY_COMMON_PARSE_H_
