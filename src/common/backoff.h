/// \file
/// Exponential backoff with deterministic jitter for transient failures.
///
/// Retrying a dial or a frame exchange is correct only for failures the
/// peer may recover from — a refused connect, an overloaded server, a
/// timed-out frame — and only with spacing that does not synchronize
/// retries across clients. `Backoff` produces the classic exponentially
/// growing, jittered delay sequence, but the jitter is drawn from the
/// library's seeded `Rng`, so a retry schedule is reproducible from its
/// seed like every other randomized component here (common/rng.h).
///
/// `RetryWithBackoff` wraps a callable returning `Status` or `Result<T>`
/// and retries while `IsRetriableStatus` holds, sleeping between
/// attempts. Queries in this system are idempotent (counting is pure and
/// the server's cache makes repeats cheap), so retrying a request whose
/// fate is unknown is always safe. See docs/OPERATIONS.md for the
/// end-to-end retry semantics.
#ifndef MOCHY_COMMON_BACKOFF_H_
#define MOCHY_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace mochy {

/// Shape of a retry schedule; the CLI retry flags map onto this.
struct BackoffOptions {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 4;
  /// Base delay before the first retry, in milliseconds.
  double initial_delay_ms = 10.0;
  /// Growth factor per retry (attempt k waits initial * multiplier^k).
  double multiplier = 2.0;
  /// Hard cap applied before jitter.
  double max_delay_ms = 2000.0;
  /// Jitter fraction in [0, 1]: the delay is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1], de-synchronizing retry storms while
  /// never exceeding the capped delay.
  double jitter = 0.5;
  /// Seed of the jitter stream (deterministic per Backoff instance).
  uint64_t seed = 1;
};

/// True for failures a retry can plausibly fix: transport errors
/// (kIOError), per-frame timeouts (kDeadlineExceeded), and overload
/// shedding (kUnavailable). Argument, grammar, and not-found errors are
/// deterministic — retrying them only repeats the mistake.
inline bool IsRetriableStatus(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kUnavailable;
}

/// The delay sequence of one retry loop. Pure: NextDelayMs() never
/// sleeps, so tests can assert the schedule exactly.
class Backoff {
 public:
  explicit Backoff(const BackoffOptions& options = {})
      : options_(options), rng_(options.seed) {}

  /// Attempts consumed so far (incremented by NextDelayMs).
  int attempt() const { return attempt_; }

  /// Whether another attempt is allowed by max_attempts.
  bool Exhausted() const { return attempt_ >= options_.max_attempts - 1; }

  /// The jittered delay to wait before the next retry, advancing the
  /// schedule. Deterministic in (options.seed, call index).
  double NextDelayMs() {
    const double base =
        options_.initial_delay_ms *
        PowMultiplier(attempt_);
    const double capped = std::min(base, options_.max_delay_ms);
    ++attempt_;
    const double jitter = std::clamp(options_.jitter, 0.0, 1.0);
    const double scale = 1.0 - jitter * rng_.UniformDouble();
    return capped * scale;
  }

 private:
  double PowMultiplier(int k) const {
    double factor = 1.0;
    for (int i = 0; i < k; ++i) factor *= options_.multiplier;
    return factor;
  }

  BackoffOptions options_;
  Rng rng_;
  int attempt_ = 0;
};

namespace internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  static const Status ok = Status::OK();
  return r.ok() ? ok : r.status();
}
inline bool IsOk(const Status& s) { return s.ok(); }
template <typename T>
bool IsOk(const Result<T>& r) {
  return r.ok();
}
}  // namespace internal

/// Runs `fn` (returning Status or Result<T>) up to max_attempts times,
/// sleeping the jittered backoff delay between attempts, and returns the
/// first success or the last failure. Non-retriable failures return
/// immediately. `sleep_ms` exists so tests can observe the schedule
/// instead of actually sleeping; the default really sleeps.
template <typename Fn, typename SleepFn>
auto RetryWithBackoff(const BackoffOptions& options, Fn&& fn,
                      SleepFn&& sleep_ms) -> decltype(fn()) {
  Backoff backoff(options);
  while (true) {
    auto outcome = fn();
    if (internal::IsOk(outcome)) return outcome;
    if (!IsRetriableStatus(internal::StatusOf(outcome))) return outcome;
    if (backoff.Exhausted()) return outcome;
    sleep_ms(backoff.NextDelayMs());
  }
}

template <typename Fn>
auto RetryWithBackoff(const BackoffOptions& options, Fn&& fn)
    -> decltype(fn()) {
  return RetryWithBackoff(options, std::forward<Fn>(fn), [](double ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  });
}

}  // namespace mochy

#endif  // MOCHY_COMMON_BACKOFF_H_
