/// \file
/// Deterministic fault injection for the serving and persistence layers.
///
/// Robustness claims are only as good as the faults they were tested
/// against, so the I/O paths that must survive failure — the frame
/// protocol (serve/protocol.cc), the server's accept loop, and the
/// streaming WAL — are instrumented with **named injection points**:
/// each syscall site asks `MOCHY_FAULT_POINT("protocol.write")` what to
/// do before touching the kernel. Disarmed (the default, and the only
/// state production code ever sees) the query is one relaxed load of a
/// cold atomic and a predictable branch — no locks, no allocation, no
/// measurable cost (guarded by the perf-smoke gate). Armed, decisions
/// come from a `FaultPlan`:
///
///  - explicit rules — "fail the 3rd hit of wal.fsync with EIO",
///    "short-read every 2nd hit of protocol.read" — matched first;
///  - a background Bernoulli rate, derived deterministically from
///    (plan seed, point name, per-point hit ordinal) exactly like
///    `RandomDynamicSchedule` derives its schedule from a seed, so a
///    chaos run replays bit-identically given the same hit sequence.
///
/// The injector is a process-wide singleton (faults are a property of
/// the process under test, not of one component); tests arm it, run,
/// assert on the per-point hit/fired counters, and disarm. See
/// docs/OPERATIONS.md for how the chaos tests use it.
#ifndef MOCHY_COMMON_FAULT_H_
#define MOCHY_COMMON_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mochy {

/// What an armed injection point tells its call site to do.
struct FaultAction {
  enum class Kind {
    kNone,     ///< proceed normally
    kError,    ///< fail the operation as if the syscall set `fault_errno`
    kShortIo,  ///< cap this read/write at `max_bytes` bytes (>= 1)
  };
  Kind kind = Kind::kNone;
  int fault_errno = 0;
  size_t max_bytes = 0;

  bool none() const { return kind == Kind::kNone; }
};

/// Returns a FaultAction that fails with `err` (defaults to EIO-style 5).
FaultAction FaultError(int err = 5);
/// Returns a FaultAction that truncates the I/O to `max_bytes`.
FaultAction FaultShortIo(size_t max_bytes);

/// One explicit trigger for a named point. `nth` fires exactly once, on
/// the nth hit of the point (1-based); `every` fires on every multiple
/// (every=3 -> hits 3, 6, 9, ...). Set exactly one of them non-zero.
struct FaultRule {
  std::string point;
  uint64_t nth = 0;
  uint64_t every = 0;
  FaultAction action;
};

/// A complete, seed-reproducible fault schedule.
struct FaultPlan {
  /// Seed of the background-rate stream; same role as a
  /// RandomDynamicSchedule seed — one number reproduces the whole run.
  uint64_t seed = 1;
  /// Background probability that any hit fires `rate_action`, decided
  /// deterministically per (seed, point, hit ordinal). 0 disables the
  /// background stream (rules still apply).
  double rate = 0.0;
  FaultAction rate_action = FaultError();
  /// Explicit rules, matched before the background rate.
  std::vector<FaultRule> rules;
};

/// Process-wide fault injector. All methods are thread-safe; the armed
/// check is lock-free (one relaxed atomic load).
class FaultInjector {
 public:
  /// The process singleton; never destroyed (tests arm and disarm it).
  static FaultInjector& Global();

  /// True when a plan is armed. Inline and relaxed: this is the only
  /// cost a disarmed process pays at an injection point.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Installs `plan` and resets all counters. Arming while another
  /// thread is mid-hit is safe (the hit uses whichever plan it observes).
  void Arm(FaultPlan plan);

  /// Removes the plan; every subsequent hit is kNone at atomic-load cost.
  /// Counters are retained until the next Arm() for post-run assertions.
  void Disarm();

  /// Records one hit of `point` and returns the action to take. Called
  /// by MOCHY_FAULT_POINT only when Armed().
  FaultAction OnPoint(std::string_view point);

  /// Total hits of `point` since the last Arm().
  uint64_t hits(std::string_view point) const;
  /// Hits of `point` that returned a non-kNone action since last Arm().
  uint64_t fired(std::string_view point) const;
  /// Sum of fired() over all points.
  uint64_t total_fired() const;

 private:
  FaultInjector() = default;

  static std::atomic<bool> armed_;

  struct PointState {
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::unordered_map<std::string, PointState> points_;
};

}  // namespace mochy

/// The per-site hook: evaluates to the FaultAction for this hit, or a
/// default-constructed (kNone) action at one-atomic-load cost when
/// nothing is armed. `point` is a string literal naming the site.
#define MOCHY_FAULT_POINT(point)                          \
  (::mochy::FaultInjector::Armed()                        \
       ? ::mochy::FaultInjector::Global().OnPoint(point)  \
       : ::mochy::FaultAction{})

#endif  // MOCHY_COMMON_FAULT_H_
