#include "common/thread_pool.h"

#include "common/logging.h"

namespace mochy {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    MOCHY_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mochy
