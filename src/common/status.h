// Status / Result error model for fallible API boundaries.
//
// Follows the Arrow / RocksDB idiom: functions that can fail return a
// `Status` (or a `Result<T>` when they also produce a value) instead of
// throwing. Hot internal paths use MOCHY_DCHECK-style assertions instead.
#ifndef MOCHY_COMMON_STATUS_H_
#define MOCHY_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mochy {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no
/// allocation); failures carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

/// Propagates a non-OK status out of the calling function.
#define MOCHY_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::mochy::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result to `lhs`, or returns its error.
#define MOCHY_ASSIGN_OR_RETURN(lhs, expr)    \
  auto MOCHY_CONCAT_(_res, __LINE__) = (expr);                   \
  if (!MOCHY_CONCAT_(_res, __LINE__).ok())                       \
    return MOCHY_CONCAT_(_res, __LINE__).status();               \
  lhs = std::move(MOCHY_CONCAT_(_res, __LINE__)).value()

#define MOCHY_CONCAT_IMPL_(a, b) a##b
#define MOCHY_CONCAT_(a, b) MOCHY_CONCAT_IMPL_(a, b)

}  // namespace mochy

#endif  // MOCHY_COMMON_STATUS_H_
