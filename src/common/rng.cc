#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace mochy {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  MOCHY_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  MOCHY_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

uint64_t Rng::Geometric(double p) {
  MOCHY_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t Rng::Poisson(double mean) {
  MOCHY_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double prod = UniformDouble();
    while (prod > limit) {
      ++k;
      prod *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = mean + std::sqrt(mean) * Normal() + 0.5;
  return sample <= 0.0 ? 0 : static_cast<uint64_t>(sample);
}

uint64_t Rng::Zipf(uint64_t n, double alpha) {
  MOCHY_DCHECK(n > 0);
  if (n == 1) return 0;
  if (alpha <= 0.0) return UniformInt(n);
  // Rejection-inversion (Hormann & Derflinger) over ranks 1..n.
  const double one_minus_a = 1.0 - alpha;
  auto h_integral = [&](double x) {
    if (std::abs(one_minus_a) < 1e-12) return std::log(x);
    return (std::pow(x, one_minus_a) - 1.0) / one_minus_a;
  };
  auto h_integral_inv = [&](double y) {
    if (std::abs(one_minus_a) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * one_minus_a, 1.0 / one_minus_a);
  };
  const double hx0 = h_integral(0.5) - 1.0;
  const double hxn = h_integral(static_cast<double>(n) + 0.5);
  while (true) {
    const double u = hx0 + UniformDouble() * (hxn - hx0);
    const double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    // Accept with probability proportional to k^-alpha over the envelope.
    if (u >= h_integral(kd + 0.5) - std::pow(kd, -alpha) ||
        u >= h_integral(kd - 0.5)) {
      return k - 1;
    }
  }
}

std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t k) {
  MOCHY_CHECK(k <= n) << "cannot sample " << k << " distinct of " << n;
  std::vector<uint64_t> out;
  out.reserve(k);
  // Robert Floyd's algorithm: O(k) expected, no O(n) scratch.
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = UniformInt(j + 1);
    bool seen = false;
    for (uint64_t x : out) {
      if (x == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

Rng Rng::Fork(uint64_t index) const {
  uint64_t mix = seed_;
  SplitMix64Next(mix);
  mix ^= 0x632be59bd9b4e019ULL + index * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64Next(mix));
}

}  // namespace mochy
