// ParallelFor: static range partitioning over a fresh set of threads.
//
// All parallel algorithms in this library are "embarrassingly parallel over
// a range plus a final merge" (paper Section 3.4), so a simple blocked
// ParallelFor with per-thread state is all we need. Thread count 1 executes
// inline, which keeps single-threaded runs deterministic and cheap.
#ifndef MOCHY_COMMON_PARALLEL_H_
#define MOCHY_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace mochy {

/// Hardware concurrency, at least 1.
size_t DefaultThreadCount();

/// Runs fn(thread_index, begin, end) on `num_threads` threads, where
/// [begin, end) are disjoint contiguous blocks covering [0, n). Blocks are
/// balanced to within one element. Blocking call.
void ParallelBlocks(
    size_t n, size_t num_threads,
    const std::function<void(size_t thread, size_t begin, size_t end)>& fn);

/// Runs fn(i) for all i in [0, n), dynamically chunked so uneven work per
/// element (e.g. skewed hyperedge degrees) still balances. Blocking call.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t i)>& fn,
                 size_t chunk = 64);

}  // namespace mochy

#endif  // MOCHY_COMMON_PARALLEL_H_
