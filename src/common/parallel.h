// Parallel execution primitives, all routed through one shared ThreadPool.
//
// All parallel algorithms in this library are "embarrassingly parallel over
// a range plus a final merge" (paper Section 3.4). ParallelWorkers is the
// base primitive — it runs a fixed set of logical workers on the shared
// pool — and ParallelBlocks / ParallelFor are range decompositions built on
// top of it. Worker count 1 executes inline, which keeps single-threaded
// runs deterministic and cheap; nested parallel regions also run inline so
// pool workers never block on each other.
#ifndef MOCHY_COMMON_PARALLEL_H_
#define MOCHY_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

namespace mochy {

class ThreadPool;

/// Cache-line size assumed for false-sharing avoidance: per-shard /
/// per-worker state that several threads touch concurrently (e.g. the
/// sharded ingest logs in motif/streaming.h) is aligned to this so one
/// shard's writes never invalidate another shard's line.
inline constexpr size_t kCacheLineBytes = 64;

/// Hardware concurrency, at least 1.
size_t DefaultThreadCount();

/// The process-wide worker pool (DefaultThreadCount() threads, created on
/// first use) that executes every parallel region in the library.
ThreadPool& SharedThreadPool();

/// Runs fn(worker) for worker in [0, num_workers) concurrently: worker 0
/// inline on the calling thread, the rest on the shared pool. Blocking
/// call; `fn` must partition its own work by worker index. More logical
/// workers than pool threads is fine (they queue). Nested calls from
/// inside a parallel region degrade to sequential inline execution.
void ParallelWorkers(size_t num_workers,
                     const std::function<void(size_t worker)>& fn);

/// Runs fn(worker, begin, end) on `num_workers` logical workers, where
/// [begin, end) are disjoint contiguous blocks covering [0, n). Blocks are
/// balanced to within one element. Blocking call.
void ParallelBlocks(
    size_t n, size_t num_workers,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn);

/// Runs fn(i) for all i in [0, n), dynamically chunked so uneven work per
/// element (e.g. skewed hyperedge degrees) still balances. Blocking call.
void ParallelFor(size_t n, size_t num_workers,
                 const std::function<void(size_t i)>& fn,
                 size_t chunk = 64);

/// Splits [0, cost.size()) into about `num_chunks` contiguous ranges of
/// roughly equal summed cost. Returns the boundaries b_0=0 < ... < b_k=n;
/// chunk c is [b_c, b_c+1). Workers then claim whole chunks with one
/// atomic increment each instead of one per item, which removes the
/// claiming overhead from skewed per-item-cost loops (the MoCHy-E hub loop
/// claims by Σd² work here) while keeping load balance: every chunk holds
/// at most ~total/num_chunks cost plus one item. Items with huge
/// individual cost get a chunk of their own. Always returns at least {0, n}
/// (n > 0), or {0} for an empty range.
std::vector<size_t> WorkChunkBoundaries(std::span<const uint64_t> cost,
                                        size_t num_chunks);

/// Runs fn(worker, begin, end) over cost-balanced chunks of
/// [0, cost.size()): boundaries from WorkChunkBoundaries with ~16 chunks
/// per worker, workers claiming whole chunks with one atomic increment
/// each. The chunked-claiming counterpart of ParallelFor for loops whose
/// per-item cost is known up front (e.g. the MoCHy-E hub loop, cost
/// |N_e|²). Blocking call; num_workers 0 means 1.
void ParallelWorkChunks(
    std::span<const uint64_t> cost, size_t num_workers,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn);

}  // namespace mochy

#endif  // MOCHY_COMMON_PARALLEL_H_
