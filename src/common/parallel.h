// Parallel execution primitives, all routed through one shared ThreadPool.
//
// All parallel algorithms in this library are "embarrassingly parallel over
// a range plus a final merge" (paper Section 3.4). ParallelWorkers is the
// base primitive — it runs a fixed set of logical workers on the shared
// pool — and ParallelBlocks / ParallelFor are range decompositions built on
// top of it. Worker count 1 executes inline, which keeps single-threaded
// runs deterministic and cheap; nested parallel regions also run inline so
// pool workers never block on each other.
#ifndef MOCHY_COMMON_PARALLEL_H_
#define MOCHY_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace mochy {

class ThreadPool;

/// Hardware concurrency, at least 1.
size_t DefaultThreadCount();

/// The process-wide worker pool (DefaultThreadCount() threads, created on
/// first use) that executes every parallel region in the library.
ThreadPool& SharedThreadPool();

/// Runs fn(worker) for worker in [0, num_workers) concurrently: worker 0
/// inline on the calling thread, the rest on the shared pool. Blocking
/// call; `fn` must partition its own work by worker index. More logical
/// workers than pool threads is fine (they queue). Nested calls from
/// inside a parallel region degrade to sequential inline execution.
void ParallelWorkers(size_t num_workers,
                     const std::function<void(size_t worker)>& fn);

/// Runs fn(worker, begin, end) on `num_workers` logical workers, where
/// [begin, end) are disjoint contiguous blocks covering [0, n). Blocks are
/// balanced to within one element. Blocking call.
void ParallelBlocks(
    size_t n, size_t num_workers,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn);

/// Runs fn(i) for all i in [0, n), dynamically chunked so uneven work per
/// element (e.g. skewed hyperedge degrees) still balances. Blocking call.
void ParallelFor(size_t n, size_t num_workers,
                 const std::function<void(size_t i)>& fn,
                 size_t chunk = 64);

}  // namespace mochy

#endif  // MOCHY_COMMON_PARALLEL_H_
