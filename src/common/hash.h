// Hashing utilities shared across the library.
#ifndef MOCHY_COMMON_HASH_H_
#define MOCHY_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>

namespace mochy {

/// Strong 64-bit finalizer (Murmur3 fmix64). Good avalanche for packed keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Packs an unordered pair of 32-bit ids into one 64-bit key, smaller id in
/// the high half so packed keys sort like (min, max).
inline uint64_t PackPair(uint32_t a, uint32_t b) {
  if (a > b) {
    const uint32_t t = a;
    a = b;
    b = t;
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

inline uint32_t PairFirst(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline uint32_t PairSecond(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffULL);
}

/// boost-style hash combiner for aggregating multiple fields.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes a span of 32-bit ids (e.g. a sorted hyperedge) with FNV-1a over
/// mixed words; order-sensitive, so callers hash canonical (sorted) forms.
inline uint64_t HashIdSpan(const uint32_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= Mix64(data[i] + 0x9e3779b97f4a7c15ULL * (i + 1));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace mochy

#endif  // MOCHY_COMMON_HASH_H_
