// Open-addressing hash map specialized for dense integer keys.
//
// The MoCHy-E inner loop probes pair weights `omega({j,k})` once per
// candidate triple; std::unordered_map's chasing of heap nodes dominates
// there, so we use a flat power-of-two table with linear probing, in the
// spirit of the Swiss-table / RocksDB internal maps discussed in the
// project's database C++ guides.
#ifndef MOCHY_COMMON_FLAT_MAP_H_
#define MOCHY_COMMON_FLAT_MAP_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace mochy {

/// Hash map from uint64 keys to trivially-copyable values with linear
/// probing. One key value (`kEmptyKey`, default ~0) is reserved as the
/// empty sentinel and must never be inserted. No erase (none needed here).
template <typename V>
class FlatMap64 {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  FlatMap64() { Rehash(16); }

  /// Pre-sizes the table for `n` insertions without rehashing.
  explicit FlatMap64(size_t expected) {
    size_t cap = 16;
    while (cap * 7 < expected * 8) cap <<= 1;  // keep load factor <= 7/8
    Rehash(cap * 2);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts key->value; overwrites any existing value.
  void Put(uint64_t key, V value) {
    MOCHY_DCHECK(key != kEmptyKey);
    if ((size_ + 1) * 8 > capacity_ * 7) Rehash(capacity_ * 2);
    size_t idx = Probe(key);
    if (keys_[idx] == kEmptyKey) {
      keys_[idx] = key;
      ++size_;
    }
    values_[idx] = value;
  }

  /// Adds `delta` to the value at key (default-initialized if absent).
  void Add(uint64_t key, V delta) {
    MOCHY_DCHECK(key != kEmptyKey);
    if ((size_ + 1) * 8 > capacity_ * 7) Rehash(capacity_ * 2);
    size_t idx = Probe(key);
    if (keys_[idx] == kEmptyKey) {
      keys_[idx] = key;
      values_[idx] = V{};
      ++size_;
    }
    values_[idx] += delta;
  }

  /// Returns the value for key, or `fallback` if absent.
  V GetOr(uint64_t key, V fallback) const {
    const size_t idx = Probe(key);
    return keys_[idx] == kEmptyKey ? fallback : values_[idx];
  }

  bool Contains(uint64_t key) const {
    return keys_[Probe(key)] != kEmptyKey;
  }

  /// Calls fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

  /// Approximate heap footprint in bytes (table arrays only).
  size_t MemoryBytes() const {
    return capacity_ * (sizeof(uint64_t) + sizeof(V));
  }

 private:
  size_t Probe(uint64_t key) const {
    size_t idx = Mix64(key) & mask_;
    while (keys_[idx] != kEmptyKey && keys_[idx] != key) {
      idx = (idx + 1) & mask_;
    }
    return idx;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    keys_.assign(capacity_, kEmptyKey);
    values_.assign(capacity_, V{});
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) {
        const size_t idx = Probe(old_keys[i]);
        keys_[idx] = old_keys[i];
        values_[idx] = old_values[i];
        ++size_;
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_FLAT_MAP_H_
