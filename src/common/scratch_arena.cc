#include "common/scratch_arena.h"

namespace mochy {

ScratchArena& LocalScratchArena() {
  // One arena per OS thread. The shared pool's workers are leaked with the
  // pool (common/parallel.cc), so their arenas persist — and stay warm —
  // across every parallel region of the process lifetime.
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace mochy
