#include "common/status.h"

namespace mochy {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mochy
