#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace mochy {

namespace {

Status BadNumber(std::string_view text, const char* want) {
  return Status::InvalidArgument("cannot parse '" + std::string(text) +
                                 "' (want " + want + ")");
}

}  // namespace

Result<uint64_t> ParseUint64(std::string_view text) {
  if (text.empty()) return BadNumber(text, "a non-negative integer");
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return BadNumber(text, "a non-negative integer");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return BadNumber(text, "a non-negative integer <= 2^64-1");
    }
    value = value * 10 + digit;
  }
  return value;
}

Result<uint64_t> ParseUint64InRange(std::string_view text, uint64_t min_value,
                                    uint64_t max_value,
                                    std::string_view what) {
  auto parsed = ParseUint64(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   parsed.status().message());
  }
  const uint64_t value = parsed.value();
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        std::string(what) + ": " + std::string(text) + " is out of range [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const bool negative = !text.empty() && text.front() == '-';
  auto digits = ParseUint64(negative ? text.substr(1) : text);
  if (!digits.ok()) return BadNumber(text, "an integer");
  const uint64_t magnitude = digits.value();
  if (negative) {
    // |INT64_MIN| = 2^63 is representable; anything larger is not.
    if (magnitude > (1ULL << 63)) return BadNumber(text, "a 64-bit integer");
    return static_cast<int64_t>(-magnitude);
  }
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return BadNumber(text, "a 64-bit integer");
  }
  return static_cast<int64_t>(magnitude);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return BadNumber(text, "a finite number");
  // strtod accepts leading whitespace, "nan", "inf" and hex floats; the
  // whitespace and non-finite forms are rejected below, hex floats are
  // deliberately kept (the serve protocol round-trips doubles as %a).
  if (std::isspace(static_cast<unsigned char>(text.front()))) {
    return BadNumber(text, "a finite number");
  }
  const std::string copy(text);  // strtod needs NUL termination
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return BadNumber(text, "a finite number");
  }
  return value;
}

Result<double> ParsePositiveDouble(std::string_view text,
                                   std::string_view what) {
  auto parsed = ParseDouble(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   parsed.status().message());
  }
  if (!(parsed.value() > 0.0)) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   std::string(text) + " must be > 0");
  }
  return parsed.value();
}

}  // namespace mochy
