// Deterministic, seedable random number generation.
//
// Every randomized component in this library (samplers, null models,
// generators, classifiers) takes an explicit 64-bit seed and derives its
// stream from it, so experiments are reproducible bit-for-bit across runs
// and thread counts. The core generator is xoshiro256++, seeded via
// SplitMix64 as its authors recommend.
#ifndef MOCHY_COMMON_RNG_H_
#define MOCHY_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mochy {

/// SplitMix64 step: hashes `state` forward and returns the next value.
/// Useful directly as a cheap stateless mixer.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256++ pseudo-random generator. Satisfies the C++ named
/// requirement UniformRandomBitGenerator, so it plugs into <random> too.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the stream deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  uint64_t operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased method.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Geometric-like: number of failures before first success, p in (0,1].
  uint64_t Geometric(double p);

  /// Poisson-distributed value with the given mean (Knuth for small means,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Zipf-like sample in [0, n): P(k) proportional to (k+1)^(-alpha).
  /// Uses rejection-inversion; alpha >= 0.
  uint64_t Zipf(uint64_t n, double alpha);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Floyd's algorithm: k distinct integers from [0, n), unsorted.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k);

  /// A child generator with an independent stream. Deterministic in
  /// (parent seed, index): used to give each thread / trial its own stream.
  Rng Fork(uint64_t index) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_RNG_H_
