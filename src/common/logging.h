// Minimal leveled logging plus CHECK-style invariant assertions.
//
// Logging is for coarse progress reporting in benches and examples; the hot
// counting kernels never log. MOCHY_CHECK aborts on violated invariants in
// all build types; MOCHY_DCHECK compiles out in NDEBUG builds.
#ifndef MOCHY_COMMON_LOGGING_H_
#define MOCHY_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace mochy {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with level tag and timestamp) on
/// destruction. Not for direct use; see MOCHY_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message and aborts. Used by MOCHY_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define MOCHY_LOG(level)                                              \
  ::mochy::internal::LogMessage(::mochy::LogLevel::k##level, __FILE__, \
                                __LINE__)

#define MOCHY_CHECK(cond)                                          \
  if (!(cond))                                                     \
  ::mochy::internal::FatalMessage(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define MOCHY_DCHECK(cond) \
  if (false) ::mochy::internal::FatalMessage(__FILE__, __LINE__, #cond)
#else
#define MOCHY_DCHECK(cond) MOCHY_CHECK(cond)
#endif

}  // namespace mochy

#endif  // MOCHY_COMMON_LOGGING_H_
