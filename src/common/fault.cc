#include "common/fault.h"

#include "common/hash.h"

namespace mochy {

std::atomic<bool> FaultInjector::armed_{false};

FaultAction FaultError(int err) {
  FaultAction action;
  action.kind = FaultAction::Kind::kError;
  action.fault_errno = err;
  return action;
}

FaultAction FaultShortIo(size_t max_bytes) {
  FaultAction action;
  action.kind = FaultAction::Kind::kShortIo;
  action.max_bytes = max_bytes == 0 ? 1 : max_bytes;
  return action;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  points_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{};
}

namespace {

/// The background-rate coin for hit `ordinal` of `point`: a uniform
/// double in [0, 1) derived purely from (seed, point, ordinal), so the
/// decision for a given hit is the same in every run with that seed.
double RateCoin(uint64_t seed, std::string_view point, uint64_t ordinal) {
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  for (const char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h = Mix64(h ^ Mix64(ordinal + 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultAction FaultInjector::OnPoint(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Armed may have flipped off between the macro's check and this call;
  // a disarmed plan has no rules and rate 0, so the hit is a no-op
  // besides the counter.
  PointState& state = points_[std::string(point)];
  const uint64_t ordinal = ++state.hits;

  FaultAction action;
  for (const FaultRule& rule : plan_.rules) {
    if (rule.point != point) continue;
    if (rule.nth != 0 && ordinal == rule.nth) {
      action = rule.action;
      break;
    }
    if (rule.every != 0 && ordinal % rule.every == 0) {
      action = rule.action;
      break;
    }
  }
  if (action.none() && plan_.rate > 0.0 &&
      RateCoin(plan_.seed, point, ordinal) < plan_.rate) {
    action = plan_.rate_action;
  }
  if (!action.none()) ++state.fired;
  return action;
}

uint64_t FaultInjector::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fired(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.fired;
}

uint64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, state] : points_) total += state.fired;
  return total;
}

}  // namespace mochy
