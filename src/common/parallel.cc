#include "common/parallel.h"

#include <atomic>

#include "common/logging.h"

namespace mochy {

size_t DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void ParallelBlocks(
    size_t n, size_t num_threads,
    const std::function<void(size_t thread, size_t begin, size_t end)>& fn) {
  if (num_threads == 0) num_threads = 1;
  if (num_threads > n && n > 0) num_threads = n;
  if (num_threads <= 1 || n == 0) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t base = n / num_threads;
  const size_t extra = n % num_threads;
  size_t begin = 0;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t len = base + (t < extra ? 1 : 0);
    const size_t end = begin + len;
    threads.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
    begin = end;
  }
  MOCHY_DCHECK(begin == n);
  for (auto& th : threads) th.join();
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t i)>& fn, size_t chunk) {
  if (num_threads == 0) num_threads = 1;
  if (chunk == 0) chunk = 1;
  if (num_threads <= 1 || n <= chunk) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = begin + chunk < n ? begin + chunk : n;
      for (size_t i = begin; i < end; ++i) fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& th : threads) th.join();
}

}  // namespace mochy
