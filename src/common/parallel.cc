#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace mochy {

namespace {

// Set while a thread executes inside a parallel region. Nested regions run
// inline: pool workers must never block waiting for pool capacity.
thread_local bool t_inside_parallel_region = false;

class RegionGuard {
 public:
  RegionGuard() : was_inside_(t_inside_parallel_region) {
    t_inside_parallel_region = true;
  }
  ~RegionGuard() { t_inside_parallel_region = was_inside_; }

 private:
  bool was_inside_;
};

}  // namespace

size_t DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool& SharedThreadPool() {
  // Leaked on purpose: workers must outlive any static whose destructor
  // could still reach a parallel region during teardown.
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

void ParallelWorkers(size_t num_workers,
                     const std::function<void(size_t worker)>& fn) {
  if (num_workers == 0) num_workers = 1;
  if (num_workers == 1 || t_inside_parallel_region) {
    RegionGuard guard;
    for (size_t w = 0; w < num_workers; ++w) fn(w);
    return;
  }
  std::mutex mutex;
  std::condition_variable done;
  size_t remaining = num_workers - 1;
  ThreadPool& pool = SharedThreadPool();
  for (size_t w = 1; w < num_workers; ++w) {
    pool.Submit([&, w] {
      {
        RegionGuard guard;
        fn(w);
      }
      {
        // Notify under the lock: the waiter owns cv/mutex on its stack and
        // may return (destroying both) the moment it can observe
        // remaining == 0, which it can't until this mutex is released.
        std::lock_guard<std::mutex> lock(mutex);
        --remaining;
        done.notify_one();
      }
    });
  }
  {
    RegionGuard guard;
    fn(0);
  }
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return remaining == 0; });
}

void ParallelBlocks(
    size_t n, size_t num_workers,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn) {
  if (num_workers == 0) num_workers = 1;
  if (num_workers > n && n > 0) num_workers = n;
  if (num_workers <= 1 || n == 0) {
    fn(0, 0, n);
    return;
  }
  const size_t base = n / num_workers;
  const size_t extra = n % num_workers;
  ParallelWorkers(num_workers, [&](size_t t) {
    const size_t begin = t * base + (t < extra ? t : extra);
    const size_t end = begin + base + (t < extra ? 1 : 0);
    fn(t, begin, end);
  });
}

std::vector<size_t> WorkChunkBoundaries(std::span<const uint64_t> cost,
                                        size_t num_chunks) {
  const size_t n = cost.size();
  std::vector<size_t> boundaries;
  boundaries.push_back(0);
  if (n == 0) return boundaries;
  if (num_chunks == 0) num_chunks = 1;

  uint64_t total = 0;
  for (const uint64_t c : cost) total += c;
  // Zero-cost items still take a claim to skip; charge them one unit so a
  // long all-zero tail cannot collapse into a single serial chunk. The
  // n/num_chunks floor keeps the chunk count near num_chunks even when
  // most items are zero-cost (otherwise target would collapse to 1 and
  // every item would close its own chunk — per-item claiming again).
  const uint64_t target =
      std::max((total + num_chunks - 1) / num_chunks,
               (static_cast<uint64_t>(n) + num_chunks - 1) / num_chunks);
  const uint64_t effective_target = target == 0 ? 1 : target;

  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += cost[i] == 0 ? 1 : cost[i];
    if (acc >= effective_target) {
      boundaries.push_back(i + 1);
      acc = 0;
    }
  }
  if (boundaries.back() != n) boundaries.push_back(n);
  return boundaries;
}

void ParallelWorkChunks(
    std::span<const uint64_t> cost, size_t num_workers,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn) {
  if (num_workers == 0) num_workers = 1;
  // ~16 claims per worker: fine enough that no worker idles behind a
  // straggler chunk, coarse enough that claiming vanishes from profiles.
  const std::vector<size_t> chunks = WorkChunkBoundaries(cost, num_workers * 16);
  const size_t num_chunks = chunks.size() - 1;
  std::atomic<size_t> next_chunk{0};
  ParallelWorkers(num_workers, [&](size_t worker) {
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      fn(worker, chunks[c], chunks[c + 1]);
    }
  });
}

void ParallelFor(size_t n, size_t num_workers,
                 const std::function<void(size_t i)>& fn, size_t chunk) {
  if (num_workers == 0) num_workers = 1;
  if (chunk == 0) chunk = 1;
  if (num_workers <= 1 || n <= chunk) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  ParallelWorkers(num_workers, [&](size_t) {
    while (true) {
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = begin + chunk < n ? begin + chunk : n;
      for (size_t i = begin; i < end; ++i) fn(i);
    }
  });
}

}  // namespace mochy
