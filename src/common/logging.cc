#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mochy {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

void Emit(LogLevel level, const std::string& text) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%8.3f %s] %s\n", secs, LevelTag(level), text.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    Emit(level_, stream_.str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  Emit(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace mochy
