// Walker/Vose alias method: O(1) sampling from a fixed discrete
// distribution after O(n) construction. Used by the Chung-Lu null model
// (sampling nodes proportional to degree) and by the synthetic generators.
#ifndef MOCHY_COMMON_ALIAS_TABLE_H_
#define MOCHY_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace mochy {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights. Fails on an empty vector,
  /// a negative weight, or an all-zero total.
  static Result<AliasTable> Build(const std::vector<double>& weights);

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Draws one index with probability proportional to its weight.
  uint64_t Sample(Rng& rng) const;

  /// Total weight the table was built from.
  double total_weight() const { return total_weight_; }

 private:
  std::vector<double> prob_;    // acceptance probability per bucket
  std::vector<uint32_t> alias_;  // fallback category per bucket
  double total_weight_ = 0.0;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_ALIAS_TABLE_H_
