// Wall-clock stopwatch for the experiment harness (Figures 8, 10, 11).
#ifndef MOCHY_COMMON_TIMER_H_
#define MOCHY_COMMON_TIMER_H_

#include <chrono>

namespace mochy {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mochy

#endif  // MOCHY_COMMON_TIMER_H_
