#include "serve/protocol.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/parse.h"

namespace mochy {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes; eof=true only when the peer closed before
/// the FIRST byte (a clean boundary for the caller to interpret).
Status ReadAll(int fd, char* data, size_t size, bool* eof) {
  *eof = false;
  size_t read_bytes = 0;
  while (read_bytes < size) {
    const ssize_t n = ::read(fd, data + read_bytes, size - read_bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (read_bytes == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IOError("connection closed mid-frame");
    }
    read_bytes += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(size & 0xff),
      static_cast<unsigned char>((size >> 8) & 0xff),
      static_cast<unsigned char>((size >> 16) & 0xff),
      static_cast<unsigned char>((size >> 24) & 0xff),
  };
  MOCHY_RETURN_IF_ERROR(
      WriteAll(fd, reinterpret_cast<const char*>(prefix), sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<FrameRead> ReadFrame(int fd) {
  unsigned char prefix[4];
  bool eof = false;
  MOCHY_RETURN_IF_ERROR(
      ReadAll(fd, reinterpret_cast<char*>(prefix), sizeof(prefix), &eof));
  FrameRead frame;
  if (eof) {
    frame.eof = true;
    return frame;
  }
  const uint32_t size = static_cast<uint32_t>(prefix[0]) |
                        (static_cast<uint32_t>(prefix[1]) << 8) |
                        (static_cast<uint32_t>(prefix[2]) << 16) |
                        (static_cast<uint32_t>(prefix[3]) << 24);
  if (size > kMaxFrameBytes) {
    return Status::IOError("frame length " + std::to_string(size) +
                           " exceeds the " + std::to_string(kMaxFrameBytes) +
                           "-byte cap");
  }
  frame.payload.resize(size);
  MOCHY_RETURN_IF_ERROR(ReadAll(fd, frame.payload.data(), size, &eof));
  if (eof && size > 0) return Status::IOError("connection closed mid-frame");
  return frame;
}

std::vector<std::string_view> SplitTokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find(' ', start);
    const size_t stop = end == std::string_view::npos ? text.size() : end;
    if (stop > start) tokens.push_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return tokens;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  if (!text.empty() && text.back() == '\n') text.remove_suffix(1);
  size_t start = 0;
  while (true) {
    const size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(start));
      return lines;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
}

std::string EncodeDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Result<double> DecodeDouble(std::string_view text) { return ParseDouble(text); }

std::string EncodeCounts(const MotifCounts& counts) {
  std::string out;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    if (t > 1) out += ' ';
    out += EncodeDouble(counts[t]);
  }
  return out;
}

Result<MotifCounts> DecodeCounts(std::string_view text) {
  const std::vector<std::string_view> tokens = SplitTokens(text);
  if (tokens.size() != static_cast<size_t>(kNumHMotifs)) {
    return Status::InvalidArgument(
        "counts payload has " + std::to_string(tokens.size()) +
        " values, want " + std::to_string(kNumHMotifs));
  }
  MotifCounts counts;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    auto value = DecodeDouble(tokens[t - 1]);
    if (!value.ok()) return value.status();
    counts[t] = value.value();
  }
  return counts;
}

Result<int> ListenOn(const std::string& socket_path, int port) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long (max " +
                                     std::to_string(sizeof(addr.sun_path) - 1) +
                                     " bytes): " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    // A previous server instance leaves its socket file behind; binding
    // over it requires removing it first (bind never replaces).
    ::unlink(socket_path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const Status status = Errno(("bind " + socket_path).c_str());
      ::close(fd);
      return status;
    }
    if (::listen(fd, 64) < 0) {
      const Status status = Errno("listen");
      ::close(fd);
      return status;
    }
    return fd;
  }
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("need a --socket path or a TCP port in "
                                   "[1, 65535], got port " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Errno(("bind port " + std::to_string(port)).c_str());
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectTo(const std::string& socket_path, int port) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const Status status = Errno(("connect " + socket_path).c_str());
      ::close(fd);
      return status;
    }
    return fd;
  }
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("need a --socket path or a TCP port in "
                                   "[1, 65535], got port " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Errno(("connect port " + std::to_string(port)).c_str());
    ::close(fd);
    return status;
  }
  return fd;
}

}  // namespace mochy
