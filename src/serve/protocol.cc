#include "serve/protocol.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/fault.h"
#include "common/parse.h"

namespace mochy {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

using SteadyClock = std::chrono::steady_clock;

/// Per-frame deadline: fixed when the frame starts, shared by every
/// syscall the frame makes. timeout_ms <= 0 means "no deadline".
struct FrameDeadline {
  explicit FrameDeadline(int timeout_ms)
      : armed(timeout_ms > 0),
        at(SteadyClock::now() + std::chrono::milliseconds(
                                    timeout_ms > 0 ? timeout_ms : 0)),
        budget_ms(timeout_ms) {}

  /// Milliseconds left (>= 0), or -1 (poll's "infinite") when disarmed.
  int RemainingMs() const {
    if (!armed) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - SteadyClock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }

  bool armed;
  SteadyClock::time_point at;
  int budget_ms;
};

std::string ByteProgress(size_t done, size_t want) {
  return std::to_string(done) + " of " + std::to_string(want) + " bytes";
}

/// Polls `fd` for `events` within the deadline. OK when ready; a
/// kDeadlineExceeded describing `what`/progress when time runs out.
Status AwaitReady(int fd, short events, const FrameDeadline& deadline,
                  const char* what, size_t done, size_t want) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, deadline.RemainingMs());
    if (ready > 0) return Status::OK();
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    return Status::DeadlineExceeded(
        std::string(what) + " timed out after " +
        std::to_string(deadline.budget_ms) + "ms mid-frame (" +
        ByteProgress(done, want) + ")");
  }
}

Status WriteAll(int fd, const char* data, size_t size,
                const FrameDeadline& deadline) {
  size_t written = 0;
  while (written < size) {
    size_t chunk = size - written;
    if (FaultInjector::Armed()) {
      const FaultAction fault = MOCHY_FAULT_POINT("protocol.write");
      if (fault.kind == FaultAction::Kind::kError) {
        return Status::IOError("write: injected fault: " +
                               std::string(std::strerror(fault.fault_errno)) +
                               " (" + ByteProgress(written, size) + ")");
      }
      if (fault.kind == FaultAction::Kind::kShortIo) {
        chunk = std::min(chunk, fault.max_bytes);
      }
    }
    if (deadline.armed) {
      MOCHY_RETURN_IF_ERROR(
          AwaitReady(fd, POLLOUT, deadline, "write", written, size));
    }
    // MSG_NOSIGNAL: a peer gone mid-reply must surface as EPIPE, never
    // as a process-terminating SIGPIPE (frames only travel on sockets).
    const ssize_t n = ::send(fd, data + written, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write: " + std::string(std::strerror(errno)) +
                             " (" + ByteProgress(written, size) + ")");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes; eof=true only when the peer closed before
/// the FIRST byte (a clean boundary for the caller to interpret).
Status ReadAll(int fd, char* data, size_t size, bool* eof,
               const FrameDeadline& deadline) {
  *eof = false;
  size_t read_bytes = 0;
  while (read_bytes < size) {
    size_t chunk = size - read_bytes;
    if (FaultInjector::Armed()) {
      const FaultAction fault = MOCHY_FAULT_POINT("protocol.read");
      if (fault.kind == FaultAction::Kind::kError) {
        return Status::IOError("read: injected fault: " +
                               std::string(std::strerror(fault.fault_errno)) +
                               " (" + ByteProgress(read_bytes, size) + ")");
      }
      if (fault.kind == FaultAction::Kind::kShortIo) {
        chunk = std::min(chunk, fault.max_bytes);
      }
    }
    if (deadline.armed) {
      MOCHY_RETURN_IF_ERROR(
          AwaitReady(fd, POLLIN, deadline, "read", read_bytes, size));
    }
    const ssize_t n = ::read(fd, data + read_bytes, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read: " + std::string(std::strerror(errno)) +
                             " (" + ByteProgress(read_bytes, size) + ")");
    }
    if (n == 0) {
      if (read_bytes == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IOError("connection closed mid-frame (" +
                             ByteProgress(read_bytes, size) + ")");
    }
    read_bytes += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload, int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  const FrameDeadline deadline(timeout_ms);
  const uint32_t size = static_cast<uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(size & 0xff),
      static_cast<unsigned char>((size >> 8) & 0xff),
      static_cast<unsigned char>((size >> 16) & 0xff),
      static_cast<unsigned char>((size >> 24) & 0xff),
  };
  MOCHY_RETURN_IF_ERROR(WriteAll(fd, reinterpret_cast<const char*>(prefix),
                                 sizeof(prefix), deadline));
  return WriteAll(fd, payload.data(), payload.size(), deadline);
}

Result<FrameRead> ReadFrame(int fd, int timeout_ms) {
  const FrameDeadline deadline(timeout_ms);
  unsigned char prefix[4];
  bool eof = false;
  MOCHY_RETURN_IF_ERROR(ReadAll(fd, reinterpret_cast<char*>(prefix),
                                sizeof(prefix), &eof, deadline));
  FrameRead frame;
  if (eof) {
    frame.eof = true;
    return frame;
  }
  const uint32_t size = static_cast<uint32_t>(prefix[0]) |
                        (static_cast<uint32_t>(prefix[1]) << 8) |
                        (static_cast<uint32_t>(prefix[2]) << 16) |
                        (static_cast<uint32_t>(prefix[3]) << 24);
  if (size > kMaxFrameBytes) {
    return Status::IOError("frame length " + std::to_string(size) +
                           " exceeds the " + std::to_string(kMaxFrameBytes) +
                           "-byte cap");
  }
  frame.payload.resize(size);
  MOCHY_RETURN_IF_ERROR(
      ReadAll(fd, frame.payload.data(), size, &eof, deadline));
  if (eof && size > 0) return Status::IOError("connection closed mid-frame");
  return frame;
}

std::vector<std::string_view> SplitTokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find(' ', start);
    const size_t stop = end == std::string_view::npos ? text.size() : end;
    if (stop > start) tokens.push_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return tokens;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  if (!text.empty() && text.back() == '\n') text.remove_suffix(1);
  size_t start = 0;
  while (true) {
    const size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(start));
      return lines;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
}

std::string EncodeDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Result<double> DecodeDouble(std::string_view text) { return ParseDouble(text); }

std::string EncodeCounts(const MotifCounts& counts) {
  std::string out;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    if (t > 1) out += ' ';
    out += EncodeDouble(counts[t]);
  }
  return out;
}

Result<MotifCounts> DecodeCounts(std::string_view text) {
  const std::vector<std::string_view> tokens = SplitTokens(text);
  if (tokens.size() != static_cast<size_t>(kNumHMotifs)) {
    return Status::InvalidArgument(
        "counts payload has " + std::to_string(tokens.size()) +
        " values, want " + std::to_string(kNumHMotifs));
  }
  MotifCounts counts;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    auto value = DecodeDouble(tokens[t - 1]);
    if (!value.ok()) return value.status();
    counts[t] = value.value();
  }
  return counts;
}

Result<int> ListenOn(const std::string& socket_path, int port) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long (max " +
                                     std::to_string(sizeof(addr.sun_path) - 1) +
                                     " bytes): " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    // A previous server instance leaves its socket file behind; binding
    // over it requires removing it first (bind never replaces).
    ::unlink(socket_path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const Status status = Errno(("bind " + socket_path).c_str());
      ::close(fd);
      return status;
    }
    if (::listen(fd, 64) < 0) {
      const Status status = Errno("listen");
      ::close(fd);
      return status;
    }
    return fd;
  }
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("need a --socket path or a TCP port in "
                                   "[1, 65535], got port " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Errno(("bind port " + std::to_string(port)).c_str());
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

namespace {

/// Connects `fd` to `addr`, optionally bounded by `connect_timeout_ms`:
/// the dial goes non-blocking, a poll waits for completion, and SO_ERROR
/// reports the outcome; the fd is returned to blocking mode either way.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addr_len,
                          const std::string& peer, int connect_timeout_ms) {
  if (connect_timeout_ms <= 0) {
    if (::connect(fd, addr, addr_len) < 0) {
      return Errno(("connect " + peer).c_str());
    }
    return Status::OK();
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return Errno("fcntl");
  Status status = Status::OK();
  if (::connect(fd, addr, addr_len) < 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      pollfd pfd{fd, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, connect_timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        status = Status::DeadlineExceeded(
            "connect " + peer + " timed out after " +
            std::to_string(connect_timeout_ms) + "ms");
      } else if (ready < 0) {
        status = Errno("poll");
      } else {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        if (so_error != 0) {
          status = Status::IOError("connect " + peer + ": " +
                                   std::strerror(so_error));
        }
      }
    } else {
      status = Errno(("connect " + peer).c_str());
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return status;
}

}  // namespace

Result<int> ConnectTo(const std::string& socket_path, int port,
                      int connect_timeout_ms) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    const Status status = ConnectWithTimeout(
        fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr), socket_path,
        connect_timeout_ms);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    return fd;
  }
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("need a --socket path or a TCP port in "
                                   "[1, 65535], got port " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const Status status = ConnectWithTimeout(
      fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
      "port " + std::to_string(port), connect_timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return fd;
}

}  // namespace mochy
