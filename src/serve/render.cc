#include "serve/render.h"

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/features.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "serve/protocol.h"

namespace mochy {

namespace {

// Fixed evaluation protocol (examples/hyperedge_prediction.cpp, Table 4):
// 30% held out for testing, split seed 17. Baked in rather than exposed
// so a predict body is a pure function of (graphs, PredictRequestOptions).
constexpr double kTestFraction = 0.3;
constexpr uint64_t kSplitSeed = 17;

}  // namespace

std::string RenderPerEdgeBody(const PerEdgeCounts& rows) {
  std::string body = "rows " + std::to_string(rows.size()) + "\n";
  for (size_t e = 0; e < rows.size(); ++e) {
    body += "row " + std::to_string(e);
    for (const double count : rows[e]) body += " " + EncodeDouble(count);
    body += "\n";
  }
  return body;
}

Result<std::string> RenderPredictBody(const Hypergraph& history,
                                      const Hypergraph& candidates,
                                      const PredictRequestOptions& options) {
  if (history.num_nodes() < candidates.num_nodes()) {
    return Status::InvalidArgument(
        "candidate graph spans " + std::to_string(candidates.num_nodes()) +
        " nodes but history has only " + std::to_string(history.num_nodes()) +
        " — candidates must live in the history's node universe");
  }
  std::vector<std::vector<NodeId>> edges;
  for (EdgeId e = 0; e < candidates.num_edges(); ++e) {
    const auto span = candidates.edge(e);
    if (span.size() >= 2) edges.emplace_back(span.begin(), span.end());
  }
  if (edges.empty()) {
    return Status::InvalidArgument(
        "no usable candidates: every hyperedge has fewer than 2 members");
  }

  PredictionTaskOptions task_options;
  task_options.replace_fraction = options.replace_fraction;
  task_options.seed = options.seed;
  task_options.num_threads = options.num_threads;
  MOCHY_ASSIGN_OR_RETURN(
      PredictionTask task,
      BuildHyperedgePredictionTask(history, edges, task_options));

  std::string body = "task history=" + std::to_string(history.num_edges()) +
                     " real=" + std::to_string(edges.size()) +
                     " fake=" + std::to_string(edges.size()) + "\n";
  body += "hm7";
  for (const int index : task.hm7_feature_indices) {
    body += " " + std::to_string(index + 1);  // report motif ids, not indices
  }
  body += "\n";

  struct Entry {
    const char* name;
    std::unique_ptr<Classifier> (*make)();
  };
  const Entry classifiers[] = {
      {"logistic",
       [] { return std::unique_ptr<Classifier>(new LogisticRegression()); }},
      {"forest",
       [] { return std::unique_ptr<Classifier>(new RandomForest()); }},
      {"tree",
       [] { return std::unique_ptr<Classifier>(new DecisionTree()); }},
      {"knn",
       [] { return std::unique_ptr<Classifier>(new KNearestNeighbors()); }},
      {"mlp",
       [] { return std::unique_ptr<Classifier>(new MlpClassifier()); }},
  };
  const struct {
    const char* name;
    const Dataset* data;
  } sets[] = {{"hm26", &task.hm26}, {"hm7", &task.hm7}, {"hc", &task.hc}};

  for (const Entry& entry : classifiers) {
    for (const auto& set : sets) {
      Dataset train, test;
      MOCHY_RETURN_IF_ERROR(
          TrainTestSplit(*set.data, kTestFraction, kSplitSeed, &train, &test));
      auto clf = entry.make();
      MOCHY_RETURN_IF_ERROR(clf->Fit(train));
      const std::vector<double> scores = clf->PredictAll(test);
      body += std::string("model ") + entry.name + " " + set.name +
              " acc=" + EncodeDouble(Accuracy(test.labels, scores)) +
              " auc=" + EncodeDouble(AucScore(test.labels, scores)) + "\n";
    }
  }
  return body;
}

}  // namespace mochy
