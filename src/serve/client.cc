#include "serve/client.h"

#include <unistd.h>

#include <utility>

#include "serve/protocol.h"

namespace mochy {

MotifClient::MotifClient(std::string socket_path, int port,
                         ClientOptions options)
    : socket_path_(std::move(socket_path)),
      port_(port),
      options_(options) {}

MotifClient::~MotifClient() { Close(); }

Status MotifClient::Connect() {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  auto fd = ConnectTo(socket_path_, port_, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  return Status::OK();
}

Result<std::string> MotifClient::Request(const std::string& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  MOCHY_RETURN_IF_ERROR(WriteFrame(fd_, request, options_.io_timeout_ms));
  auto frame = ReadFrame(fd_, options_.io_timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame.value().eof) {
    return Status::IOError("server closed the connection before replying");
  }
  return std::move(frame.value().payload);
}

Result<std::string> MotifClient::RequestWithRetry(const std::string& request) {
  auto attempt = [&]() -> Result<std::string> {
    if (fd_ < 0) {
      if (Status dial = Connect(); !dial.ok()) return dial;
    }
    auto response = Request(request);
    if (!response.ok()) {
      // The connection's framing state is unknown after a transport
      // failure; retries must start from a fresh dial.
      Close();
      return response;
    }
    // An overload response is the server asking for exactly this retry
    // loop; surface it as kUnavailable so the backoff policy applies.
    // (The server closed its side after writing it, so reconnect.)
    if (response.value().rfind("error code=Unavailable", 0) == 0) {
      Close();
      return Status::Unavailable(response.value());
    }
    return response;
  };
  return RetryWithBackoff(options_.backoff, attempt);
}

void MotifClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mochy
