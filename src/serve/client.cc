#include "serve/client.h"

#include <unistd.h>

#include <utility>

#include "serve/protocol.h"

namespace mochy {

MotifClient::MotifClient(std::string socket_path, int port)
    : socket_path_(std::move(socket_path)), port_(port) {}

MotifClient::~MotifClient() { Close(); }

Status MotifClient::Connect() {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  auto fd = ConnectTo(socket_path_, port_);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  return Status::OK();
}

Result<std::string> MotifClient::Request(const std::string& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  MOCHY_RETURN_IF_ERROR(WriteFrame(fd_, request));
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame.value().eof) {
    return Status::IOError("server closed the connection before replying");
  }
  return std::move(frame.value().payload);
}

void MotifClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mochy
