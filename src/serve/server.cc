#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "common/fault.h"
#include "common/parallel.h"
#include "common/parse.h"
#include "common/thread_pool.h"
#include "hypergraph/fingerprint.h"
#include "hypergraph/binary_format.h"
#include "hypergraph/io.h"
#include "profile/significance.h"
#include "profile/similarity.h"
#include "serve/protocol.h"
#include "serve/render.h"

namespace mochy {

namespace {

bool ValidGraphName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_' && c != '.') {
      return false;
    }
  }
  return true;
}

std::string ErrorResponse(const Status& status) {
  return std::string("error code=") + StatusCodeToString(status.code()) + " " +
         status.message() + "\n";
}

std::string Hex16(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// One `key=value` token split at the first '='; empty key on mismatch.
std::pair<std::string_view, std::string_view> SplitKeyValue(
    std::string_view token) {
  const size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return {{}, {}};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

/// Parses the count-query options (`algorithm= samples= ratio= seed=
/// threads= variance=`) from `tokens[first..]`.
Status ParseCountOptions(const std::vector<std::string_view>& tokens,
                         size_t first, EngineOptions* options) {
  for (size_t i = first; i < tokens.size(); ++i) {
    const auto [key, value] = SplitKeyValue(tokens[i]);
    if (key == "algorithm") {
      MOCHY_ASSIGN_OR_RETURN(options->algorithm, ParseAlgorithm(value));
    } else if (key == "samples") {
      MOCHY_ASSIGN_OR_RETURN(options->num_samples, ParseUint64(value));
    } else if (key == "ratio") {
      MOCHY_ASSIGN_OR_RETURN(options->sampling_ratio,
                             ParsePositiveDouble(value, "ratio"));
    } else if (key == "seed") {
      MOCHY_ASSIGN_OR_RETURN(options->seed, ParseUint64(value));
    } else if (key == "threads") {
      MOCHY_ASSIGN_OR_RETURN(
          uint64_t threads,
          ParseUint64InRange(value, 0, 4096, "threads"));
      options->num_threads = static_cast<size_t>(threads);
    } else if (key == "variance") {
      MOCHY_ASSIGN_OR_RETURN(uint64_t flag,
                             ParseUint64InRange(value, 0, 1, "variance"));
      options->estimate_variance = flag != 0;
    } else {
      return Status::InvalidArgument("unknown count option '" +
                                     std::string(tokens[i]) + "'");
    }
  }
  return Status::OK();
}

/// Parses the profile-query options shared by profile and similarity.
Status ParseProfileOptions(const std::vector<std::string_view>& tokens,
                           size_t first,
                           CharacteristicProfileOptions* options) {
  for (size_t i = first; i < tokens.size(); ++i) {
    const auto [key, value] = SplitKeyValue(tokens[i]);
    if (key == "random") {
      MOCHY_ASSIGN_OR_RETURN(uint64_t random,
                             ParseUint64InRange(value, 1, 100000, "random"));
      options->num_random_graphs = static_cast<int>(random);
    } else if (key == "seed") {
      MOCHY_ASSIGN_OR_RETURN(options->seed, ParseUint64(value));
    } else if (key == "ratio") {
      // < 0 means exact counting, so any finite value is legal here.
      MOCHY_ASSIGN_OR_RETURN(options->sample_ratio, ParseDouble(value));
    } else if (key == "epsilon") {
      MOCHY_ASSIGN_OR_RETURN(options->epsilon, ParseDouble(value));
    } else if (key == "null") {
      if (value == "chung-lu") {
        options->null_model = NullModel::kChungLu;
      } else if (value == "perturb") {
        options->null_model = NullModel::kPerturb;
      } else {
        return Status::InvalidArgument("unknown null model '" +
                                       std::string(value) +
                                       "' (want chung-lu|perturb)");
      }
    } else if (key == "perturb") {
      MOCHY_ASSIGN_OR_RETURN(options->perturb_fraction,
                             ParseDouble(value));
    } else if (key == "threads") {
      MOCHY_ASSIGN_OR_RETURN(
          uint64_t threads,
          ParseUint64InRange(value, 0, 4096, "threads"));
      options->num_threads = static_cast<size_t>(threads);
    } else {
      return Status::InvalidArgument("unknown profile option '" +
                                     std::string(tokens[i]) + "'");
    }
  }
  return Status::OK();
}

/// The cache key of a profile body: every option that can change the
/// profile, doubles encoded exactly. num_threads is deliberately absent
/// (the pipeline is thread-count-invariant, motif/engine.h).
std::string ProfileCacheKey(uint64_t fingerprint,
                            const CharacteristicProfileOptions& options) {
  std::string key = "profile fp=" + Hex16(fingerprint);
  key += " random=" + std::to_string(options.num_random_graphs);
  key += " seed=" + std::to_string(options.seed);
  key += " ratio=" + EncodeDouble(options.sample_ratio);
  key += " epsilon=" + EncodeDouble(options.epsilon);
  key += options.null_model == NullModel::kChungLu ? " null=chung-lu"
                                                   : " null=perturb";
  key += " perturb=" + EncodeDouble(options.perturb_fraction);
  return key;
}

}  // namespace

std::string ServerStats::ToString() const {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof(line),
                "server queries=%llu count=%llu profile=%llu "
                "similarity=%llu per_edge=%llu predict=%llu errors=%llu "
                "overloaded=%llu dropped=%llu "
                "active=%zu graphs=%zu\n",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(count_queries),
                static_cast<unsigned long long>(profile_queries),
                static_cast<unsigned long long>(similarity_queries),
                static_cast<unsigned long long>(per_edge_queries),
                static_cast<unsigned long long>(predict_queries),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(overload_rejections),
                static_cast<unsigned long long>(dropped_connections),
                active_connections, graphs);
  out += line;
  std::snprintf(line, sizeof(line),
                "cache hits=%llu misses=%llu hit_rate=%.4f entries=%zu "
                "resident_bytes=%llu budget_bytes=%llu insertions=%llu "
                "evictions=%llu admission_rejects=%llu\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.HitRate(), cache.entries,
                static_cast<unsigned long long>(cache.resident_bytes),
                static_cast<unsigned long long>(cache.budget_bytes),
                static_cast<unsigned long long>(cache.insertions),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.admission_rejects));
  out += line;
  return out;
}

MotifServer::MotifServer(ServeOptions options)
    : options_(std::move(options)), cache_(options_.cache_budget) {}

Status MotifServer::LoadGraph(const std::string& name, Hypergraph graph) {
  if (!ValidGraphName(name)) {
    return Status::InvalidArgument("invalid graph name '" + name +
                                   "' (want [A-Za-z0-9._-]{1,128})");
  }
  auto entry = std::make_unique<GraphEntry>();
  entry->graph = std::move(graph);
  entry->fingerprint = GraphFingerprint(entry->graph);
  auto engine = MotifEngine::Create(entry->graph);
  if (!engine.ok()) return engine.status();
  entry->engine =
      std::make_unique<MotifEngine>(std::move(engine).value());

  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (auto it = registry_.find(name); it != registry_.end()) {
    if (it->second->fingerprint == entry->fingerprint) {
      return Status::OK();  // identical content: idempotent
    }
    return Status::AlreadyExists("graph '" + name +
                                 "' is already loaded with different "
                                 "content (fingerprint mismatch)");
  }
  registry_.emplace(name, std::move(entry));
  return Status::OK();
}

Status MotifServer::LoadGraphFile(const std::string& name,
                                  const std::string& path) {
  // Accepts both on-disk formats; the magic bytes pick the binary
  // ".mhg" container or the text importer.
  auto graph = LoadHypergraphAuto(path);
  if (!graph.ok()) return graph.status();
  return LoadGraph(name, std::move(graph).value());
}

MotifServer::GraphEntry* MotifServer::FindGraph(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.get();
}

std::string MotifServer::HandleLoad(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() != 3) {
    return ErrorResponse(
        Status::InvalidArgument("usage: load <name> <path>"));
  }
  const std::string name(tokens[1]);
  if (Status s = LoadGraphFile(name, std::string(tokens[2])); !s.ok()) {
    return ErrorResponse(s);
  }
  GraphEntry* entry = FindGraph(name);
  char line[256];
  std::snprintf(line, sizeof(line),
                "ok kind=load name=%s fingerprint=%s nodes=%zu edges=%zu "
                "pins=%llu\n",
                name.c_str(), Hex16(entry->fingerprint).c_str(),
                entry->graph.num_nodes(), entry->graph.num_edges(),
                static_cast<unsigned long long>(entry->graph.num_pins()));
  return line;
}

std::string MotifServer::HandleCount(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("usage: count <name> [key=value ...]"));
  }
  GraphEntry* entry = FindGraph(std::string(tokens[1]));
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound(
        "graph '" + std::string(tokens[1]) + "' is not loaded"));
  }
  EngineOptions requested;
  if (Status s = ParseCountOptions(tokens, 2, &requested); !s.ok()) {
    return ErrorResponse(s);
  }
  const EngineOptions canonical = entry->engine->Canonicalize(requested);
  const std::string key =
      "count fp=" + Hex16(entry->fingerprint) + " " +
      EngineOptionsCacheKey(canonical);

  bool cached = true;
  std::optional<std::string> body = cache_.Get(key);
  if (!body.has_value()) {
    cached = false;
    // Execute with the canonical options (results are identical by the
    // Canonicalize() contract) but the requested thread budget (purely
    // a scheduling knob).
    EngineOptions exec = canonical;
    exec.num_threads = requested.num_threads;
    auto result = entry->engine->Count(exec);
    if (!result.ok()) return ErrorResponse(result.status());
    body = "stats " + result.value().stats.ToString() + "\n" +
           "counts " + EncodeCounts(result.value().counts) + "\n";
    cache_.Put(key, *body);
  }
  return "ok kind=count graph=" + std::string(tokens[1]) +
         " fingerprint=" + Hex16(entry->fingerprint) +
         " cached=" + (cached ? "1" : "0") + "\n" + *body;
}

Result<std::string> MotifServer::ProfileBody(
    GraphEntry* entry, const std::vector<std::string_view>& tokens,
    bool* cached) {
  CharacteristicProfileOptions options;
  MOCHY_RETURN_IF_ERROR(ParseProfileOptions(tokens, 2, &options));
  const std::string key = ProfileCacheKey(entry->fingerprint, options);
  *cached = true;
  std::optional<std::string> body = cache_.Get(key);
  if (!body.has_value()) {
    *cached = false;
    auto profile = ComputeCharacteristicProfile(entry->graph, options);
    if (!profile.ok()) return profile.status();
    body = "batch " + profile.value().batch.ToString() + "\n" +
           "real " + EncodeCounts(profile.value().real_counts) + "\n" +
           "random " + EncodeCounts(profile.value().random_mean) + "\n" +
           "epsilon " + EncodeDouble(options.epsilon) + "\n";
    cache_.Put(key, *body);
  }
  return *body;
}

std::string MotifServer::HandleProfile(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("usage: profile <name> [key=value ...]"));
  }
  GraphEntry* entry = FindGraph(std::string(tokens[1]));
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound(
        "graph '" + std::string(tokens[1]) + "' is not loaded"));
  }
  bool cached = false;
  auto body = ProfileBody(entry, tokens, &cached);
  if (!body.ok()) return ErrorResponse(body.status());
  return "ok kind=profile graph=" + std::string(tokens[1]) +
         " fingerprint=" + Hex16(entry->fingerprint) +
         " cached=" + (cached ? "1" : "0") + "\n" + body.value();
}

std::string MotifServer::HandleSimilarity(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 3) {
    return ErrorResponse(Status::InvalidArgument(
        "usage: similarity <name1> <name2> [key=value ...]"));
  }
  GraphEntry* first = FindGraph(std::string(tokens[1]));
  GraphEntry* second = FindGraph(std::string(tokens[2]));
  if (first == nullptr || second == nullptr) {
    return ErrorResponse(Status::NotFound(
        "graph '" +
        std::string(first == nullptr ? tokens[1] : tokens[2]) +
        "' is not loaded"));
  }
  // The per-graph profile bodies carry the cost and are shared with
  // plain profile queries through the same cache entries; the
  // correlation itself is recomputed from them each time.
  // ProfileBody reads options from index 2 on, so hand it tokens shaped
  // like a profile request: [cmd, <name>, options...].
  std::vector<std::string_view> profile_tokens = tokens;
  profile_tokens.erase(profile_tokens.begin() + 2);  // drop <name2>
  bool first_cached = false, second_cached = false;
  auto first_body = ProfileBody(first, profile_tokens, &first_cached);
  if (!first_body.ok()) return ErrorResponse(first_body.status());
  profile_tokens = tokens;
  profile_tokens.erase(profile_tokens.begin() + 1);  // drop <name1>
  auto second_body = ProfileBody(second, profile_tokens, &second_cached);
  if (!second_body.ok()) return ErrorResponse(second_body.status());

  // Decode real/random/epsilon back out of the cached bodies and derive
  // each CP with the same pure functions the offline pipeline uses.
  auto cp_of = [](const std::string& text) -> Result<std::vector<double>> {
    MotifCounts real, random;
    double epsilon = 1.0;
    for (const std::string_view line : SplitLines(text)) {
      if (line.rfind("real ", 0) == 0) {
        MOCHY_ASSIGN_OR_RETURN(real, DecodeCounts(line.substr(5)));
      } else if (line.rfind("random ", 0) == 0) {
        MOCHY_ASSIGN_OR_RETURN(random, DecodeCounts(line.substr(7)));
      } else if (line.rfind("epsilon ", 0) == 0) {
        MOCHY_ASSIGN_OR_RETURN(epsilon, DecodeDouble(line.substr(8)));
      }
    }
    const ProfileVector cp =
        NormalizeProfile(ComputeSignificance(real, random, epsilon));
    return std::vector<double>(cp.begin(), cp.end());
  };
  auto first_cp = cp_of(first_body.value());
  if (!first_cp.ok()) return ErrorResponse(first_cp.status());
  auto second_cp = cp_of(second_body.value());
  if (!second_cp.ok()) return ErrorResponse(second_cp.status());
  const double pearson =
      PearsonCorrelation(first_cp.value(), second_cp.value());

  return "ok kind=similarity graphs=" + std::string(tokens[1]) + "," +
         std::string(tokens[2]) +
         " cached=" + ((first_cached && second_cached) ? "1" : "0") + "\n" +
         "pearson " + EncodeDouble(pearson) + "\n";
}

std::string MotifServer::HandlePerEdge(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("usage: per-edge <name> [threads=N]"));
  }
  GraphEntry* entry = FindGraph(std::string(tokens[1]));
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound(
        "graph '" + std::string(tokens[1]) + "' is not loaded"));
  }
  EngineOptions options;
  for (size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = SplitKeyValue(tokens[i]);
    if (key == "threads") {
      auto threads = ParseUint64InRange(value, 0, 4096, "threads");
      if (!threads.ok()) return ErrorResponse(threads.status());
      options.num_threads = static_cast<size_t>(threads.value());
    } else {
      return ErrorResponse(Status::InvalidArgument(
          "unknown per-edge option '" + std::string(tokens[i]) +
          "' (only threads=N; per-edge counts are always exact)"));
    }
  }
  // Exact and thread-count-invariant, so the key is the graph alone.
  const std::string key = "per-edge fp=" + Hex16(entry->fingerprint);
  bool cached = true;
  std::optional<std::string> body = cache_.Get(key);
  if (!body.has_value()) {
    cached = false;
    auto result = entry->engine->CountPerEdge(options);
    if (!result.ok()) return ErrorResponse(result.status());
    body = RenderPerEdgeBody(result.value().rows);
    if (body->size() + 256 > kMaxFrameBytes) {
      return ErrorResponse(Status::OutOfRange(
          "per-edge body of " + std::to_string(body->size()) +
          " bytes exceeds the frame cap (" + std::to_string(kMaxFrameBytes) +
          "); run the offline CLI for graphs this large"));
    }
    cache_.Put(key, *body);
  }
  return "ok kind=per-edge graph=" + std::string(tokens[1]) +
         " fingerprint=" + Hex16(entry->fingerprint) +
         " cached=" + (cached ? "1" : "0") + "\n" + *body;
}

std::string MotifServer::HandlePredict(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 3) {
    return ErrorResponse(Status::InvalidArgument(
        "usage: predict <history> <candidates> [replace=R] [seed=S] "
        "[threads=N]"));
  }
  GraphEntry* history = FindGraph(std::string(tokens[1]));
  GraphEntry* candidates = FindGraph(std::string(tokens[2]));
  if (history == nullptr || candidates == nullptr) {
    return ErrorResponse(Status::NotFound(
        "graph '" +
        std::string(history == nullptr ? tokens[1] : tokens[2]) +
        "' is not loaded"));
  }
  PredictRequestOptions options;
  for (size_t i = 3; i < tokens.size(); ++i) {
    const auto [key, value] = SplitKeyValue(tokens[i]);
    if (key == "replace") {
      auto replace = ParseDouble(value);
      if (!replace.ok()) return ErrorResponse(replace.status());
      if (!(replace.value() > 0.0 && replace.value() <= 1.0)) {
        return ErrorResponse(Status::InvalidArgument(
            "replace must be in (0, 1], got '" + std::string(value) + "'"));
      }
      options.replace_fraction = replace.value();
    } else if (key == "seed") {
      auto seed = ParseUint64(value);
      if (!seed.ok()) return ErrorResponse(seed.status());
      options.seed = seed.value();
    } else if (key == "threads") {
      auto threads = ParseUint64InRange(value, 0, 4096, "threads");
      if (!threads.ok()) return ErrorResponse(threads.status());
      options.num_threads = static_cast<size_t>(threads.value());
    } else {
      return ErrorResponse(Status::InvalidArgument(
          "unknown predict option '" + std::string(tokens[i]) +
          "' (want replace=R seed=S threads=N)"));
    }
  }
  // replace goes through EncodeDouble so every spelling of the same
  // double ("0.5", "0.50", "0x1p-1") canonicalizes to one cache entry;
  // threads is absent (the body is thread-count-invariant, render.h).
  const std::string key =
      "predict fp=" + Hex16(history->fingerprint) + " fp=" +
      Hex16(candidates->fingerprint) + " replace=" +
      EncodeDouble(options.replace_fraction) + " seed=" +
      std::to_string(options.seed);
  bool cached = true;
  std::optional<std::string> body = cache_.Get(key);
  if (!body.has_value()) {
    cached = false;
    auto rendered =
        RenderPredictBody(history->graph, candidates->graph, options);
    if (!rendered.ok()) return ErrorResponse(rendered.status());
    body = std::move(rendered).value();
    cache_.Put(key, *body);
  }
  return "ok kind=predict graphs=" + std::string(tokens[1]) + "," +
         std::string(tokens[2]) +
         " cached=" + (cached ? "1" : "0") + "\n" + *body;
}

std::string MotifServer::HandleStats() {
  return "ok kind=stats\n" + stats().ToString();
}

std::string MotifServer::HandleRequest(const std::string& request) {
  // Requests are single-line; tolerate a trailing newline.
  const std::vector<std::string_view> lines = SplitLines(request);
  const std::vector<std::string_view> tokens =
      lines.empty() ? std::vector<std::string_view>{}
                    : SplitTokens(lines.front());
  std::string response;
  const std::string_view command = tokens.empty() ? "" : tokens.front();
  if (command == "count") {
    response = HandleCount(tokens);
  } else if (command == "profile") {
    response = HandleProfile(tokens);
  } else if (command == "similarity") {
    response = HandleSimilarity(tokens);
  } else if (command == "per-edge") {
    response = HandlePerEdge(tokens);
  } else if (command == "predict") {
    response = HandlePredict(tokens);
  } else if (command == "load") {
    response = HandleLoad(tokens);
  } else if (command == "stats") {
    response = HandleStats();
  } else if (command == "shutdown") {
    RequestStop();
    response = "ok kind=shutdown\n";
  } else {
    response = ErrorResponse(Status::InvalidArgument(
        "unknown command '" + std::string(command) +
        "' (want load|count|profile|similarity|per-edge|predict|stats|"
        "shutdown)"));
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    if (command == "count") ++stats_.count_queries;
    if (command == "profile") ++stats_.profile_queries;
    if (command == "similarity") ++stats_.similarity_queries;
    if (command == "per-edge") ++stats_.per_edge_queries;
    if (command == "predict") ++stats_.predict_queries;
    if (response.rfind("error", 0) == 0) ++stats_.errors;
  }
  return response;
}

ServerStats MotifServer::stats() const {
  ServerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.cache = cache_.stats();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    snapshot.graphs = registry_.size();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    snapshot.active_connections = active_connections_;
  }
  return snapshot;
}

void MotifServer::RequestStop() { stop_.store(true); }

void MotifServer::HandleConnection(int fd) {
  int idle_ms = 0;
  bool dropped = false;
  while (idle_ms < options_.idle_timeout_ms) {
    // Short poll slices so a stop request closes idle connections
    // promptly instead of after the full idle timeout.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) break;
    if (ready == 0) {
      if (stop_.load()) break;
      idle_ms += 200;
      continue;
    }
    // A frame has started (or the peer closed): the per-frame deadline
    // takes over from the idle poll, so a stalled mid-frame peer — or
    // one not draining its reply — cannot pin this worker.
    auto frame = ReadFrame(fd, options_.io_timeout_ms);
    if (!frame.ok()) {
      dropped = true;
      break;
    }
    if (frame.value().eof) break;
    const std::string response = HandleRequest(frame.value().payload);
    if (!WriteFrame(fd, response, options_.io_timeout_ms).ok()) {
      dropped = true;
      break;
    }
    // Graceful drain: the request in flight when stop was requested is
    // answered, further requests on this connection are not.
    if (stop_.load()) break;
    idle_ms = 0;
  }
  ::close(fd);
  if (dropped) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.dropped_connections;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    --active_connections_;
    // Notify while holding the mutex: the drain loop in Serve() cannot
    // observe active_connections_ == 0 (and let the caller destroy this
    // server, condition variable included) until this thread is fully
    // done with the condition variable.
    connections_done_.notify_all();
  }
}

Status MotifServer::Serve() {
  auto listen_fd = ListenOn(options_.socket_path, options_.port);
  if (!listen_fd.ok()) return listen_fd.status();
  const int fd = listen_fd.value();

  while (!stop_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;
    const FaultAction fault = MOCHY_FAULT_POINT("server.accept");
    if (fault.kind == FaultAction::Kind::kError) {
      ::close(conn);
      continue;
    }
    bool overloaded = false;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (options_.max_connections != 0 &&
          active_connections_ >= options_.max_connections) {
        overloaded = true;
      } else {
        ++active_connections_;
      }
    }
    if (overloaded) {
      // Shed load with a typed response instead of queueing: the frame
      // is tiny (fits any socket buffer), so the short write deadline
      // only guards against a pathological peer stalling the acceptor.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.overload_rejections;
      }
      WriteFrame(conn,
                 "error code=Unavailable server overloaded "
                 "(max_connections=" +
                     std::to_string(options_.max_connections) +
                     "), retry with backoff\n",
                 100);
      ::close(conn);
      continue;
    }
    SharedThreadPool().Submit([this, conn] { HandleConnection(conn); });
  }

  ::close(fd);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  std::unique_lock<std::mutex> lock(connections_mutex_);
  connections_done_.wait(lock, [this] { return active_connections_ == 0; });
  return Status::OK();
}

}  // namespace mochy
