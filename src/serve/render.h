/// \file
/// Response-body renderers shared by the offline CLI and the server.
///
/// The serving layer's determinism contract (serve/server.h) is
/// "served == offline, byte for byte". For count and profile queries
/// that holds because both paths call the same counting functions and
/// encode with the same EncodeCounts/EncodeDouble helpers. The per-edge
/// and predict workloads produce larger, multi-line bodies, so the
/// rendering itself lives here and both `mochy_cli per-edge`/`predict`
/// and MotifServer's handlers call these functions — byte identity is
/// by construction, not by parallel maintenance of two formatters.
///
/// All numeric payloads are C99 hex-float literals (serve/protocol.h),
/// so a diff of an offline body against a served (cold or cached) body
/// is empty exactly when the underlying doubles are bit-identical.
#ifndef MOCHY_SERVE_RENDER_H_
#define MOCHY_SERVE_RENDER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "motif/engine.h"

namespace mochy {

/// Renders a per-edge result (motif/engine.h CountPerEdge) as
///   rows <num_edges>
///   row <edge_id> <26 hex-float counts>
///   ...
/// one `row` line per hyperedge in id order. Rows are exact integer
/// counts and thread-count-invariant, so the body depends only on the
/// graph content.
std::string RenderPerEdgeBody(const PerEdgeCounts& rows);

/// Options of a Table-4 prediction request; mirrors
/// PredictionTaskOptions (ml/features.h) plus nothing else — the
/// train/test split fraction (0.3) and split seed (17) are fixed so the
/// body is a pure function of (history, candidates, these options).
struct PredictRequestOptions {
  /// Fraction of members replaced when fabricating fake candidates.
  double replace_fraction = 0.5;
  /// Seed of the fake-candidate fabrication.
  uint64_t seed = 1;
  /// Worker budget; 0 means all cores. Never changes the body
  /// (feature rows are bit-identical at every thread count and the
  /// classifiers are seed-deterministic), so cache keys omit it.
  size_t num_threads = 0;
};

/// Runs the full Table-4 pipeline — fabricate one fake per candidate,
/// extract HM26/HM7/HC features over history+candidates+fakes, train
/// the five reference classifiers on each feature set — and renders
///   task history=<H> real=<R> fake=<R>
///   hm7 <7 motif ids>
///   model <name> <set> acc=<hex> auc=<hex>   (5 names x 3 sets)
/// Candidates are `candidates`' hyperedges with at least two members
/// (smaller edges cannot be perturbed into fakes and are skipped).
/// Deterministic in (history, candidates, options): repeated calls are
/// byte-identical.
Result<std::string> RenderPredictBody(const Hypergraph& history,
                                      const Hypergraph& candidates,
                                      const PredictRequestOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_SERVE_RENDER_H_
