/// \file
/// MotifServer: the resident serving layer over the counting stack.
///
/// The library answers one-shot runs; the server turns it into a
/// service: loaded graphs stay resident in a registry (each with its
/// content fingerprint and a ready MotifEngine), queries arrive as
/// protocol frames (serve/protocol.h) over a unix-domain or loopback
/// TCP socket, and results are answered from a **byte-budgeted LRU
/// result cache** keyed by (graph fingerprint, canonicalized
/// EngineOptions) before any counting happens. Repeat traffic — the
/// workload the ROADMAP's service tier targets — costs one cache lookup
/// plus one frame write.
///
/// \par Request grammar (payload first line)
///   load <name> <path>                       register a graph from disk
///   count <name> [algorithm=A] [samples=N] [ratio=R] [seed=S]
///                [threads=N] [variance=0|1]  counts / estimates
///   profile <name> [random=K] [seed=S] [ratio=R] [epsilon=E]
///                  [null=chung-lu|perturb] [threads=N]
///   similarity <name1> <name2> [profile keys...]   CP Pearson correlation
///   per-edge <name> [threads=N]              exact per-edge motif rows
///   predict <history> <candidates> [replace=R] [seed=S] [threads=N]
///                                            Table-4 prediction pipeline
///   stats                                    server + cache counters
///   shutdown                                 stop accepting, drain, exit
/// Responses start "ok ..." or "error code=<Code> <message>"; counts
/// travel as exact hex-float literals. The full grammar is documented in
/// docs/ARCHITECTURE.md ("The serving layer").
///
/// \par Concurrency
/// Each accepted connection is handled as one task on the shared
/// ThreadPool (common/thread_pool.h), so queries from different
/// connections run concurrently up to the pool width while counting
/// inside a handler runs inline on that worker (the pool's nested-region
/// rule). The registry is mutex-guarded and append-only — entries are
/// heap-pinned, so engines and graphs keep stable addresses for the
/// lifetime of the server; the result cache is internally synchronized.
///
/// \par Determinism
/// A served response is built from the same Count()/profile calls the
/// offline CLI makes, and cache keys canonicalize exactly the fields
/// that cannot change results (MotifEngine::Canonicalize) — so a cached
/// answer is bit-identical to the cold answer, which is bit-identical to
/// an offline run with the same options (asserted in-run by the
/// bench_report serving scenario and by CI's serve smoke job).
#ifndef MOCHY_SERVE_SERVER_H_
#define MOCHY_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "motif/engine.h"

namespace mochy {

/// Server configuration; the CLI flags map onto this 1:1.
struct ServeOptions {
  /// Unix-domain socket path; when empty, `port` selects loopback TCP.
  std::string socket_path;
  /// Loopback TCP port, used only when socket_path is empty.
  int port = 0;
  /// Result-cache byte budget (the ParseMemoryBudget unit); 0 disables
  /// caching (every query recounts).
  uint64_t cache_budget = 64ull << 20;
  /// A connection idle longer than this is closed (frames are expected
  /// back-to-back; this bounds how long an abandoned connection can pin
  /// a pool worker).
  int idle_timeout_ms = 60'000;
  /// Per-frame I/O deadline (serve/protocol.h semantics): once a frame
  /// has started, a peer that stalls mid-frame — slow-loris request or
  /// undrained reply — is cut off after this long instead of pinning a
  /// pool worker forever. 0 disables the deadline.
  int io_timeout_ms = 10'000;
  /// Concurrent-connection cap. An accept beyond the cap is answered
  /// with one "error code=Unavailable ..." frame and closed — load is
  /// shed with a typed response the client can back off on, instead of
  /// queueing unbounded work on the pool. 0 means uncapped.
  size_t max_connections = 256;
};

/// Snapshot of server effectiveness counters, plus the cache's.
struct ServerStats {
  uint64_t queries = 0;             ///< requests dispatched (incl. failures)
  uint64_t count_queries = 0;       ///< `count` requests
  uint64_t profile_queries = 0;     ///< `profile` requests
  uint64_t similarity_queries = 0;  ///< `similarity` requests
  uint64_t per_edge_queries = 0;    ///< `per-edge` requests
  uint64_t predict_queries = 0;     ///< `predict` requests
  uint64_t errors = 0;              ///< requests answered with "error ..."
  uint64_t overload_rejections = 0; ///< accepts shed at max_connections
  uint64_t dropped_connections = 0; ///< connections closed on an I/O error
                                    ///  (timeout, truncation, injected fault)
  size_t active_connections = 0;    ///< currently open connections
  size_t graphs = 0;                ///< resident registry entries
  LruCacheStats cache;              ///< result-cache counters

  /// The two `server ...` / `cache ...` lines of a stats response.
  std::string ToString() const;
};

/// Resident serving front end; see the file comment for the contract.
class MotifServer {
 public:
  explicit MotifServer(ServeOptions options);

  MotifServer(const MotifServer&) = delete;
  MotifServer& operator=(const MotifServer&) = delete;

  /// Registers `graph` under `name` (names match [A-Za-z0-9._-]+),
  /// computing its fingerprint and building its materialized engine up
  /// front so first-query latency excludes the projection build.
  /// Loading the same content under the same name is idempotent;
  /// a different graph under a taken name is kAlreadyExists.
  Status LoadGraph(const std::string& name, Hypergraph graph);

  /// LoadGraph from a dataset file (hypergraph/io.h text format).
  Status LoadGraphFile(const std::string& name, const std::string& path);

  /// Parses and executes one request payload, returning the response
  /// payload ("ok ..." or "error ..."; never fails at the C++ level —
  /// malformed requests become error responses). This is the whole
  /// serving logic; the socket loop is a framing shim around it, and
  /// in-process callers (bench_report's serving scenario, tests) drive
  /// it directly.
  std::string HandleRequest(const std::string& request);

  /// One consistent snapshot of the counters.
  ServerStats stats() const;

  /// Binds per ServeOptions and serves until a `shutdown` request (or
  /// RequestStop()), then drains open connections and returns. Blocks;
  /// run it on the main/dedicated thread, never on a pool worker.
  Status Serve();

  /// Makes Serve() stop accepting and return once connections drain.
  /// Safe from any thread and from inside a handler.
  void RequestStop();

 private:
  struct GraphEntry {
    Hypergraph graph;
    uint64_t fingerprint = 0;
    // Built after `graph` is in place (the engine points into it); the
    // entry is heap-pinned, so the pointer stays valid for its lifetime.
    std::unique_ptr<MotifEngine> engine;
  };

  GraphEntry* FindGraph(const std::string& name);
  std::string HandleLoad(const std::vector<std::string_view>& tokens);
  std::string HandleCount(const std::vector<std::string_view>& tokens);
  std::string HandleProfile(const std::vector<std::string_view>& tokens);
  std::string HandleSimilarity(const std::vector<std::string_view>& tokens);
  std::string HandlePerEdge(const std::vector<std::string_view>& tokens);
  std::string HandlePredict(const std::vector<std::string_view>& tokens);
  std::string HandleStats();
  /// The profile body shared by profile and similarity queries (cached;
  /// `cached` reports whether this call was served from the cache).
  Result<std::string> ProfileBody(GraphEntry* entry,
                                  const std::vector<std::string_view>& tokens,
                                  bool* cached);
  void HandleConnection(int fd);

  const ServeOptions options_;
  BudgetedLruCache cache_;

  mutable std::mutex registry_mutex_;
  // Entries are never erased and unique_ptr pins them: engines hold
  // pointers into their entry's graph, and handlers use raw GraphEntry*
  // outside the registry lock.
  std::unordered_map<std::string, std::unique_ptr<GraphEntry>> registry_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::atomic<bool> stop_{false};
  mutable std::mutex connections_mutex_;
  std::condition_variable connections_done_;
  size_t active_connections_ = 0;
};

}  // namespace mochy

#endif  // MOCHY_SERVE_SERVER_H_
