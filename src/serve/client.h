/// \file
/// MotifClient: the thin connection-side counterpart of MotifServer.
///
/// Wraps one stream-socket connection (unix-domain or loopback TCP) and
/// the frame exchange: Request() writes one request payload and returns
/// the matching response payload. Response *interpretation* — decoding
/// hex-float counts, rebuilding tables — stays with the caller
/// (mochy_cli's query mode), so the client works for any command the
/// server grammar adds later.
///
/// \par Thread safety
/// A MotifClient is a plain connection handle: one thread at a time.
/// Open one client per thread for concurrent traffic (the server side
/// handles connections independently).
#ifndef MOCHY_SERVE_CLIENT_H_
#define MOCHY_SERVE_CLIENT_H_

#include <string>

#include "common/backoff.h"
#include "common/status.h"

namespace mochy {

/// Client-side fault-tolerance knobs; the CLI query flags map onto this.
struct ClientOptions {
  /// Dial deadline (protocol.h ConnectTo semantics); 0 blocks.
  int connect_timeout_ms = 5'000;
  /// Per-frame deadline on Request()'s write and read. The read clock
  /// includes the server's compute time for the query, so 0 (no
  /// deadline) is the safe default for expensive profile queries.
  int io_timeout_ms = 0;
  /// Retry schedule used by RequestWithRetry (max_attempts = 1 disables
  /// retries).
  BackoffOptions backoff;
};

/// One client connection to a MotifServer.
class MotifClient {
 public:
  /// Does not connect; call Connect().
  MotifClient(std::string socket_path, int port, ClientOptions options = {});

  /// Closes the connection if open.
  ~MotifClient();

  MotifClient(const MotifClient&) = delete;
  MotifClient& operator=(const MotifClient&) = delete;

  /// Connects per the address rules of ConnectTo (serve/protocol.h).
  Status Connect();

  /// Sends one request payload, returns the response payload. The
  /// connection must be open; server-side failures come back as
  /// "error ..." payloads (still Result-ok here — the transport worked).
  Result<std::string> Request(const std::string& request);

  /// Request() with fault tolerance: dials if not connected, and on a
  /// transient failure — transport error, frame deadline, server
  /// overload response — closes, waits the jittered backoff delay, and
  /// retries with a fresh connection, up to backoff.max_attempts total
  /// tries. Safe because every request in the server grammar is
  /// idempotent. Non-retriable failures and "error ..." responses other
  /// than Unavailable return immediately.
  Result<std::string> RequestWithRetry(const std::string& request);

  /// Closes the connection (idempotent).
  void Close();

 private:
  std::string socket_path_;
  int port_ = 0;
  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace mochy

#endif  // MOCHY_SERVE_CLIENT_H_
