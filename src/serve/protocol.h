/// \file
/// Wire protocol of the motif-count serving layer.
///
/// Transport is a stream socket (unix-domain or loopback TCP) carrying
/// **length-prefixed frames**: a 4-byte little-endian payload length
/// followed by that many bytes of UTF-8 text. One request frame yields
/// exactly one response frame; a connection carries any number of
/// request/response pairs and is closed by the client (EOF at a frame
/// boundary is a clean end of conversation, EOF inside a frame is an
/// error). Frames above kMaxFrameBytes are rejected before any
/// allocation, so a corrupt or hostile length prefix cannot balloon
/// server memory.
///
/// Payloads are line-oriented text (first line = command or status,
/// space-separated tokens; see docs/ARCHITECTURE.md "The serving layer"
/// for the full request/response grammar). Motif counts travel as
/// C99 hex-float literals (printf %a), which round-trip doubles exactly —
/// a served count is bit-identical to the engine result it came from,
/// never a decimal approximation.
#ifndef MOCHY_SERVE_PROTOCOL_H_
#define MOCHY_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "motif/counts.h"

namespace mochy {

/// Hard per-frame payload cap (16 MiB): far above any real response —
/// the largest payload is a profile response, well under a kilobyte —
/// and small enough that a garbage length prefix fails fast.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Writes one frame (length prefix + payload) to `fd`, retrying short
/// writes and EINTR. Errors with kInvalidArgument when the payload
/// exceeds kMaxFrameBytes, kIOError on a broken connection. Writes use
/// MSG_NOSIGNAL, so a peer that disconnected mid-reply yields EPIPE as
/// a Status instead of a process-killing SIGPIPE.
///
/// `timeout_ms > 0` bounds the *whole frame*: each write is preceded by
/// a poll for writability against the deadline set when the call began,
/// so a peer that stops draining its socket cannot pin the caller —
/// the frame fails with kDeadlineExceeded carrying the byte counts.
/// 0 keeps the historical blocking behavior.
Status WriteFrame(int fd, std::string_view payload, int timeout_ms = 0);

/// Result of ReadFrame: either a payload or a clean end-of-stream.
struct FrameRead {
  bool eof = false;     ///< peer closed at a frame boundary (no payload)
  std::string payload;  ///< the frame's text when !eof
};

/// Reads one frame from `fd`. A clean EOF before any length byte yields
/// {eof=true}; EOF mid-frame, an oversized length prefix, or a socket
/// error yield kIOError.
///
/// `timeout_ms > 0` bounds the whole frame exactly like WriteFrame: a
/// slow-loris peer that sends a length prefix and then stalls gets
/// kDeadlineExceeded (with bytes-read counts) instead of holding the
/// reader forever. 0 blocks indefinitely (historical behavior).
Result<FrameRead> ReadFrame(int fd, int timeout_ms = 0);

/// Splits on single spaces, dropping empty tokens ("a  b" -> ["a","b"]).
std::vector<std::string_view> SplitTokens(std::string_view text);

/// Splits on '\n', keeping empty lines, dropping one trailing newline.
std::vector<std::string_view> SplitLines(std::string_view text);

/// Formats `value` as a C99 hex-float literal (%a) — exact round-trip.
std::string EncodeDouble(double value);

/// Parses a double accepting hex-float literals; whole string only,
/// finite only (common/parse.h semantics).
Result<double> DecodeDouble(std::string_view text);

/// The 26 counts as space-separated hex-float tokens.
std::string EncodeCounts(const MotifCounts& counts);

/// Inverse of EncodeCounts; errors unless exactly 26 finite values.
Result<MotifCounts> DecodeCounts(std::string_view text);

/// Opens a listening stream socket: unix-domain at `socket_path` when
/// non-empty (an existing socket file at that path is replaced),
/// otherwise loopback TCP on `port`. Returns the listening fd.
Result<int> ListenOn(const std::string& socket_path, int port);

/// Connects a stream socket to a server opened with ListenOn (same
/// address rules). Returns the connected fd. `connect_timeout_ms > 0`
/// dials non-blocking and polls, failing with kDeadlineExceeded when
/// the peer does not accept in time (the fd comes back in blocking
/// mode either way); 0 uses the OS default blocking connect.
Result<int> ConnectTo(const std::string& socket_path, int port,
                      int connect_timeout_ms = 0);

}  // namespace mochy

#endif  // MOCHY_SERVE_PROTOCOL_H_
