#include "baseline/network_cp.h"

#include <cmath>

#include "baseline/bipartite.h"
#include "random/chung_lu.h"

namespace mochy {

Result<std::vector<double>> ComputeNetworkMotifCP(
    const Hypergraph& graph, const NetworkCpOptions& options) {
  if (options.num_random_graphs <= 0) {
    return Status::InvalidArgument("need at least one random graph");
  }
  const Graph real = StarExpansion(graph);
  MOCHY_ASSIGN_OR_RETURN(GraphletCensus real_census,
                         CountGraphlets(real, options.census));
  const std::vector<double> real_counts =
      real_census.Flatten(options.census.min_size, options.census.max_size);

  std::vector<double> random_mean(real_counts.size(), 0.0);
  for (int i = 0; i < options.num_random_graphs; ++i) {
    ChungLuOptions cl;
    cl.seed = options.seed + 0x9e3779b9u * static_cast<uint64_t>(i + 1);
    MOCHY_ASSIGN_OR_RETURN(Hypergraph randomized, GenerateChungLu(graph, cl));
    GraphletCensusOptions census = options.census;
    census.seed = cl.seed ^ 0xabcdef12u;
    MOCHY_ASSIGN_OR_RETURN(GraphletCensus sample,
                           CountGraphlets(StarExpansion(randomized), census));
    const std::vector<double> counts =
        sample.Flatten(options.census.min_size, options.census.max_size);
    for (size_t c = 0; c < counts.size(); ++c) {
      random_mean[c] += counts[c] / options.num_random_graphs;
    }
  }

  std::vector<double> delta(real_counts.size(), 0.0);
  double sum_sq = 0.0;
  for (size_t c = 0; c < real_counts.size(); ++c) {
    delta[c] = (real_counts[c] - random_mean[c]) /
               (real_counts[c] + random_mean[c] + options.epsilon);
    sum_sq += delta[c] * delta[c];
  }
  if (sum_sq > 0.0) {
    const double norm = std::sqrt(sum_sq);
    for (double& d : delta) d /= norm;
  }
  return delta;
}

}  // namespace mochy
