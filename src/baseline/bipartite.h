// Plain undirected graphs and the star expansion of a hypergraph.
//
// The paper's baseline (Figure 6b) computes characteristic profiles from
// *network* motifs on the bipartite star expansion: node set V ∪ E with an
// edge (v, e) iff v ∈ e. This module provides the graph container that the
// graphlet census (graphlet.h) runs on.
#ifndef MOCHY_BASELINE_BIPARTITE_H_
#define MOCHY_BASELINE_BIPARTITE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

/// Immutable simple undirected graph in CSR form (sorted adjacency).
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; duplicate edges and self-loops are dropped.
  static Graph FromEdges(size_t num_nodes,
                         std::vector<std::pair<uint32_t, uint32_t>> edges);

  size_t num_nodes() const { return offsets_.size() - 1; }
  size_t num_edges() const { return adjacency_.size() / 2; }

  std::span<const uint32_t> neighbors(uint32_t v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  size_t degree(uint32_t v) const { return offsets_[v + 1] - offsets_[v]; }

  /// O(log degree) membership test.
  bool HasEdge(uint32_t u, uint32_t v) const;

 private:
  std::vector<uint64_t> offsets_ = {0};
  std::vector<uint32_t> adjacency_;
};

/// Star expansion: graph nodes 0..|V|-1 are hypergraph nodes, nodes
/// |V|..|V|+|E|-1 are hyperedges, with a graph edge per pin.
Graph StarExpansion(const Hypergraph& hypergraph);

}  // namespace mochy

#endif  // MOCHY_BASELINE_BIPARTITE_H_
