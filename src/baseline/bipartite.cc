#include "baseline/bipartite.h"

#include <algorithm>

#include "common/logging.h"

namespace mochy {

Graph Graph::FromEdges(size_t num_nodes,
                       std::vector<std::pair<uint32_t, uint32_t>> edges) {
  // Normalize: undirected (u < v), no self loops, no duplicates.
  for (auto& [u, v] : edges) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());

  Graph g;
  g.offsets_.assign(num_nodes + 1, 0);
  for (const auto& [u, v] : edges) {
    MOCHY_CHECK(v < num_nodes) << "edge endpoint out of range";
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (size_t i = 0; i < num_nodes; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adjacency_.resize(edges.size() * 2);
  std::vector<uint64_t> fill(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[fill[u]++] = v;
    g.adjacency_[fill[v]++] = u;
  }
  for (size_t v = 0; v < num_nodes; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[v + 1]));
  }
  return g;
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  const auto span = neighbors(u);
  return std::binary_search(span.begin(), span.end(), v);
}

Graph StarExpansion(const Hypergraph& hypergraph) {
  const size_t n = hypergraph.num_nodes();
  const size_t m = hypergraph.num_edges();
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(hypergraph.num_pins());
  for (EdgeId e = 0; e < m; ++e) {
    for (NodeId v : hypergraph.edge(e)) {
      edges.emplace_back(v, static_cast<uint32_t>(n + e));
    }
  }
  return Graph::FromEdges(n + m, std::move(edges));
}

}  // namespace mochy
