#include "baseline/graphlet.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "common/rng.h"

namespace mochy {

namespace {

inline int PairBit(int i, int j) {
  if (i > j) std::swap(i, j);
  return j * (j - 1) / 2 + i;
}

bool MaskConnected(int k, uint32_t mask) {
  uint32_t visited = 1;  // node 0
  uint32_t frontier = 1;
  while (frontier != 0) {
    uint32_t next = 0;
    for (int i = 0; i < k; ++i) {
      if (!(frontier & (1u << i))) continue;
      for (int j = 0; j < k; ++j) {
        if (i == j || (visited & (1u << j))) continue;
        if (mask & (1u << PairBit(i, j))) next |= 1u << j;
      }
    }
    visited |= next;
    frontier = next;
  }
  return visited == (1u << k) - 1;
}

}  // namespace

uint32_t CanonicalGraphletCode(int k, uint32_t mask) {
  MOCHY_CHECK(k >= 2 && k <= 5);
  std::array<int, 5> perm{};
  std::iota(perm.begin(), perm.begin() + k, 0);
  uint32_t best = ~0u;
  do {
    uint32_t mapped = 0;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        if (mask & (1u << PairBit(i, j))) {
          mapped |= 1u << PairBit(perm[i], perm[j]);
        }
      }
    }
    best = std::min(best, mapped);
  } while (std::next_permutation(perm.begin(), perm.begin() + k));
  return best;
}

GraphletRegistry::GraphletRegistry() {
  for (int k = 3; k <= 5; ++k) {
    std::set<uint32_t> canon;
    const uint32_t all = 1u << (k * (k - 1) / 2);
    for (uint32_t mask = 0; mask < all; ++mask) {
      if (!MaskConnected(k, mask)) continue;
      canon.insert(CanonicalGraphletCode(k, mask));
    }
    classes_[k].assign(canon.begin(), canon.end());
  }
  MOCHY_CHECK(classes_[3].size() == 2);
  MOCHY_CHECK(classes_[4].size() == 6);
  MOCHY_CHECK(classes_[5].size() == 21);
}

const GraphletRegistry& GraphletRegistry::Get() {
  static const GraphletRegistry registry;
  return registry;
}

int GraphletRegistry::NumClasses(int k) const {
  MOCHY_CHECK(k >= 3 && k <= 5);
  return static_cast<int>(classes_[k].size());
}

int GraphletRegistry::ClassOf(int k, uint32_t canonical_code) const {
  MOCHY_CHECK(k >= 3 && k <= 5);
  const auto& codes = classes_[k];
  const auto it =
      std::lower_bound(codes.begin(), codes.end(), canonical_code);
  if (it == codes.end() || *it != canonical_code) return -1;
  return static_cast<int>(it - codes.begin());
}

uint32_t GraphletRegistry::CodeOf(int k, int index) const {
  MOCHY_CHECK(k >= 3 && k <= 5);
  MOCHY_CHECK(index >= 0 && index < NumClasses(k));
  return classes_[k][static_cast<size_t>(index)];
}

namespace {

/// One (RAND-)ESU run for a fixed subgraph size k.
class EsuRunner {
 public:
  EsuRunner(const Graph& graph, int k, double probability, Rng rng,
            std::vector<double>* counts)
      : graph_(graph),
        k_(k),
        probability_(probability),
        rng_(rng),
        counts_(counts),
        in_closure_(graph.num_nodes(), 0) {
    weight_ = 1.0;
    for (int d = 1; d < k; ++d) weight_ /= probability_;
    sub_.reserve(k);
  }

  void Run() {
    for (uint32_t v = 0; v < graph_.num_nodes(); ++v) {
      sub_.clear();
      sub_.push_back(v);
      ++in_closure_[v];
      for (uint32_t u : graph_.neighbors(v)) ++in_closure_[u];
      std::vector<uint32_t> ext;
      for (uint32_t u : graph_.neighbors(v)) {
        if (u > v) ext.push_back(u);
      }
      Extend(ext, v);
      --in_closure_[v];
      for (uint32_t u : graph_.neighbors(v)) --in_closure_[u];
    }
  }

 private:
  void Record() {
    uint32_t mask = 0;
    for (size_t i = 0; i < sub_.size(); ++i) {
      for (size_t j = i + 1; j < sub_.size(); ++j) {
        if (graph_.HasEdge(sub_[i], sub_[j])) {
          mask |= 1u << PairBit(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
    const int cls =
        GraphletRegistry::Get().ClassOf(k_, CanonicalGraphletCode(k_, mask));
    MOCHY_DCHECK(cls >= 0) << "enumerated subgraph not connected?";
    (*counts_)[static_cast<size_t>(cls)] += weight_;
  }

  void Extend(std::vector<uint32_t>& ext, uint32_t root) {
    if (static_cast<int>(sub_.size()) == k_) {
      Record();
      return;
    }
    while (!ext.empty()) {
      const uint32_t w = ext.back();
      ext.pop_back();
      if (probability_ < 1.0 && !rng_.Bernoulli(probability_)) continue;
      // Exclusive neighborhood of w: nodes > root not already in the
      // closure (sub ∪ N(sub)).
      std::vector<uint32_t> next = ext;
      for (uint32_t u : graph_.neighbors(w)) {
        if (u > root && in_closure_[u] == 0) next.push_back(u);
      }
      sub_.push_back(w);
      ++in_closure_[w];
      for (uint32_t u : graph_.neighbors(w)) ++in_closure_[u];
      Extend(next, root);
      --in_closure_[w];
      for (uint32_t u : graph_.neighbors(w)) --in_closure_[u];
      sub_.pop_back();
    }
  }

  const Graph& graph_;
  const int k_;
  const double probability_;
  Rng rng_;
  std::vector<double>* counts_;
  std::vector<uint32_t> in_closure_;
  std::vector<uint32_t> sub_;
  double weight_;
};

}  // namespace

std::vector<double> GraphletCensus::Flatten(int min_size, int max_size) const {
  std::vector<double> out;
  for (int k = min_size; k <= max_size; ++k) {
    const auto& c = counts[k - 3];
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

Result<GraphletCensus> CountGraphlets(const Graph& graph,
                                      const GraphletCensusOptions& options) {
  if (options.min_size < 3 || options.max_size > 5 ||
      options.min_size > options.max_size) {
    return Status::InvalidArgument("graphlet sizes must satisfy 3<=min<=max<=5");
  }
  if (options.sample_probability <= 0.0 ||
      options.sample_probability > 1.0) {
    return Status::InvalidArgument("sample_probability must be in (0, 1]");
  }
  GraphletCensus census;
  const GraphletRegistry& registry = GraphletRegistry::Get();
  for (int k = 3; k <= 5; ++k) {
    census.counts[k - 3].assign(registry.NumClasses(k), 0.0);
  }
  Rng rng(options.seed);
  for (int k = options.min_size; k <= options.max_size; ++k) {
    EsuRunner runner(graph, k, options.sample_probability, rng.Fork(k),
                     &census.counts[k - 3]);
    runner.Run();
  }
  return census;
}

}  // namespace mochy
