// Characteristic profiles from *network* motifs (paper Figure 6b).
//
// The hypergraph is star-expanded into a bipartite graph; connected
// 3/4/5-node network motifs are censused (ESU) in the real graph and in
// Chung-Lu randomizations; significances are normalized exactly like the
// h-motif CP. The paper shows this baseline separates domains much more
// weakly than h-motif CPs (gap 0.069 vs 0.324).
#ifndef MOCHY_BASELINE_NETWORK_CP_H_
#define MOCHY_BASELINE_NETWORK_CP_H_

#include <cstdint>
#include <vector>

#include "baseline/graphlet.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

struct NetworkCpOptions {
  GraphletCensusOptions census;  ///< sizes and (optional) sampling
  int num_random_graphs = 5;
  uint64_t seed = 1;
  double epsilon = 1.0;
};

/// Normalized significance vector over all network-motif classes of the
/// configured sizes. Dimensionality is fixed by the sizes (e.g. 2+6=8 for
/// sizes 3-4), so vectors are comparable across hypergraphs.
Result<std::vector<double>> ComputeNetworkMotifCP(
    const Hypergraph& graph, const NetworkCpOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_BASELINE_NETWORK_CP_H_
