// Network-motif (graphlet) census via the ESU / RAND-ESU algorithm
// (Wernicke's FANMOD enumeration), used by the Figure 6b baseline in place
// of the paper's Motivo.
//
// A "graphlet class" is an isomorphism class of connected graphs on k
// nodes (2 classes for k=3, 6 for k=4, 21 for k=5). Class indices are
// stable: classes are sorted by canonical adjacency code, so counts are
// comparable across graphs and runs.
#ifndef MOCHY_BASELINE_GRAPHLET_H_
#define MOCHY_BASELINE_GRAPHLET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "baseline/bipartite.h"
#include "common/status.h"

namespace mochy {

/// Canonical form of a k-node graph given as an upper-triangle adjacency
/// bitmask (bit index of pair (i,j), i<j, is j*(j-1)/2 + i): the minimum
/// mask over all k! node permutations. k in [2, 5].
uint32_t CanonicalGraphletCode(int k, uint32_t mask);

/// Registry of connected graphlet classes per size.
class GraphletRegistry {
 public:
  /// Singleton; built once by exhaustive enumeration.
  static const GraphletRegistry& Get();

  /// Number of connected isomorphism classes for size k in [3, 5].
  int NumClasses(int k) const;

  /// Class index in [0, NumClasses(k)) of a *connected* canonical code;
  /// -1 for codes that are not connected classes.
  int ClassOf(int k, uint32_t canonical_code) const;

  /// Canonical code of class `index` of size k.
  uint32_t CodeOf(int k, int index) const;

 private:
  GraphletRegistry();
  std::array<std::vector<uint32_t>, 6> classes_;  // indexed by k
};

struct GraphletCensusOptions {
  int min_size = 3;
  int max_size = 4;  ///< up to 5; exact 5-node census can be expensive
  /// RAND-ESU exploration probability per tree depth; 1.0 = exact ESU.
  /// The census is rescaled to unbiased estimates when < 1.0.
  double sample_probability = 1.0;
  uint64_t seed = 1;
};

/// counts[k - 3][class] = (estimated) number of connected induced
/// subgraphs of size k in that isomorphism class.
struct GraphletCensus {
  std::array<std::vector<double>, 3> counts;  // sizes 3, 4, 5

  /// Flattens sizes [min_size, max_size] into one vector (CP input).
  std::vector<double> Flatten(int min_size, int max_size) const;
};

/// Runs (RAND-)ESU on `graph` for every size in [min_size, max_size].
Result<GraphletCensus> CountGraphlets(const Graph& graph,
                                      const GraphletCensusOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_BASELINE_GRAPHLET_H_
