// Null model: randomized hypergraphs via the bipartite Chung-Lu model
// (paper Section 2.3, following Aksoy et al.).
//
// The hypergraph is viewed as a bipartite node-hyperedge incidence graph.
// A randomized counterpart keeps every hyperedge's size exactly and draws
// its members independently with probability proportional to node degree,
// so the node-degree distribution is preserved in expectation. Comparing
// motif counts of G against this null model yields the significance Δt and
// the characteristic profile.
#ifndef MOCHY_RANDOM_CHUNG_LU_H_
#define MOCHY_RANDOM_CHUNG_LU_H_

#include <cstdint>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

struct ChungLuOptions {
  uint64_t seed = 1;
  /// Remove duplicate hyperedges in the sample. The paper's datasets are
  /// deduplicated, but the null model keeps |E| fixed by default so that
  /// counts are comparable.
  bool dedup_edges = false;
};

/// Draws one randomized hypergraph with the same number of nodes, the same
/// multiset of hyperedge sizes, and (in expectation) the same node-degree
/// sequence as `graph`. Fails if `graph` has no pins, or if an edge size
/// exceeds the number of distinct positive-degree nodes.
Result<Hypergraph> GenerateChungLu(const Hypergraph& graph,
                                   const ChungLuOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_RANDOM_CHUNG_LU_H_
