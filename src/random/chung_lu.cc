#include "random/chung_lu.h"

#include <vector>

#include "common/alias_table.h"
#include "common/rng.h"
#include "hypergraph/builder.h"

namespace mochy {

Result<Hypergraph> GenerateChungLu(const Hypergraph& graph,
                                   const ChungLuOptions& options) {
  const size_t n = graph.num_nodes();
  if (graph.num_pins() == 0) {
    return Status::InvalidArgument("Chung-Lu: hypergraph has no pins");
  }
  std::vector<double> weights(n, 0.0);
  size_t positive = 0;
  for (NodeId v = 0; v < n; ++v) {
    weights[v] = static_cast<double>(graph.degree(v));
    if (weights[v] > 0.0) ++positive;
  }
  if (graph.max_edge_size() > positive) {
    return Status::FailedPrecondition(
        "Chung-Lu: an edge is larger than the number of active nodes");
  }
  MOCHY_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Build(weights));

  Rng rng(options.seed);
  HypergraphBuilder builder;
  std::vector<NodeId> members;
  std::vector<uint8_t> in_edge(n, 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const size_t target = graph.edge_size(e);
    members.clear();
    // Degree-proportional draws, rejecting within-edge repeats. If the
    // weight distribution is so skewed that rejection stalls (e.g. an edge
    // nearly as large as the support), fall back to uniform fill over the
    // remaining active nodes.
    uint64_t attempts = 0;
    const uint64_t max_attempts = 64 * target + 256;
    while (members.size() < target && attempts < max_attempts) {
      ++attempts;
      const NodeId v = static_cast<NodeId>(table.Sample(rng));
      if (in_edge[v]) continue;
      in_edge[v] = 1;
      members.push_back(v);
    }
    if (members.size() < target) {
      for (NodeId v = 0; v < n && members.size() < target; ++v) {
        if (!in_edge[v] && graph.degree(v) > 0) {
          in_edge[v] = 1;
          members.push_back(v);
        }
      }
    }
    for (NodeId v : members) in_edge[v] = 0;
    builder.AddEdge(std::span<const NodeId>(members.data(), members.size()));
  }

  BuildOptions build_options;
  build_options.dedup_edges = options.dedup_edges;
  build_options.num_nodes = n;
  return std::move(builder).Build(build_options);
}

}  // namespace mochy
