/// \file
/// Profile similarity (Figure 6): Pearson correlation between
/// characteristic profiles, the full similarity matrix over datasets, and
/// the within-domain vs. across-domain separation gap.
///
/// \par Thread safety
/// Everything here is a pure function of its arguments — no global state,
/// no internal parallelism — so concurrent calls are safe and results are
/// deterministic for identical inputs.
#ifndef MOCHY_PROFILE_SIMILARITY_H_
#define MOCHY_PROFILE_SIMILARITY_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mochy {

/// Pearson correlation coefficient between two equal-length vectors.
/// Returns 0 when either vector has zero variance.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Symmetric matrix of pairwise Pearson correlations (diagonal = 1).
/// All profiles must share the same dimensionality.
Result<std::vector<std::vector<double>>> CorrelationMatrix(
    const std::vector<std::vector<double>>& profiles);

/// Within-domain vs. across-domain aggregation of a similarity matrix.
struct DomainSeparation {
  double within_mean = 0.0;   ///< mean correlation, same-domain pairs
  double across_mean = 0.0;   ///< mean correlation, cross-domain pairs
  double gap = 0.0;           ///< within_mean - across_mean
};

/// Aggregates a similarity matrix by domain labels (paper: h-motif CPs gap
/// 0.324 vs network-motif CPs gap 0.069).
Result<DomainSeparation> ComputeDomainSeparation(
    const std::vector<std::vector<double>>& matrix,
    const std::vector<std::string>& domains);

/// Nearest-centroid domain prediction from profiles (leave-one-out):
/// returns the number of correctly classified datasets. Used by the
/// domain-classification example.
size_t LeaveOneOutDomainAccuracy(
    const std::vector<std::vector<double>>& profiles,
    const std::vector<std::string>& domains);

}  // namespace mochy

#endif  // MOCHY_PROFILE_SIMILARITY_H_
