/// \file
/// Motif significance Δt (Eq. 1) and the characteristic profile CP
/// (Eq. 2), plus the Table 3 derived quantities (relative counts, rank
/// differences) and the end-to-end CP pipeline, which batch-counts the
/// real hypergraph together with its null-model randomizations on one
/// shared thread pool (motif/batch.h).
///
/// \par Thread safety
/// Every function here is a pure function of its arguments and safe to
/// call concurrently. ComputeCharacteristicProfile fans out over the
/// shared pool internally.
///
/// \par Determinism
/// For a fixed CharacteristicProfileOptions::seed the pipeline is fully
/// deterministic — the null graphs, all counts/estimates and therefore Δ,
/// CP, relative counts and rank differences are bit-identical run to run,
/// regardless of num_threads (see motif/engine.h for why counting is
/// thread-count-invariant).
#ifndef MOCHY_PROFILE_SIGNIFICANCE_H_
#define MOCHY_PROFILE_SIGNIFICANCE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "motif/batch.h"
#include "motif/counts.h"

namespace mochy {

/// 26-dimensional profile vector (index t-1 holds motif t's value).
using ProfileVector = std::array<double, kNumHMotifs>;

/// Δt = (M[t] - Mrand[t]) / (M[t] + Mrand[t] + eps), the paper's Eq. (1)
/// with eps = 1 by default.
ProfileVector ComputeSignificance(const MotifCounts& real,
                                  const MotifCounts& random_mean,
                                  double epsilon = 1.0);

/// CP_t = Δt / sqrt(Σ Δ²) — unit-normalized significance (Eq. 2). An
/// all-zero Δ maps to the all-zero CP.
ProfileVector NormalizeProfile(const ProfileVector& delta);

/// Relative count (M[t]-Mrand[t]) / (M[t]+Mrand[t]), Table 3's "RC"
/// (0 when both counts are 0).
ProfileVector RelativeCounts(const MotifCounts& real,
                             const MotifCounts& random_mean);

/// Ranks motifs by count descending: result[t-1] = rank of motif t,
/// 1 = most frequent. Ties broken by motif id.
std::array<int, kNumHMotifs> RankByCount(const MotifCounts& counts);

/// |rank difference| per motif between two count vectors (Table 3's "RD").
std::array<int, kNumHMotifs> RankDifference(const MotifCounts& real,
                                            const MotifCounts& random_mean);

/// Null model the randomized comparison graphs are drawn from.
enum class NullModel {
  /// Degree-preserving bipartite Chung-Lu randomization (paper
  /// Section 2.3) — the paper's null model and the default.
  kChungLu,
  /// Per-edge member perturbation (gen/perturb.h): each hyperedge keeps
  /// its size but a fraction of members is replaced by random nodes. A
  /// harsher null that destroys overlap structure while keeping the
  /// edge-size multiset exactly.
  kPerturb,
};

/// Knobs for the end-to-end characteristic-profile pipeline.
struct CharacteristicProfileOptions {
  /// Null-model samples averaged into Mrand (paper: 5).
  int num_random_graphs = 5;
  /// Master seed: null-graph seeds and sampling seeds derive from it.
  uint64_t seed = 1;
  /// Worker budget for the whole pipeline (real + null graphs are batched
  /// on the shared pool); 0 means DefaultThreadCount().
  size_t num_threads = 0;
  /// Eq. 1 smoothing term.
  double epsilon = 1.0;
  /// < 0 (default) means exact counting (MoCHy-E); otherwise must be
  /// positive: MoCHy-A+ with r = sample_ratio * |∧| hyperwedge samples
  /// per graph (> 1 oversamples, which is legal with replacement).
  double sample_ratio = -1.0;
  /// Which randomization the null graphs come from.
  NullModel null_model = NullModel::kChungLu;
  /// Fraction of members replaced per edge when null_model is kPerturb.
  double perturb_fraction = 0.5;
};

/// Everything the CP pipeline produces in one call.
struct CharacteristicProfile {
  /// Counts (or estimates) of the input hypergraph.
  MotifCounts real_counts;
  /// Mean counts over the null-model randomizations.
  MotifCounts random_mean;
  /// Significance Δ (Eq. 1).
  ProfileVector delta{};
  /// Normalized significance CP (Eq. 2).
  ProfileVector cp{};
  /// Table 3 "RC": relative counts real vs. null mean.
  ProfileVector relative_counts{};
  /// Table 3 "RD": |rank difference| real vs. null mean.
  std::array<int, kNumHMotifs> rank_difference{};
  /// Aggregate statistics of the underlying batch run (elapsed, busy
  /// time, pool utilization, per-item failures — always 0 here since any
  /// failure aborts the pipeline).
  BatchStats batch;
};

/// End-to-end pipeline behind Figures 1, 5 and 9 and Table 3: generates
/// `options.num_random_graphs` Chung-Lu null graphs, batch-counts them
/// together with `graph` in a single BatchRunner pass (generation and
/// projection builds overlap with counting), and derives Δ, CP, relative
/// counts and rank differences.
Result<CharacteristicProfile> ComputeCharacteristicProfile(
    const Hypergraph& graph, const CharacteristicProfileOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_PROFILE_SIGNIFICANCE_H_
