// Motif significance Δt (Eq. 1) and the characteristic profile CP (Eq. 2),
// plus the Table 3 derived quantities (relative counts, rank differences).
#ifndef MOCHY_PROFILE_SIGNIFICANCE_H_
#define MOCHY_PROFILE_SIGNIFICANCE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "motif/counts.h"

namespace mochy {

/// 26-dimensional profile vector (index t-1 holds motif t's value).
using ProfileVector = std::array<double, kNumHMotifs>;

/// Δt = (M[t] - Mrand[t]) / (M[t] + Mrand[t] + eps), the paper's Eq. (1)
/// with eps = 1 by default.
ProfileVector ComputeSignificance(const MotifCounts& real,
                                  const MotifCounts& random_mean,
                                  double epsilon = 1.0);

/// CP_t = Δt / sqrt(Σ Δ²) — unit-normalized significance (Eq. 2). An
/// all-zero Δ maps to the all-zero CP.
ProfileVector NormalizeProfile(const ProfileVector& delta);

/// Relative count (M[t]-Mrand[t]) / (M[t]+Mrand[t]), Table 3's "RC"
/// (0 when both counts are 0).
ProfileVector RelativeCounts(const MotifCounts& real,
                             const MotifCounts& random_mean);

/// Ranks motifs by count descending: result[t-1] = rank of motif t,
/// 1 = most frequent. Ties broken by motif id.
std::array<int, kNumHMotifs> RankByCount(const MotifCounts& counts);

/// |rank difference| per motif between two count vectors (Table 3's "RD").
std::array<int, kNumHMotifs> RankDifference(const MotifCounts& real,
                                            const MotifCounts& random_mean);

struct CharacteristicProfileOptions {
  int num_random_graphs = 5;     ///< null-model samples averaged (paper: 5)
  uint64_t seed = 1;
  size_t num_threads = 1;
  double epsilon = 1.0;
  /// < 0 means exact counting (MoCHy-E); otherwise MoCHy-A+ with
  /// r = sample_ratio * |∧| wedge samples.
  double sample_ratio = -1.0;
};

struct CharacteristicProfile {
  MotifCounts real_counts;
  MotifCounts random_mean;
  ProfileVector delta;  ///< significance
  ProfileVector cp;     ///< normalized significance
};

/// End-to-end pipeline: count motifs in `graph` and in
/// `options.num_random_graphs` Chung-Lu randomizations, then compute Δ and
/// CP. This is the computation behind Figures 1, 5 and 9.
Result<CharacteristicProfile> ComputeCharacteristicProfile(
    const Hypergraph& graph, const CharacteristicProfileOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_PROFILE_SIGNIFICANCE_H_
