#include "profile/significance.h"

#include <algorithm>
#include <cmath>

#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "random/chung_lu.h"

namespace mochy {

ProfileVector ComputeSignificance(const MotifCounts& real,
                                  const MotifCounts& random_mean,
                                  double epsilon) {
  ProfileVector delta{};
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double m = real[t];
    const double mr = random_mean[t];
    delta[t - 1] = (m - mr) / (m + mr + epsilon);
  }
  return delta;
}

ProfileVector NormalizeProfile(const ProfileVector& delta) {
  double sum_sq = 0.0;
  for (double d : delta) sum_sq += d * d;
  ProfileVector cp{};
  if (sum_sq <= 0.0) return cp;
  const double norm = std::sqrt(sum_sq);
  for (int i = 0; i < kNumHMotifs; ++i) cp[i] = delta[i] / norm;
  return cp;
}

ProfileVector RelativeCounts(const MotifCounts& real,
                             const MotifCounts& random_mean) {
  ProfileVector rc{};
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double m = real[t];
    const double mr = random_mean[t];
    rc[t - 1] = (m + mr) == 0.0 ? 0.0 : (m - mr) / (m + mr);
  }
  return rc;
}

std::array<int, kNumHMotifs> RankByCount(const MotifCounts& counts) {
  std::array<int, kNumHMotifs> order{};
  for (int i = 0; i < kNumHMotifs; ++i) order[i] = i + 1;
  std::stable_sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    if (counts[lhs] != counts[rhs]) return counts[lhs] > counts[rhs];
    return lhs < rhs;
  });
  std::array<int, kNumHMotifs> rank{};
  for (int pos = 0; pos < kNumHMotifs; ++pos) rank[order[pos] - 1] = pos + 1;
  return rank;
}

std::array<int, kNumHMotifs> RankDifference(const MotifCounts& real,
                                            const MotifCounts& random_mean) {
  const auto real_rank = RankByCount(real);
  const auto rand_rank = RankByCount(random_mean);
  std::array<int, kNumHMotifs> diff{};
  for (int i = 0; i < kNumHMotifs; ++i) {
    diff[i] = std::abs(real_rank[i] - rand_rank[i]);
  }
  return diff;
}

Result<CharacteristicProfile> ComputeCharacteristicProfile(
    const Hypergraph& graph, const CharacteristicProfileOptions& options) {
  if (options.num_random_graphs <= 0) {
    return Status::InvalidArgument("need at least one random graph");
  }
  CharacteristicProfile out;

  auto count = [&](const Hypergraph& g) -> Result<MotifCounts> {
    auto projection = ProjectedGraph::Build(g, options.num_threads);
    if (!projection.ok()) return projection.status();
    if (options.sample_ratio < 0.0) {
      return CountMotifsExact(g, projection.value(), options.num_threads);
    }
    MochyAPlusOptions approx;
    approx.num_samples = std::max<uint64_t>(
        1, static_cast<uint64_t>(options.sample_ratio *
                                 static_cast<double>(
                                     projection.value().num_wedges())));
    approx.seed = options.seed ^ 0x5bd1e995u;
    approx.num_threads = options.num_threads;
    return CountMotifsWedgeSample(g, projection.value(), approx);
  };

  MOCHY_ASSIGN_OR_RETURN(out.real_counts, count(graph));

  std::vector<MotifCounts> random_counts;
  random_counts.reserve(options.num_random_graphs);
  for (int i = 0; i < options.num_random_graphs; ++i) {
    ChungLuOptions cl;
    cl.seed = options.seed + 0x9e3779b9u * static_cast<uint64_t>(i + 1);
    MOCHY_ASSIGN_OR_RETURN(Hypergraph random_graph,
                           GenerateChungLu(graph, cl));
    MOCHY_ASSIGN_OR_RETURN(MotifCounts counts, count(random_graph));
    random_counts.push_back(counts);
  }
  out.random_mean = MotifCounts::Mean(random_counts);
  out.delta =
      ComputeSignificance(out.real_counts, out.random_mean, options.epsilon);
  out.cp = NormalizeProfile(out.delta);
  return out;
}

}  // namespace mochy
