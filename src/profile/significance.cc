#include "profile/significance.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "gen/perturb.h"
#include "hypergraph/builder.h"
#include "motif/batch.h"
#include "random/chung_lu.h"

namespace mochy {

ProfileVector ComputeSignificance(const MotifCounts& real,
                                  const MotifCounts& random_mean,
                                  double epsilon) {
  ProfileVector delta{};
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double m = real[t];
    const double mr = random_mean[t];
    delta[t - 1] = (m - mr) / (m + mr + epsilon);
  }
  return delta;
}

ProfileVector NormalizeProfile(const ProfileVector& delta) {
  double sum_sq = 0.0;
  for (double d : delta) sum_sq += d * d;
  ProfileVector cp{};
  if (sum_sq <= 0.0) return cp;
  const double norm = std::sqrt(sum_sq);
  for (int i = 0; i < kNumHMotifs; ++i) cp[i] = delta[i] / norm;
  return cp;
}

ProfileVector RelativeCounts(const MotifCounts& real,
                             const MotifCounts& random_mean) {
  ProfileVector rc{};
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double m = real[t];
    const double mr = random_mean[t];
    rc[t - 1] = (m + mr) == 0.0 ? 0.0 : (m - mr) / (m + mr);
  }
  return rc;
}

std::array<int, kNumHMotifs> RankByCount(const MotifCounts& counts) {
  std::array<int, kNumHMotifs> order{};
  for (int i = 0; i < kNumHMotifs; ++i) order[i] = i + 1;
  std::stable_sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    if (counts[lhs] != counts[rhs]) return counts[lhs] > counts[rhs];
    return lhs < rhs;
  });
  std::array<int, kNumHMotifs> rank{};
  for (int pos = 0; pos < kNumHMotifs; ++pos) rank[order[pos] - 1] = pos + 1;
  return rank;
}

std::array<int, kNumHMotifs> RankDifference(const MotifCounts& real,
                                            const MotifCounts& random_mean) {
  const auto real_rank = RankByCount(real);
  const auto rand_rank = RankByCount(random_mean);
  std::array<int, kNumHMotifs> diff{};
  for (int i = 0; i < kNumHMotifs; ++i) {
    diff[i] = std::abs(real_rank[i] - rand_rank[i]);
  }
  return diff;
}

Result<CharacteristicProfile> ComputeCharacteristicProfile(
    const Hypergraph& graph, const CharacteristicProfileOptions& options) {
  if (options.num_random_graphs <= 0) {
    return Status::InvalidArgument("need at least one random graph");
  }

  // The same counting options for every graph in the batch. The seed
  // derivations match the pre-batch pipeline, so profiles stay
  // reproducible across versions.
  EngineOptions count_options;
  if (options.sample_ratio < 0.0) {
    count_options.algorithm = Algorithm::kExact;
  } else {
    count_options.algorithm = Algorithm::kLinkSample;
    count_options.sampling_ratio = options.sample_ratio;
    count_options.seed = options.seed ^ 0x5bd1e995u;
  }

  BatchOptions batch_options;
  batch_options.num_threads = options.num_threads;
  BatchRunner runner(batch_options);
  runner.Add(graph, count_options, "real");
  for (int i = 0; i < options.num_random_graphs; ++i) {
    const uint64_t null_seed =
        options.seed + 0x9e3779b9u * static_cast<uint64_t>(i + 1);
    std::function<Result<Hypergraph>()> make;
    if (options.null_model == NullModel::kChungLu) {
      ChungLuOptions cl;
      cl.seed = null_seed;
      make = [&graph, cl]() { return GenerateChungLu(graph, cl); };
    } else {
      PerturbOptions perturb;
      perturb.seed = null_seed;
      perturb.replace_fraction = options.perturb_fraction;
      make = [&graph, perturb]() -> Result<Hypergraph> {
        MOCHY_ASSIGN_OR_RETURN(std::vector<std::vector<NodeId>> edges,
                               MakeFakeHyperedges(graph, perturb));
        BuildOptions build;
        build.dedup_edges = false;  // keep |E| fixed, like the Chung-Lu null
        build.num_nodes = graph.num_nodes();
        return MakeHypergraph(edges, build);
      };
    }
    runner.AddGenerated(std::move(make), count_options,
                        "null-" + std::to_string(i));
  }

  const BatchResult batch = runner.Run();
  MOCHY_RETURN_IF_ERROR(batch.first_error());

  CharacteristicProfile out;
  out.real_counts = batch.items[0].counts;
  std::vector<MotifCounts> random_counts;
  random_counts.reserve(options.num_random_graphs);
  for (size_t i = 1; i < batch.items.size(); ++i) {
    random_counts.push_back(batch.items[i].counts);
  }
  out.random_mean = MotifCounts::Mean(random_counts);
  out.delta =
      ComputeSignificance(out.real_counts, out.random_mean, options.epsilon);
  out.cp = NormalizeProfile(out.delta);
  out.relative_counts = RelativeCounts(out.real_counts, out.random_mean);
  out.rank_difference = RankDifference(out.real_counts, out.random_mean);
  out.batch = batch.stats;
  return out;
}

}  // namespace mochy
