#include "profile/similarity.h"

#include <cmath>
#include <limits>

namespace mochy {

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

Result<std::vector<std::vector<double>>> CorrelationMatrix(
    const std::vector<std::vector<double>>& profiles) {
  const size_t n = profiles.size();
  for (const auto& p : profiles) {
    if (p.size() != profiles.front().size()) {
      return Status::InvalidArgument("profiles have mixed dimensionality");
    }
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 1.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double c = PearsonCorrelation(profiles[i], profiles[j]);
      matrix[i][j] = c;
      matrix[j][i] = c;
    }
  }
  return matrix;
}

Result<DomainSeparation> ComputeDomainSeparation(
    const std::vector<std::vector<double>>& matrix,
    const std::vector<std::string>& domains) {
  if (matrix.size() != domains.size()) {
    return Status::InvalidArgument("matrix size does not match labels");
  }
  double within_sum = 0.0, across_sum = 0.0;
  size_t within_count = 0, across_count = 0;
  for (size_t i = 0; i < matrix.size(); ++i) {
    if (matrix[i].size() != matrix.size()) {
      return Status::InvalidArgument("matrix is not square");
    }
    for (size_t j = i + 1; j < matrix.size(); ++j) {
      if (domains[i] == domains[j]) {
        within_sum += matrix[i][j];
        ++within_count;
      } else {
        across_sum += matrix[i][j];
        ++across_count;
      }
    }
  }
  DomainSeparation out;
  out.within_mean = within_count == 0 ? 0.0 : within_sum / within_count;
  out.across_mean = across_count == 0 ? 0.0 : across_sum / across_count;
  out.gap = out.within_mean - out.across_mean;
  return out;
}

size_t LeaveOneOutDomainAccuracy(
    const std::vector<std::vector<double>>& profiles,
    const std::vector<std::string>& domains) {
  size_t correct = 0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    // Nearest other profile's domain (1-NN with Pearson similarity).
    double best = -std::numeric_limits<double>::infinity();
    size_t best_j = i;
    for (size_t j = 0; j < profiles.size(); ++j) {
      if (j == i) continue;
      const double c = PearsonCorrelation(profiles[i], profiles[j]);
      if (c > best) {
        best = c;
        best_j = j;
      }
    }
    if (best_j != i && domains[best_j] == domains[i]) ++correct;
  }
  return correct;
}

}  // namespace mochy
