#include "hypergraph/hypergraph.h"

#include <algorithm>

#include "common/logging.h"

namespace mochy {

bool Hypergraph::EdgeContains(EdgeId e, NodeId v) const {
  const auto span = edge(e);
  return std::binary_search(span.begin(), span.end(), v);
}

size_t Hypergraph::max_edge_size() const {
  size_t best = 0;
  for (size_t e = 0; e + 1 < edge_offsets_.size(); ++e) {
    best = std::max<size_t>(best, edge_offsets_[e + 1] - edge_offsets_[e]);
  }
  return best;
}

size_t SortedIntersectionSize(std::span<const NodeId> a,
                              std::span<const NodeId> b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t Hypergraph::IntersectionSize(EdgeId a, EdgeId b) const {
  return SortedIntersectionSize(edge(a), edge(b));
}

size_t Hypergraph::TripleIntersectionSize(EdgeId a, EdgeId b, EdgeId c) const {
  // Scan the smallest edge, test membership in the two others.
  const size_t sa = edge_size(a), sb = edge_size(b), sc = edge_size(c);
  EdgeId small, other1, other2;
  if (sa <= sb && sa <= sc) {
    small = a;
    other1 = b;
    other2 = c;
  } else if (sb <= sc) {
    small = b;
    other1 = a;
    other2 = c;
  } else {
    small = c;
    other1 = a;
    other2 = b;
  }
  size_t count = 0;
  for (NodeId v : edge(small)) {
    if (EdgeContains(other1, v) && EdgeContains(other2, v)) ++count;
  }
  return count;
}

Hypergraph AssembleHypergraphFromCsr(size_t num_nodes,
                                     std::vector<uint64_t> edge_offsets,
                                     std::vector<NodeId> edge_nodes,
                                     std::vector<uint64_t> node_offsets,
                                     std::vector<EdgeId> node_edges) {
  Hypergraph graph;
  graph.num_nodes_ = num_nodes;
  graph.edge_offsets_ = std::move(edge_offsets);
  graph.edge_nodes_ = std::move(edge_nodes);
  graph.node_offsets_ = std::move(node_offsets);
  graph.node_edges_ = std::move(node_edges);
  return graph;
}

Status Hypergraph::Validate() const {
  if (edge_offsets_.empty() || edge_offsets_.front() != 0 ||
      edge_offsets_.back() != edge_nodes_.size()) {
    return Status::Internal("edge offsets inconsistent with node array");
  }
  if (node_offsets_.size() != num_nodes_ + 1 || node_offsets_.front() != 0 ||
      node_offsets_.back() != node_edges_.size()) {
    return Status::Internal("node offsets inconsistent with edge array");
  }
  for (size_t e = 0; e + 1 < edge_offsets_.size(); ++e) {
    if (edge_offsets_[e] > edge_offsets_[e + 1]) {
      return Status::Internal("edge offsets not monotone");
    }
    const auto span = edge(static_cast<EdgeId>(e));
    if (span.empty()) return Status::Internal("empty hyperedge");
    for (size_t i = 0; i < span.size(); ++i) {
      if (span[i] >= num_nodes_) {
        return Status::Internal("node id out of range in edge");
      }
      if (i > 0 && span[i - 1] >= span[i]) {
        return Status::Internal("edge members not strictly sorted");
      }
    }
  }
  uint64_t pins_from_nodes = 0;
  for (size_t v = 0; v < num_nodes_; ++v) {
    const auto span = edges_of(static_cast<NodeId>(v));
    pins_from_nodes += span.size();
    for (size_t i = 0; i < span.size(); ++i) {
      if (span[i] >= num_edges()) {
        return Status::Internal("edge id out of range in incidence");
      }
      if (i > 0 && span[i - 1] >= span[i]) {
        return Status::Internal("incidence list not strictly sorted");
      }
      if (!EdgeContains(span[i], static_cast<NodeId>(v))) {
        return Status::Internal("incidence lists disagree with edges");
      }
    }
  }
  if (pins_from_nodes != num_pins()) {
    return Status::Internal("pin counts disagree between directions");
  }
  return Status::OK();
}

}  // namespace mochy
