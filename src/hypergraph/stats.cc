#include "hypergraph/stats.h"

#include <algorithm>
#include <cstdio>

#include "hypergraph/projection.h"

namespace mochy {

DatasetStats ComputeStats(const Hypergraph& graph, size_t num_threads) {
  DatasetStats s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  s.num_pins = graph.num_pins();
  s.max_edge_size = graph.max_edge_size();
  s.mean_edge_size =
      s.num_edges == 0
          ? 0.0
          : static_cast<double>(s.num_pins) / static_cast<double>(s.num_edges);
  uint64_t active_nodes = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint64_t d = graph.degree(v);
    s.max_degree = std::max(s.max_degree, d);
    if (d > 0) ++active_nodes;
  }
  s.mean_degree = active_nodes == 0 ? 0.0
                                    : static_cast<double>(s.num_pins) /
                                          static_cast<double>(active_nodes);
  s.num_wedges = ComputeProjectedDegrees(graph, num_threads).num_wedges;
  return s;
}

std::vector<uint64_t> DegreeHistogram(const Hypergraph& graph) {
  uint64_t max_degree = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    max_degree = std::max<uint64_t>(max_degree, graph.degree(v));
  }
  std::vector<uint64_t> hist(max_degree + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) ++hist[graph.degree(v)];
  return hist;
}

std::vector<uint64_t> EdgeSizeHistogram(const Hypergraph& graph) {
  std::vector<uint64_t> hist(graph.max_edge_size() + 1, 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) ++hist[graph.edge_size(e)];
  return hist;
}

std::string FormatStatsRow(const std::string& name, const DatasetStats& s) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%-18s %9llu %9llu %5llu %6.2f %12llu %9llu",
                name.c_str(), static_cast<unsigned long long>(s.num_nodes),
                static_cast<unsigned long long>(s.num_edges),
                static_cast<unsigned long long>(s.max_edge_size),
                s.mean_edge_size,
                static_cast<unsigned long long>(s.num_wedges),
                static_cast<unsigned long long>(s.max_degree));
  return buffer;
}

}  // namespace mochy
