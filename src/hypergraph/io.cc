#include "hypergraph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace mochy {

namespace {

bool IsSeparator(char c) {
  return c == ' ' || c == ',' || c == '\t' || c == '\r';
}

}  // namespace

Status ForEachUintLine(
    const std::string& text,
    const std::function<Status(size_t line_no,
                               std::span<const uint64_t> fields)>& fn) {
  std::vector<uint64_t> fields;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t end = text.find('\n', pos);
    const size_t line_end = end == std::string::npos ? text.size() : end;
    ++line_no;
    size_t i = pos;
    pos = line_end + 1;
    // Skip leading whitespace; ignore comments and blank lines.
    while (i < line_end && IsSeparator(text[i])) ++i;
    if (i >= line_end || text[i] == '#' || text[i] == '%') {
      if (end == std::string::npos) break;
      continue;
    }
    fields.clear();
    while (i < line_end) {
      if (IsSeparator(text[i])) {
        ++i;
        continue;
      }
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected a non-negative integer");
      }
      uint64_t value = 0;
      while (i < line_end && std::isdigit(static_cast<unsigned char>(text[i]))) {
        const uint64_t digit = static_cast<uint64_t>(text[i] - '0');
        if (value > (~uint64_t{0} - digit) / 10) {
          return Status::OutOfRange("line " + std::to_string(line_no) +
                                    ": integer too large");
        }
        value = value * 10 + digit;
        ++i;
      }
      fields.push_back(value);
    }
    if (Status s = fn(line_no, fields); !s.ok()) return s;
    if (end == std::string::npos) break;
  }
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return buffer.str();
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Hypergraph> ParseHypergraph(const std::string& text,
                                   const BuildOptions& options) {
  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  Status parsed = ForEachUintLine(
      text, [&](size_t line_no, std::span<const uint64_t> fields) {
        edge.clear();
        for (const uint64_t value : fields) {
          if (value > kInvalidNode - 1) {
            return Status::OutOfRange("line " + std::to_string(line_no) +
                                      ": node id too large");
          }
          edge.push_back(static_cast<NodeId>(value));
        }
        if (!edge.empty()) {
          builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
        }
        return Status::OK();
      });
  if (!parsed.ok()) return parsed;
  return std::move(builder).Build(options);
}

Result<Hypergraph> LoadHypergraph(const std::string& path,
                                  const BuildOptions& options) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return text.status();
  return ParseHypergraph(text.value(), options);
}

std::string FormatHypergraph(const Hypergraph& graph) {
  std::string out;
  out.reserve(graph.num_pins() * 7);
  char scratch[16];
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    bool first = true;
    for (NodeId v : graph.edge(e)) {
      if (!first) out.push_back(' ');
      first = false;
      const int len = std::snprintf(scratch, sizeof(scratch), "%u", v);
      out.append(scratch, static_cast<size_t>(len));
    }
    out.push_back('\n');
  }
  return out;
}

Status SaveHypergraph(const Hypergraph& graph, const std::string& path) {
  return WriteTextFile(path, FormatHypergraph(graph));
}

}  // namespace mochy
