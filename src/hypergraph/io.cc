#include "hypergraph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mochy {

namespace {

bool IsSeparator(char c) {
  return c == ' ' || c == ',' || c == '\t' || c == '\r';
}

}  // namespace

Result<Hypergraph> ParseHypergraph(const std::string& text,
                                   const BuildOptions& options) {
  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t end = text.find('\n', pos);
    const size_t line_end = end == std::string::npos ? text.size() : end;
    ++line_no;
    size_t i = pos;
    pos = line_end + 1;
    // Skip leading whitespace; ignore comments and blank lines.
    while (i < line_end && IsSeparator(text[i])) ++i;
    if (i >= line_end || text[i] == '#' || text[i] == '%') {
      if (end == std::string::npos) break;
      continue;
    }
    edge.clear();
    while (i < line_end) {
      if (IsSeparator(text[i])) {
        ++i;
        continue;
      }
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected a non-negative integer");
      }
      uint64_t value = 0;
      while (i < line_end && std::isdigit(static_cast<unsigned char>(text[i]))) {
        value = value * 10 + static_cast<uint64_t>(text[i] - '0');
        if (value > kInvalidNode - 1) {
          return Status::OutOfRange("line " + std::to_string(line_no) +
                                    ": node id too large");
        }
        ++i;
      }
      edge.push_back(static_cast<NodeId>(value));
    }
    if (!edge.empty()) {
      builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
    }
    if (end == std::string::npos) break;
  }
  return std::move(builder).Build(options);
}

Result<Hypergraph> LoadHypergraph(const std::string& path,
                                  const BuildOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return ParseHypergraph(buffer.str(), options);
}

std::string FormatHypergraph(const Hypergraph& graph) {
  std::string out;
  out.reserve(graph.num_pins() * 7);
  char scratch[16];
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    bool first = true;
    for (NodeId v : graph.edge(e)) {
      if (!first) out.push_back(' ');
      first = false;
      const int len = std::snprintf(scratch, sizeof(scratch), "%u", v);
      out.append(scratch, static_cast<size_t>(len));
    }
    out.push_back('\n');
  }
  return out;
}

Status SaveHypergraph(const Hypergraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const std::string text = FormatHypergraph(graph);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace mochy
