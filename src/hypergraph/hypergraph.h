// Immutable hypergraph G = (V, E) in compressed sparse row form.
//
// Two incidence directions are stored: hyperedge -> member nodes (each edge
// span sorted ascending) and node -> incident hyperedges (sorted ascending).
// Both are needed by the paper's algorithms: Algorithm 1 walks node ->
// edges to build the projected graph, Lemma 2 membership-tests nodes
// against sorted edge spans.
#ifndef MOCHY_HYPERGRAPH_HYPERGRAPH_H_
#define MOCHY_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "hypergraph/types.h"

namespace mochy {

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Number of nodes |V| (ids are dense, isolated nodes allowed).
  size_t num_nodes() const { return num_nodes_; }

  /// Number of hyperedges |E|.
  size_t num_edges() const { return edge_offsets_.size() - 1; }

  /// Members of hyperedge `e`, sorted ascending.
  std::span<const NodeId> edge(EdgeId e) const {
    return {edge_nodes_.data() + edge_offsets_[e],
            edge_nodes_.data() + edge_offsets_[e + 1]};
  }

  /// |e| — the number of nodes in hyperedge `e`.
  size_t edge_size(EdgeId e) const {
    return edge_offsets_[e + 1] - edge_offsets_[e];
  }

  /// E_v — hyperedges containing node `v`, sorted ascending.
  std::span<const EdgeId> edges_of(NodeId v) const {
    return {node_edges_.data() + node_offsets_[v],
            node_edges_.data() + node_offsets_[v + 1]};
  }

  /// |E_v| — the degree of node `v`.
  size_t degree(NodeId v) const {
    return node_offsets_[v + 1] - node_offsets_[v];
  }

  /// Whether hyperedge `e` contains node `v` (binary search, O(log |e|)).
  bool EdgeContains(EdgeId e, NodeId v) const;

  /// Sum of hyperedge sizes (the number of (node, edge) incidences).
  uint64_t num_pins() const { return edge_nodes_.size(); }

  /// Size of the largest hyperedge; 0 for an empty hypergraph.
  size_t max_edge_size() const;

  /// |e_a ∩ e_b| via sorted two-pointer merge.
  size_t IntersectionSize(EdgeId a, EdgeId b) const;

  /// |e_a ∩ e_b ∩ e_c|: scans the smallest of the three edges and
  /// membership-tests the other two (Lemma 2 of the paper).
  size_t TripleIntersectionSize(EdgeId a, EdgeId b, EdgeId c) const;

  /// Whether two hyperedges are adjacent (share at least one node).
  bool Adjacent(EdgeId a, EdgeId b) const {
    return IntersectionSize(a, b) > 0;
  }

  /// Validates internal consistency (sortedness, offsets, id ranges);
  /// intended for tests and loaders, not hot paths.
  Status Validate() const;

 private:
  friend class HypergraphBuilder;
  friend Hypergraph AssembleHypergraphFromCsr(size_t num_nodes,
                                              std::vector<uint64_t> edge_offsets,
                                              std::vector<NodeId> edge_nodes,
                                              std::vector<uint64_t> node_offsets,
                                              std::vector<EdgeId> node_edges);

  size_t num_nodes_ = 0;
  std::vector<uint64_t> edge_offsets_ = {0};
  std::vector<NodeId> edge_nodes_;
  std::vector<uint64_t> node_offsets_ = {0};
  std::vector<EdgeId> node_edges_;
};

/// Assembles a Hypergraph directly from prebuilt CSR arrays, bypassing
/// HypergraphBuilder's sort/dedup passes. This is the loader-side twin of
/// the builder, used by the binary container (hypergraph/binary_format.h)
/// whose sections are the four arrays verbatim. The caller owns the
/// invariants (sorted spans, monotone offsets, matching incidence
/// directions); run Validate() on anything read from untrusted bytes.
Hypergraph AssembleHypergraphFromCsr(size_t num_nodes,
                                     std::vector<uint64_t> edge_offsets,
                                     std::vector<NodeId> edge_nodes,
                                     std::vector<uint64_t> node_offsets,
                                     std::vector<EdgeId> node_edges);

/// Size of the intersection of two sorted id spans.
size_t SortedIntersectionSize(std::span<const NodeId> a,
                              std::span<const NodeId> b);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_HYPERGRAPH_H_
