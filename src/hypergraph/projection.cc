#include "hypergraph/projection.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"

namespace mochy {

namespace {

/// Reusable scratch for accumulating one hyperedge's neighborhood: a dense
/// counter array over edge ids plus the list of touched slots, so clearing
/// costs O(#neighbors) rather than O(|E|).
class NeighborhoodScratch {
 public:
  explicit NeighborhoodScratch(size_t num_edges) : count_(num_edges, 0) {
    touched_.reserve(256);
  }

  /// Computes the weighted neighborhood of `e` into `out` (sorted by id).
  void Compute(const Hypergraph& graph, EdgeId e,
               std::vector<Neighbor>* out) {
    for (NodeId v : graph.edge(e)) {
      for (EdgeId other : graph.edges_of(v)) {
        if (other == e) continue;
        if (count_[other] == 0) touched_.push_back(other);
        ++count_[other];
      }
    }
    std::sort(touched_.begin(), touched_.end());
    out->clear();
    out->reserve(touched_.size());
    for (EdgeId other : touched_) {
      out->push_back(Neighbor{other, count_[other]});
      count_[other] = 0;
    }
    touched_.clear();
  }

 private:
  std::vector<uint32_t> count_;
  std::vector<EdgeId> touched_;
};

}  // namespace

Result<ProjectedGraph> ProjectedGraph::Build(const Hypergraph& graph,
                                             size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  const size_t m = graph.num_edges();
  ProjectedGraph out;
  out.offsets_.assign(m + 1, 0);
  out.suffix_start_.assign(m, 0);
  out.wedge_offsets_.assign(m + 1, 0);

  // Per-edge neighbor lists, computed in parallel blocks.
  std::vector<std::vector<Neighbor>> lists(m);
  ParallelBlocks(m, num_threads,
                 [&](size_t /*thread*/, size_t begin, size_t end) {
                   NeighborhoodScratch scratch(m);
                   for (size_t e = begin; e < end; ++e) {
                     scratch.Compute(graph, static_cast<EdgeId>(e),
                                     &lists[e]);
                   }
                 });

  // Flatten into CSR and compute wedge bookkeeping.
  uint64_t total_adj = 0;
  for (size_t e = 0; e < m; ++e) total_adj += lists[e].size();
  out.adj_.reserve(total_adj);
  uint64_t wedges = 0;
  uint64_t total_weight = 0;
  for (size_t e = 0; e < m; ++e) {
    const auto& list = lists[e];
    // First neighbor with id > e: neighbors are sorted, so a suffix.
    size_t suffix = list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].edge > e) {
        suffix = i;
        break;
      }
    }
    out.suffix_start_[e] = static_cast<uint32_t>(suffix);
    const uint64_t wedges_here = list.size() - suffix;
    out.wedge_offsets_[e + 1] = out.wedge_offsets_[e] + wedges_here;
    wedges += wedges_here;
    out.adj_.insert(out.adj_.end(), list.begin(), list.end());
    out.offsets_[e + 1] = out.adj_.size();
    for (size_t i = suffix; i < list.size(); ++i) {
      total_weight += list[i].weight;
    }
    lists[e].clear();
    lists[e].shrink_to_fit();
  }
  out.num_wedges_ = wedges;
  out.total_weight_ = total_weight;

  // O(1) pair-weight probes for the MoCHy-E inner loop.
  out.weight_map_ = FlatMap64<uint32_t>(wedges);
  for (size_t e = 0; e < m; ++e) {
    const auto span = out.neighbors(static_cast<EdgeId>(e));
    for (size_t i = out.suffix_start_[e]; i < span.size(); ++i) {
      out.weight_map_.Put(PackPair(static_cast<EdgeId>(e), span[i].edge),
                          span[i].weight);
    }
  }
  return out;
}

std::pair<EdgeId, EdgeId> ProjectedGraph::WedgeAt(uint64_t k) const {
  MOCHY_DCHECK(k < num_wedges_);
  // Find the source edge via binary search over the wedge prefix sums.
  const auto it = std::upper_bound(wedge_offsets_.begin(),
                                   wedge_offsets_.end(), k);
  const size_t e = static_cast<size_t>(it - wedge_offsets_.begin()) - 1;
  const uint64_t within = k - wedge_offsets_[e];
  const auto span = neighbors(static_cast<EdgeId>(e));
  const Neighbor& n = span[suffix_start_[e] + within];
  return {static_cast<EdgeId>(e), n.edge};
}

ProjectedDegrees ComputeProjectedDegrees(const Hypergraph& graph,
                                         size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  const size_t m = graph.num_edges();
  ProjectedDegrees result;
  result.degree.assign(m, 0);
  std::vector<uint64_t> wedges_here(m, 0);
  ParallelBlocks(
      m, num_threads, [&](size_t /*thread*/, size_t begin, size_t end) {
        std::vector<uint32_t> stamp(m, 0);
        std::vector<EdgeId> touched;
        for (size_t e = begin; e < end; ++e) {
          for (NodeId v : graph.edge(static_cast<EdgeId>(e))) {
            for (EdgeId other : graph.edges_of(v)) {
              if (other == e || stamp[other] != 0) continue;
              stamp[other] = 1;
              touched.push_back(other);
            }
          }
          result.degree[e] = static_cast<uint32_t>(touched.size());
          for (EdgeId other : touched) {
            if (other > e) ++wedges_here[e];
            stamp[other] = 0;
          }
          touched.clear();
        }
      });
  result.wedge_prefix.assign(m + 1, 0);
  for (size_t e = 0; e < m; ++e) {
    result.wedge_prefix[e + 1] = result.wedge_prefix[e] + wedges_here[e];
  }
  result.num_wedges = result.wedge_prefix[m];
  return result;
}

}  // namespace mochy
