#include "hypergraph/projection.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"

namespace mochy {

NeighborhoodBuilder::NeighborhoodBuilder(size_t num_edges)
    : count_(num_edges, 0) {
  touched_.reserve(256);
}

void NeighborhoodBuilder::Compute(const Hypergraph& graph, EdgeId e,
                                  std::vector<Neighbor>* out) {
  for (NodeId v : graph.edge(e)) {
    for (EdgeId other : graph.edges_of(v)) {
      if (other == e) continue;
      if (count_[other] == 0) touched_.push_back(other);
      ++count_[other];
    }
  }
  std::sort(touched_.begin(), touched_.end());
  out->clear();
  out->reserve(touched_.size());
  for (EdgeId other : touched_) {
    out->push_back(Neighbor{other, count_[other]});
    count_[other] = 0;
  }
  touched_.clear();
}

uint64_t NeighborhoodBuilder::SweepCost(const Hypergraph& graph, EdgeId e) {
  uint64_t cost = 0;
  for (NodeId v : graph.edge(e)) cost += graph.edges_of(v).size();
  return cost;
}

Result<ProjectedGraph> ProjectedGraph::Build(const Hypergraph& graph,
                                             size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  const size_t m = graph.num_edges();
  ProjectedGraph out;
  out.offsets_.assign(m + 1, 0);
  out.suffix_start_.assign(m, 0);
  out.wedge_offsets_.assign(m + 1, 0);

  // Per-edge neighbor lists, computed in parallel blocks.
  std::vector<std::vector<Neighbor>> lists(m);
  ParallelBlocks(m, num_threads,
                 [&](size_t /*thread*/, size_t begin, size_t end) {
                   NeighborhoodBuilder builder(m);
                   for (size_t e = begin; e < end; ++e) {
                     builder.Compute(graph, static_cast<EdgeId>(e),
                                     &lists[e]);
                   }
                 });

  // Flatten into CSR and compute wedge bookkeeping.
  uint64_t total_adj = 0;
  for (size_t e = 0; e < m; ++e) total_adj += lists[e].size();
  out.adj_.reserve(total_adj);
  uint64_t wedges = 0;
  uint64_t total_weight = 0;
  for (size_t e = 0; e < m; ++e) {
    const auto& list = lists[e];
    // First neighbor with id > e: neighbors are sorted, so a suffix.
    size_t suffix = list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].edge > e) {
        suffix = i;
        break;
      }
    }
    out.suffix_start_[e] = static_cast<uint32_t>(suffix);
    const uint64_t wedges_here = list.size() - suffix;
    out.wedge_offsets_[e + 1] = out.wedge_offsets_[e] + wedges_here;
    wedges += wedges_here;
    out.adj_.insert(out.adj_.end(), list.begin(), list.end());
    out.offsets_[e + 1] = out.adj_.size();
    for (size_t i = suffix; i < list.size(); ++i) {
      total_weight += list[i].weight;
    }
    lists[e].clear();
    lists[e].shrink_to_fit();
  }
  out.num_wedges_ = wedges;
  out.total_weight_ = total_weight;

  // O(1) pair-weight probes for the MoCHy-E inner loop.
  out.weight_map_ = FlatMap64<uint32_t>(wedges);
  for (size_t e = 0; e < m; ++e) {
    const auto span = out.neighbors(static_cast<EdgeId>(e));
    for (size_t i = out.suffix_start_[e]; i < span.size(); ++i) {
      out.weight_map_.Put(PackPair(static_cast<EdgeId>(e), span[i].edge),
                          span[i].weight);
    }
  }
  return out;
}

uint64_t ProjectedGraph::MemoryBytes() const {
  return offsets_.size() * sizeof(uint64_t) +
         adj_.size() * sizeof(Neighbor) +
         wedge_offsets_.size() * sizeof(uint64_t) +
         suffix_start_.size() * sizeof(uint32_t) + weight_map_.MemoryBytes();
}

std::pair<EdgeId, EdgeId> ProjectedGraph::WedgeAt(uint64_t k) const {
  MOCHY_DCHECK(k < num_wedges_);
  // Find the source edge via binary search over the wedge prefix sums.
  const auto it = std::upper_bound(wedge_offsets_.begin(),
                                   wedge_offsets_.end(), k);
  const size_t e = static_cast<size_t>(it - wedge_offsets_.begin()) - 1;
  const uint64_t within = k - wedge_offsets_[e];
  const auto span = neighbors(static_cast<EdgeId>(e));
  const Neighbor& n = span[suffix_start_[e] + within];
  return {static_cast<EdgeId>(e), n.edge};
}

ProjectedDegrees ComputeProjectedDegrees(const Hypergraph& graph,
                                         size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  const size_t m = graph.num_edges();
  ProjectedDegrees result;
  result.degree.assign(m, 0);
  std::vector<uint64_t> wedges_here(m, 0);
  ParallelBlocks(
      m, num_threads, [&](size_t /*thread*/, size_t begin, size_t end) {
        std::vector<uint32_t> stamp(m, 0);
        std::vector<EdgeId> touched;
        for (size_t e = begin; e < end; ++e) {
          for (NodeId v : graph.edge(static_cast<EdgeId>(e))) {
            for (EdgeId other : graph.edges_of(v)) {
              if (other == e || stamp[other] != 0) continue;
              stamp[other] = 1;
              touched.push_back(other);
            }
          }
          result.degree[e] = static_cast<uint32_t>(touched.size());
          for (EdgeId other : touched) {
            if (other > e) ++wedges_here[e];
            stamp[other] = 0;
          }
          touched.clear();
        }
      });
  result.wedge_prefix.assign(m + 1, 0);
  for (size_t e = 0; e < m; ++e) {
    result.wedge_prefix[e + 1] = result.wedge_prefix[e] + wedges_here[e];
  }
  result.num_wedges = result.wedge_prefix[m];
  return result;
}

uint64_t ProjectedDegrees::MemoryBytes() const {
  return degree.size() * sizeof(uint32_t) +
         wedge_prefix.size() * sizeof(uint64_t);
}

uint64_t EstimateProjectionBytes(const ProjectedDegrees& degrees) {
  const size_t m = degrees.degree.size();
  uint64_t adjacency = 0;
  for (uint32_t d : degrees.degree) adjacency += d;
  // Mirror FlatMap64's sizing: capacity is the first power of two keeping
  // the load factor <= 7/8 for |∧| entries, doubled by the constructor.
  uint64_t cap = 16;
  while (cap * 7 < degrees.num_wedges * 8) cap <<= 1;
  const uint64_t map_bytes = cap * 2 * (sizeof(uint64_t) + sizeof(uint32_t));
  return (m + 1) * sizeof(uint64_t) * 2 +  // offsets_ + wedge_offsets_
         m * sizeof(uint32_t) +            // suffix_start_
         adjacency * sizeof(Neighbor) + map_bytes;
}

}  // namespace mochy
