/// \file
/// Fully dynamic hypergraph with an incrementally maintained projection.
///
/// `Hypergraph` (hypergraph.h) is immutable CSR — the right shape for the
/// static MoCHy kernels, the wrong one for a stream of hyperedge
/// arrivals, where rebuilding both incidence directions plus the
/// projected graph per arrival costs O(graph) each time. DynamicHypergraph
/// is the streaming counterpart: an append-only edge log plus growable
/// node->edges and projection adjacency, all updated in O(Δ) per arrival
/// or removal, where Δ is the touched edge's incidence and projected
/// neighborhood — never the graph size.
///
/// \par What AddEdge maintains
/// For an arriving edge `e` with member set S (sorted, deduplicated on
/// ingest):
///  - the edge log (contiguous member pool + offsets, append-only);
///  - `edges_of(v)` for every v in S (edge ids appended in arrival order,
///    which is ascending-id order, so the lists stay sorted);
///  - the projection adjacency: N(e) with weights w(e, a) = |e ∩ a| is
///    computed by one stamped-counter sweep over the incidence lists of
///    S — O(Σ_{v∈S} |E_v|) — and `Neighbor{e, w}` is appended to each
///    neighbor's list. Since `e` carries the largest id so far, every
///    adjacency list stays sorted by edge id, the same invariant
///    ProjectedGraph::Build establishes;
///  - the wedge count |∧| and total projection weight.
///
/// \par What RemoveEdge maintains
/// Removal is the exact inverse, in O(Δ): `e` is erased from its
/// members' incidence lists and `Neighbor{e, ·}` from its projected
/// neighbors' adjacency (erasing from a sorted list preserves order, and
/// ids are never reused, so every AddEdge invariant survives). The edge
/// id is tombstoned — `is_live(e)` turns false, the id is never
/// reassigned — and the member log entry is retained, so callers may
/// still read `edge(e)` of a removed edge (the streaming engine's
/// reverse delta needs exactly that). Id space therefore grows with
/// total arrivals, not live edges; Clear() reclaims it at window
/// boundaries (see docs/STREAMING.md).
///
/// Duplicate hyperedges are retained, exactly like a static build with
/// `dedup_edges = false`: an arrival stream has no natural dedup point,
/// and the motif kernels already classify triples containing duplicates
/// to id 0.
///
/// Not thread-safe: one writer, no concurrent readers during
/// AddEdge/RemoveEdge.
#ifndef MOCHY_HYPERGRAPH_DYNAMIC_H_
#define MOCHY_HYPERGRAPH_DYNAMIC_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/scratch_arena.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "hypergraph/types.h"

namespace mochy {

class DynamicHypergraph {
 public:
  DynamicHypergraph() = default;

  /// Number of nodes: max node id seen so far + 1 (isolated ids below the
  /// max count as nodes, as in the static builder).
  size_t num_nodes() const { return node_edges_.size(); }

  /// Size of the edge-id space: hyperedges appended so far, including
  /// removed (tombstoned) ids. Valid edge ids are [0, num_edges()).
  size_t num_edges() const { return edge_offsets_.size() - 1; }

  /// Number of edges currently in the graph (appended and not removed).
  size_t num_live_edges() const { return num_live_edges_; }

  /// Whether edge id `e` is currently in the graph (false once removed).
  bool is_live(EdgeId e) const { return live_[e] != 0; }

  /// Sum of live hyperedge sizes (the number of (node, edge) incidences).
  uint64_t num_pins() const { return live_pins_; }

  /// Members of hyperedge `e`, sorted ascending, within-edge duplicates
  /// removed on ingest. Readable for removed edges too (the log entry is
  /// retained), though such an edge is no longer part of the graph.
  std::span<const NodeId> edge(EdgeId e) const {
    return {edge_nodes_.data() + edge_offsets_[e],
            edge_nodes_.data() + edge_offsets_[e + 1]};
  }

  /// |e| — the number of nodes in hyperedge `e`.
  size_t edge_size(EdgeId e) const {
    return edge_offsets_[e + 1] - edge_offsets_[e];
  }

  /// E_v — hyperedges containing node `v`, sorted ascending (arrival
  /// order is id order).
  std::span<const EdgeId> edges_of(NodeId v) const {
    return {node_edges_[v].data(), node_edges_[v].size()};
  }

  /// |E_v| — the degree of node `v`.
  size_t degree(NodeId v) const { return node_edges_[v].size(); }

  /// N(e): the projected-graph neighbors of `e` with weights
  /// w = |e ∩ ·|, sorted by edge id (same invariant as
  /// ProjectedGraph::neighbors).
  std::span<const Neighbor> neighbors(EdgeId e) const {
    return {adjacency_[e].data(), adjacency_[e].size()};
  }

  /// |N(e)| — the degree of `e` in the projected graph.
  size_t projected_degree(EdgeId e) const { return adjacency_[e].size(); }

  /// |∧| — current number of hyperwedges (unordered adjacent pairs).
  uint64_t num_wedges() const { return num_wedges_; }

  /// Σ over all wedges of w (projection total weight).
  uint64_t total_weight() const { return total_weight_; }

  /// Appends a hyperedge (any member order, within-edge duplicates OK;
  /// empty after normalization is an error) and updates every maintained
  /// structure in O(Σ_{v∈e} |E_v| + |e|). Returns the new edge's id.
  Result<EdgeId> AddEdge(std::span<const NodeId> nodes);
  /// Convenience overload of AddEdge for brace-list members.
  Result<EdgeId> AddEdge(std::initializer_list<NodeId> nodes);

  /// Removes a live hyperedge and reverses every structure AddEdge
  /// maintained, in O(Σ_{v∈e} |E_v| + Σ_{a∈N(e)} log |N(a)|): `e` leaves
  /// its members' incidence lists, `Neighbor{e, ·}` leaves each
  /// projected neighbor's adjacency, |∧| and the total weight shrink
  /// accordingly. The id is tombstoned, never reused; the member log
  /// entry stays readable. InvalidArgument for out-of-range or already
  /// removed ids.
  Status RemoveEdge(EdgeId e);

  /// Freezes the current state into an immutable CSR Hypergraph — the
  /// live edges in id (= arrival) order, bit-equal to building that edge
  /// sequence statically with `dedup_edges = false`. O(graph); meant for
  /// oracles, checkpoints and tests, not per-arrival paths.
  Result<Hypergraph> Snapshot() const;

  /// Drops all edges, nodes and counters (capacity is retained), e.g. at
  /// a tumbling-window boundary.
  void Clear();

 private:
  // Edge log in CSR form; append-only (removal only tombstones).
  std::vector<uint64_t> edge_offsets_ = {0};
  std::vector<NodeId> edge_nodes_;
  // live_[e] == 0 once RemoveEdge(e) ran; parallel to the edge log.
  std::vector<uint8_t> live_;
  size_t num_live_edges_ = 0;
  uint64_t live_pins_ = 0;
  // Growable incidence and projection adjacency (live edges only).
  std::vector<std::vector<EdgeId>> node_edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
  uint64_t num_wedges_ = 0;
  uint64_t total_weight_ = 0;
  // AddEdge scratch: stamped |e ∩ a| accumulator (O(1) logical clears)
  // and the normalized member buffer.
  StampedWeights overlap_;
  std::vector<NodeId> members_;
  std::vector<EdgeId> touched_;
};

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_DYNAMIC_H_
