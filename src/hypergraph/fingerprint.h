/// \file
/// Content fingerprint of a hypergraph, for cache keys and registries.
///
/// The serve layer (src/serve/) keys its result cache by (graph
/// fingerprint, canonicalized EngineOptions): two graphs with the same
/// fingerprint are treated as the same input, so the fingerprint must be
/// a function of the COUNTING-RELEVANT content only — the node count and
/// the exact edge multiset in storage order — and of nothing incidental
/// (load path, build timestamps, projection state).
///
/// \par Determinism
/// A pure function of the CSR content: the same graph bytes yield the
/// same fingerprint in every process, on every run. Edge order matters
/// (the engine's sampling streams are edge-id-indexed, so two edge
/// orderings are genuinely different cacheable inputs).
#ifndef MOCHY_HYPERGRAPH_FINGERPRINT_H_
#define MOCHY_HYPERGRAPH_FINGERPRINT_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"

namespace mochy {

/// 64-bit content hash over (num_nodes, num_edges, every edge span in id
/// order). O(pins) single pass; ~40ns/edge, negligible next to a
/// projection build, so callers fingerprint at load time and reuse.
uint64_t GraphFingerprint(const Hypergraph& graph);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_FINGERPRINT_H_
