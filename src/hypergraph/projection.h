/// \file
/// Projected graph of a hypergraph (paper Section 2.1, Algorithm 1).
///
/// Hyperedges become vertices; two are adjacent iff they share a node,
/// with weight omega = |e_i ∩ e_j|. Every MoCHy variant runs on this
/// structure. Both adjacency directions are materialized (neighbor lists
/// per edge, sorted by neighbor id), hyperwedges {i, j} are indexable for
/// uniform sampling (MoCHy-A+), and an open-addressing table provides the
/// O(1) pair weight probes the MoCHy-E inner loop needs.
///
/// Materializing all of this costs O(|E| + Σ_e |N_e|) memory
/// (MemoryBytes() reports it exactly, EstimateProjectionBytes() predicts
/// it from the wedge index alone); when that is too much for the machine,
/// the sampling algorithms can instead run on the budgeted lazy variant
/// in hypergraph/lazy_projection.h — see docs/MEMORY.md for the policy
/// contract.
#ifndef MOCHY_HYPERGRAPH_PROJECTION_H_
#define MOCHY_HYPERGRAPH_PROJECTION_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

/// One adjacency in the projected graph.
struct Neighbor {
  EdgeId edge;      ///< the adjacent hyperedge id
  uint32_t weight;  ///< omega = size of the pairwise intersection
};

/// Reusable scratch for computing one hyperedge's exact weighted
/// neighborhood: a dense counter over edge ids plus the touched list, so
/// clearing costs O(#neighbors), not O(|E|). This is the per-edge step of
/// ProjectedGraph::Build, and the same sweep the lazy/memoized variant
/// (hypergraph/lazy_projection.h) runs on demand. Not thread-safe; give
/// each worker its own builder.
class NeighborhoodBuilder {
 public:
  /// Sizes the counter for `num_edges` hyperedges.
  explicit NeighborhoodBuilder(size_t num_edges);

  /// Computes N(e) with weights into `out`, sorted by edge id.
  void Compute(const Hypergraph& graph, EdgeId e, std::vector<Neighbor>* out);

  /// Cost of Compute(graph, e): Σ_{v∈e} d(v) incidence entries swept.
  static uint64_t SweepCost(const Hypergraph& graph, EdgeId e);

 private:
  std::vector<uint32_t> count_;
  std::vector<EdgeId> touched_;
};

/// The materialized projected graph: CSR adjacency over hyperedges, the
/// hyperwedge index, and the O(1) pair-weight table. Immutable once
/// built; safe to share across threads.
class ProjectedGraph {
 public:
  /// An empty projection (no edges); assign a Build() result into it.
  ProjectedGraph() = default;

  /// Builds the projection of `graph` using `num_threads` workers
  /// (0 = DefaultThreadCount()).
  static Result<ProjectedGraph> Build(const Hypergraph& graph,
                                      size_t num_threads = 1);

  /// Number of vertices (= hyperedges of the source hypergraph).
  size_t num_edges() const { return offsets_.size() - 1; }

  /// N_{e}: adjacent hyperedges of `e` with weights, sorted by edge id.
  std::span<const Neighbor> neighbors(EdgeId e) const {
    return {adj_.data() + offsets_[e], adj_.data() + offsets_[e + 1]};
  }

  /// |N_e| — degree of `e` in the projected graph.
  size_t degree(EdgeId e) const { return offsets_[e + 1] - offsets_[e]; }

  /// |∧| — total number of hyperwedges (unordered adjacent pairs).
  uint64_t num_wedges() const { return num_wedges_; }

  /// omega({a, b}); 0 when the edges are not adjacent. O(1) expected.
  uint32_t Weight(EdgeId a, EdgeId b) const {
    if (a == b) return 0;
    return weight_map_.GetOr(PackPair(a, b), 0);
  }

  /// The k-th hyperwedge, k in [0, num_wedges()), as (i, j) with i < j.
  /// Wedges are ordered by (i, then j); used for uniform wedge sampling.
  std::pair<EdgeId, EdgeId> WedgeAt(uint64_t k) const;

  /// Sum over all wedges of omega (useful for Lemma 1 cost accounting and
  /// for the weighted wedge sampler).
  uint64_t total_weight() const { return total_weight_; }

  /// Heap footprint in bytes of the materialized structure (CSR adjacency,
  /// offsets, wedge index, pair-weight table). This is the number the
  /// engine's memory-bounded projection policy compares against its byte
  /// budget; see docs/MEMORY.md for the accounting model.
  uint64_t MemoryBytes() const;

 private:
  std::vector<uint64_t> offsets_ = {0};       // CSR offsets into adj_
  std::vector<Neighbor> adj_;                 // both directions
  std::vector<uint64_t> wedge_offsets_ = {0};  // prefix of #wedges (j > i)
  std::vector<uint32_t> suffix_start_;        // index in neighbors(e) of first j > e
  FlatMap64<uint32_t> weight_map_;            // PackPair(i,j) -> omega
  uint64_t num_wedges_ = 0;
  uint64_t total_weight_ = 0;
};

/// Computes only the projected-graph degree |N_e| of every hyperedge plus
/// |∧|, without materializing adjacency. Memory O(|E|); used for Table 2
/// statistics and by the on-the-fly variants. num_threads 0 means
/// DefaultThreadCount().
struct ProjectedDegrees {
  std::vector<uint32_t> degree;  ///< |N_e| per hyperedge
  uint64_t num_wedges = 0;       ///< |∧|
  /// wedge_prefix[e+1] - wedge_prefix[e] = #neighbors of e with id > e;
  /// prefix sums index the wedge set for uniform sampling without the
  /// materialized projection (on-the-fly MoCHy-A+).
  std::vector<uint64_t> wedge_prefix;

  /// Heap footprint in bytes of the wedge index itself.
  uint64_t MemoryBytes() const;
};
ProjectedDegrees ComputeProjectedDegrees(const Hypergraph& graph,
                                         size_t num_threads = 1);

/// Predicts ProjectedGraph::Build(graph).MemoryBytes() from the wedge
/// index alone, in O(1), without materializing anything: the adjacency is
/// Σ_e |N_e| entries, the pair-weight table is sized from |∧| exactly as
/// Build() sizes it. Used by the engine's kAuto projection policy to pick
/// lazy vs. materialized against a byte budget.
uint64_t EstimateProjectionBytes(const ProjectedDegrees& degrees);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_PROJECTION_H_
