// Projected graph of a hypergraph (paper Section 2.1, Algorithm 1).
//
// Hyperedges become vertices; two are adjacent iff they share a node, with
// weight omega = |e_i ∩ e_j|. Every MoCHy variant runs on this structure.
// Both adjacency directions are materialized (neighbor lists per edge,
// sorted by neighbor id), hyperwedges {i, j} are indexable for uniform
// sampling (MoCHy-A+), and an open-addressing table provides the O(1) pair
// weight probes the MoCHy-E inner loop needs.
#ifndef MOCHY_HYPERGRAPH_PROJECTION_H_
#define MOCHY_HYPERGRAPH_PROJECTION_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

/// One adjacency in the projected graph.
struct Neighbor {
  EdgeId edge;      ///< the adjacent hyperedge id
  uint32_t weight;  ///< omega = size of the pairwise intersection
};

class ProjectedGraph {
 public:
  ProjectedGraph() = default;

  /// Builds the projection of `graph` using `num_threads` workers
  /// (0 = DefaultThreadCount()).
  static Result<ProjectedGraph> Build(const Hypergraph& graph,
                                      size_t num_threads = 1);

  /// Number of vertices (= hyperedges of the source hypergraph).
  size_t num_edges() const { return offsets_.size() - 1; }

  /// N_{e}: adjacent hyperedges of `e` with weights, sorted by edge id.
  std::span<const Neighbor> neighbors(EdgeId e) const {
    return {adj_.data() + offsets_[e], adj_.data() + offsets_[e + 1]};
  }

  /// |N_e| — degree of `e` in the projected graph.
  size_t degree(EdgeId e) const { return offsets_[e + 1] - offsets_[e]; }

  /// |∧| — total number of hyperwedges (unordered adjacent pairs).
  uint64_t num_wedges() const { return num_wedges_; }

  /// omega({a, b}); 0 when the edges are not adjacent. O(1) expected.
  uint32_t Weight(EdgeId a, EdgeId b) const {
    if (a == b) return 0;
    return weight_map_.GetOr(PackPair(a, b), 0);
  }

  /// The k-th hyperwedge, k in [0, num_wedges()), as (i, j) with i < j.
  /// Wedges are ordered by (i, then j); used for uniform wedge sampling.
  std::pair<EdgeId, EdgeId> WedgeAt(uint64_t k) const;

  /// Sum over all wedges of omega (useful for Lemma 1 cost accounting and
  /// for the weighted wedge sampler).
  uint64_t total_weight() const { return total_weight_; }

 private:
  std::vector<uint64_t> offsets_ = {0};       // CSR offsets into adj_
  std::vector<Neighbor> adj_;                 // both directions
  std::vector<uint64_t> wedge_offsets_ = {0};  // prefix of #wedges (j > i)
  std::vector<uint32_t> suffix_start_;        // index in neighbors(e) of first j > e
  FlatMap64<uint32_t> weight_map_;            // PackPair(i,j) -> omega
  uint64_t num_wedges_ = 0;
  uint64_t total_weight_ = 0;
};

/// Computes only the projected-graph degree |N_e| of every hyperedge plus
/// |∧|, without materializing adjacency. Memory O(|E|); used for Table 2
/// statistics and by the on-the-fly variants. num_threads 0 means
/// DefaultThreadCount().
struct ProjectedDegrees {
  std::vector<uint32_t> degree;  ///< |N_e| per hyperedge
  uint64_t num_wedges = 0;       ///< |∧|
  /// wedge_prefix[e+1] - wedge_prefix[e] = #neighbors of e with id > e;
  /// prefix sums index the wedge set for uniform sampling without the
  /// materialized projection (on-the-fly MoCHy-A+).
  std::vector<uint64_t> wedge_prefix;
};
ProjectedDegrees ComputeProjectedDegrees(const Hypergraph& graph,
                                         size_t num_threads = 1);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_PROJECTION_H_
