// Dataset statistics (the columns of the paper's Table 2).
#ifndef MOCHY_HYPERGRAPH_STATS_H_
#define MOCHY_HYPERGRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace mochy {

struct DatasetStats {
  uint64_t num_nodes = 0;      ///< |V|
  uint64_t num_edges = 0;      ///< |E| (after duplicate removal)
  uint64_t max_edge_size = 0;  ///< max |e| over hyperedges
  double mean_edge_size = 0.0;
  uint64_t num_pins = 0;       ///< sum of |e|
  uint64_t num_wedges = 0;     ///< |∧|
  uint64_t max_degree = 0;     ///< max |E_v| over nodes
  double mean_degree = 0.0;    ///< mean |E_v| over nodes with degree > 0
};

/// Computes all Table 2 statistics; the wedge count uses `num_threads`
/// (0 = DefaultThreadCount()).
DatasetStats ComputeStats(const Hypergraph& graph, size_t num_threads = 1);

/// Node degree histogram: result[d] = #nodes with degree d.
std::vector<uint64_t> DegreeHistogram(const Hypergraph& graph);

/// Hyperedge size histogram: result[s] = #edges of size s.
std::vector<uint64_t> EdgeSizeHistogram(const Hypergraph& graph);

/// One formatted row, matching the Table 2 layout.
std::string FormatStatsRow(const std::string& name, const DatasetStats& s);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_STATS_H_
