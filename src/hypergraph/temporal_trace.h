/// \file
/// Temporal hyperedge arrival traces.
///
/// A trace is the append-only workload the streaming subsystem consumes:
/// a sequence of hyperedges, each stamped with a nondecreasing arrival
/// time. Traces are produced by the temporal generator
/// (gen/temporal.h), loaded from disk, or recorded from live traffic;
/// they are replayed by `StreamingEngine`/`ReplayTrace`
/// (motif/streaming.h).
///
/// \par Text format
/// One arrival per line: the integer timestamp followed by the member
/// node ids, separated by spaces, commas, or tabs. Lines starting with
/// '#' or '%' are comments. This is the hypergraph text format
/// (hypergraph/io.h) with a leading timestamp column, matching the
/// public temporal datasets (Benson et al., e.g. coauth-DBLP with one
/// year column).
#ifndef MOCHY_HYPERGRAPH_TEMPORAL_TRACE_H_
#define MOCHY_HYPERGRAPH_TEMPORAL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypergraph/types.h"

namespace mochy {

/// One timestamped hyperedge arrival.
struct TimedEdge {
  /// Arrival time in trace units (e.g. a year, a second, a sequence
  /// number). Only differences and window membership matter.
  uint64_t time = 0;
  /// Member nodes; order and duplicates are irrelevant (arrivals are
  /// normalized on ingest, exactly like HypergraphBuilder::AddEdge).
  std::vector<NodeId> nodes;
};

/// An append-only sequence of arrivals with nondecreasing timestamps.
struct TemporalTrace {
  /// The arrivals, in arrival order.
  std::vector<TimedEdge> arrivals;

  /// Number of arrivals in the trace.
  size_t size() const { return arrivals.size(); }
  /// Whether the trace has no arrivals.
  bool empty() const { return arrivals.empty(); }

  /// Checks that timestamps are nondecreasing and every arrival has at
  /// least one member node.
  Status Validate() const;
};

/// Parses a trace from the text format described in the file header.
Result<TemporalTrace> ParseTemporalTrace(const std::string& text);

/// Loads a trace from a file in the text format.
Result<TemporalTrace> LoadTemporalTrace(const std::string& path);

/// Serializes to the text format (timestamp then members, one arrival
/// per line).
std::string FormatTemporalTrace(const TemporalTrace& trace);

/// Writes the text format to a file.
Status SaveTemporalTrace(const TemporalTrace& trace, const std::string& path);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_TEMPORAL_TRACE_H_
