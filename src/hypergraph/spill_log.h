// Append-only spill log for evicted lazy-projection neighborhoods — the
// disk half of the two-tier memo (RAM residency + spill log; see
// docs/STORAGE.md). When the byte budget forces a neighborhood out of
// (or never into) the RAM memo, its exact bytes are appended here so the
// next touch re-admits from disk instead of recomputing the incidence
// sweep.
//
// Record layout mirrors the streaming WAL (length-prefixed, checksummed,
// little-endian):
//
//   [u32 payload_len][u32 checksum32(payload)][payload]
//   payload = "spill##<edge_id>##<count>\n" + count × {u32 edge, u32 weight}
//
// The textual delimited key makes records self-describing and greppable;
// the checksum covers the whole payload. The log is strictly
// per-engine-lifetime scratch: created truncated, unlinked on
// destruction, keyed by edge id with latest-record-wins semantics (an
// in-memory index maps edge id → file extent; superseded records are
// dead bytes, compaction is deferred à la append-friendly LSM layouts).
//
// Failure contract: a failed or torn append (fault point "spill.append")
// just loses that record; a failed or corrupt read (fault point
// "spill.read", bit rot, torn writes) returns false and the caller
// recomputes. The log can therefore never make counts wrong — only
// slower.
#ifndef MOCHY_HYPERGRAPH_SPILL_LOG_H_
#define MOCHY_HYPERGRAPH_SPILL_LOG_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypergraph/projection.h"
#include "hypergraph/types.h"

namespace mochy {

/// One shard's spill log. Append/Lookup/Invalidate mutate the in-memory
/// index and must be externally synchronized (the owning shard's mutex);
/// ReadRecord only pread()s an immutable, already-written extent and is
/// safe without the lock.
class SpillLog {
 public:
  /// Location of one record in the file.
  struct RecordRef {
    uint64_t offset = 0;
    uint32_t length = 0;  ///< full record bytes (header + payload)
  };

  /// Creates (truncating) the log file at `path`. The file is scratch:
  /// it is unlinked when the SpillLog is destroyed.
  static Result<std::unique_ptr<SpillLog>> Create(const std::string& path);

  SpillLog(const SpillLog&) = delete;
  SpillLog& operator=(const SpillLog&) = delete;
  ~SpillLog();

  /// Appends the neighborhood of `e` and indexes it (latest wins).
  /// Returns true when a new record was durably appended; false when `e`
  /// already has a live record (no duplicate work) or the write failed /
  /// was faulted (the spill is simply dropped). Fault point:
  /// "spill.append".
  bool Append(EdgeId e, std::span<const Neighbor> neighbors);

  /// Looks up the live record of `e`; fills `*ref` and returns true when
  /// one exists.
  bool Lookup(EdgeId e, RecordRef* ref) const;

  /// Drops the index entry of `e` (e.g. after a corrupt read) so a fresh
  /// record can be appended later. The dead bytes stay in the file.
  void Invalidate(EdgeId e);

  /// Reads and verifies the record at `ref`, expecting it to carry edge
  /// `expect`. On success fills `*out` with the neighborhood and returns
  /// true; any short read, checksum mismatch, or key disagreement
  /// returns false. Fault point: "spill.read".
  bool ReadRecord(const RecordRef& ref, EdgeId expect,
                  std::vector<Neighbor>* out) const;

  /// Number of live (indexed) records.
  size_t indexed_records() const { return index_.size(); }

  /// Bytes appended so far, including superseded records.
  uint64_t bytes_appended() const { return end_offset_; }

  const std::string& path() const { return path_; }

 private:
  SpillLog(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  uint64_t end_offset_ = 0;
  std::unordered_map<EdgeId, RecordRef> index_;
};

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_SPILL_LOG_H_
