// On-the-fly projected-graph computation with bounded memoization
// (paper Section 3.4, evaluated in Figure 11).
//
// Instead of materializing the full projected graph (O(|E| + |∧|) space),
// neighborhoods are computed on demand and cached within a byte budget.
// When the budget is exhausted, an eviction policy decides what to keep;
// the paper finds that prioritizing high-degree hyperedges beats LRU and
// random eviction, which we reproduce as an ablation.
//
// Whether a neighborhood is served from the memo or recomputed, it is
// always exact, so on-the-fly MoCHy-A+ has identical output distribution
// to the eager version (and identical output for the same seed).
#ifndef MOCHY_HYPERGRAPH_LAZY_PROJECTION_H_
#define MOCHY_HYPERGRAPH_LAZY_PROJECTION_H_

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"

namespace mochy {

enum class EvictionPolicy {
  kDegreePriority,  ///< keep the highest projected-degree neighborhoods
  kLru,             ///< evict the least recently used neighborhood
  kRandom,          ///< evict a uniformly random memoized neighborhood
};

struct LazyProjectionOptions {
  /// Maximum bytes of memoized neighborhoods. 0 disables memoization
  /// entirely (every access recomputes).
  uint64_t memory_budget_bytes = 0;
  EvictionPolicy policy = EvictionPolicy::kDegreePriority;
  /// Seed for the kRandom policy.
  uint64_t seed = 7;
};

class LazyProjection {
 public:
  LazyProjection(const Hypergraph& graph, const LazyProjectionOptions& options);

  /// The exact weighted neighborhood of `e`, sorted by edge id. The
  /// reference stays valid until the next Neighborhood() call (it may
  /// point into transient scratch when the entry is not memoized).
  const std::vector<Neighbor>& Neighborhood(EdgeId e);

  struct Stats {
    uint64_t computations = 0;  ///< neighborhoods computed from scratch
    uint64_t memo_hits = 0;     ///< served from the cache
    uint64_t evictions = 0;     ///< memoized entries dropped
    uint64_t bytes_used = 0;    ///< current cache footprint
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::vector<Neighbor> neighbors;
    uint64_t bytes = 0;
    // Policy bookkeeping handles.
    std::multimap<uint32_t, EdgeId>::iterator degree_it;
    std::list<EdgeId>::iterator lru_it;
    size_t random_index = 0;
  };

  void ComputeInto(EdgeId e, std::vector<Neighbor>* out);
  /// Tries to insert a freshly computed neighborhood into the memo,
  /// evicting per policy. May decline (degree policy declines to evict
  /// higher-degree entries for a lower-degree newcomer).
  void MaybeMemoize(EdgeId e, std::vector<Neighbor>&& neighbors);
  void Evict(EdgeId victim);

  static uint64_t EntryBytes(size_t num_neighbors) {
    return num_neighbors * sizeof(Neighbor) + 64;  // payload + bookkeeping
  }

  const Hypergraph& graph_;
  LazyProjectionOptions options_;
  Rng rng_;

  std::unordered_map<EdgeId, Entry> memo_;
  std::multimap<uint32_t, EdgeId> by_degree_;  // ascending degree
  std::list<EdgeId> lru_order_;                // front = most recent
  std::vector<EdgeId> random_pool_;

  // Scratch for on-demand computation.
  std::vector<uint32_t> count_;
  std::vector<EdgeId> touched_;
  std::vector<Neighbor> transient_;

  Stats stats_;
};

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_LAZY_PROJECTION_H_
