/// \file
/// On-the-fly projected-graph computation with budgeted memoization
/// (paper Section 3.4, evaluated in Figure 11) — the memory-bounded
/// alternative to materializing a full ProjectedGraph.
///
/// A materialized projection costs O(|E| + Σ_e |N_e|) memory; on dense
/// hypergraphs that footprint dwarfs the input. The lazy variant instead
/// computes hyperedge neighborhoods on demand — one stamped-counter sweep
/// over the edge's incidence lists, exactly the `ProjectedGraph::Build`
/// inner step — and memoizes the hottest ones within a byte budget.
/// Whether a neighborhood is served from the memo or recomputed it is
/// always exact, so any sampler running on a LazyProjection returns
/// **bit-identical estimates** to the same sampler on a materialized
/// projection (same seed, same sample count). Only the run *statistics*
/// (hits, recomputes, bytes) depend on the memo state.
///
/// Two front ends share the machinery:
///  - LazyProjection — single-threaded, returns references into the memo;
///    the Figure-11 ablation surface (eviction policies).
///  - ConcurrentLazyProjection — a sharded memo table for parallel
///    samplers; workers copy neighborhoods out under a per-shard lock and
///    keep per-thread statistics, so they never serialize on one mutex.
///
/// The full memory contract — what each projection policy materializes,
/// the admission rule, byte accounting, determinism caveats — is
/// documented in docs/MEMORY.md.
#ifndef MOCHY_HYPERGRAPH_LAZY_PROJECTION_H_
#define MOCHY_HYPERGRAPH_LAZY_PROJECTION_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "hypergraph/spill_log.h"

namespace mochy {

/// Which memoized neighborhood to drop when the byte budget is exhausted
/// (equivalently: which newcomers to admit). kWedgeAdmission is the
/// production default; the others are retained for the Figure-11 ablation.
enum class EvictionPolicy {
  /// Admission score = expected reuse × recompute cost: |N_e| (the
  /// wedge-index projected degree — every sampled hyperwedge incident to
  /// e reads N_e) times the incidence-sweep cost Σ_{v∈e} d(v). Entries
  /// with the lowest score are evicted first, and a newcomer is declined
  /// when the cheapest resident outranks it, so the memo converges on the
  /// hubs whose recomputation is most expensive and most frequent.
  kWedgeAdmission,
  /// Keep the highest projected-degree neighborhoods (the paper's
  /// best-performing Figure-11 policy; reuse-only, ignores recompute
  /// cost).
  kDegreePriority,
  /// Evict the least recently used neighborhood.
  kLru,
  /// Evict a uniformly random memoized neighborhood.
  kRandom,
};

/// Stable lowercase name used in flags and reports: "wedge-admission",
/// "degree", "lru", "random".
const char* EvictionPolicyName(EvictionPolicy policy);

/// Default memoization budget when the caller does not set one: 256 MiB.
/// Large enough to fully memoize every example dataset in this repo,
/// small enough that an engine run on a huge graph stays memory-bounded
/// instead of silently growing an unbounded cache.
inline constexpr uint64_t kDefaultLazyMemoBudgetBytes = 256ull << 20;

struct LazyProjectionOptions {
  /// Maximum bytes of memoized neighborhoods, counted per EntryBytes()
  /// (payload + fixed bookkeeping overhead). 0 disables memoization
  /// entirely — every access recomputes — which is a legal low-memory
  /// mode unless `require_memoization` is set. The default is the
  /// explicit, documented kDefaultLazyMemoBudgetBytes, NOT unbounded.
  uint64_t memory_budget_bytes = kDefaultLazyMemoBudgetBytes;
  /// Admission/eviction rule for the memo (see EvictionPolicy).
  EvictionPolicy policy = EvictionPolicy::kWedgeAdmission;
  /// Seed for the kRandom policy.
  uint64_t seed = 7;
  /// When true, a configuration whose budget cannot memoize anything —
  /// fewer bytes than one empty entry (LazyEntryBytes(0)), including a
  /// budget diluted to that point by an explicit shard count — is
  /// rejected with InvalidArgument by ValidateLazyProjectionOptions() /
  /// the Create() factories instead of silently degrading to
  /// recompute-everything. Set it when memoization is load-bearing for
  /// the caller's performance expectations.
  bool require_memoization = false;
  /// When non-empty, enables the disk tier: neighborhoods that the byte
  /// budget evicts (or declines to admit) are appended to per-shard
  /// spill logs under this directory (see hypergraph/spill_log.h and
  /// docs/STORAGE.md) and re-admitted from disk on the next touch
  /// instead of recomputed. The logs are per-engine-lifetime scratch —
  /// created truncated, unlinked on shutdown. Empty (the default)
  /// disables spilling entirely; honored by ConcurrentLazyProjection.
  std::string spill_dir;
};

/// Rejects misconfigurations: `require_memoization` with a budget below
/// one memo entry. Returns OK otherwise.
Status ValidateLazyProjectionOptions(const LazyProjectionOptions& options);

/// Bytes one memoized neighborhood of `num_neighbors` entries is
/// accounted as: payload plus a fixed per-entry bookkeeping charge
/// (hash-map node, policy handles). This is the unit `memory_budget_bytes`
/// is denominated in; see docs/MEMORY.md for the full accounting model.
inline uint64_t LazyEntryBytes(size_t num_neighbors) {
  return num_neighbors * sizeof(Neighbor) + 64;
}

/// On-demand projected-graph neighborhoods with a budgeted memo.
/// Single-threaded: Neighborhood() returns a reference that stays valid
/// only until the next call. For parallel samplers use
/// ConcurrentLazyProjection below.
class LazyProjection {
 public:
  /// Validating factory. `degrees`, when provided, is the wedge index of
  /// `graph` (ComputeProjectedDegrees): kWedgeAdmission then scores
  /// entries by the indexed degree; without it the computed neighborhood
  /// size (an identical value, known post-compute) is used. Both
  /// referents must outlive the projection.
  static Result<LazyProjection> Create(const Hypergraph& graph,
                                       const LazyProjectionOptions& options,
                                       const ProjectedDegrees* degrees =
                                           nullptr);

  /// Unvalidated construction, kept for tests and the Figure-11 ablation;
  /// prefer Create().
  LazyProjection(const Hypergraph& graph, const LazyProjectionOptions& options,
                 const ProjectedDegrees* degrees = nullptr);

  /// Movable (the memo may be large; copying is deliberately disabled).
  LazyProjection(LazyProjection&&) = default;
  /// Move-assignable.
  LazyProjection& operator=(LazyProjection&&) = default;

  /// The exact weighted neighborhood of `e`, sorted by edge id. The
  /// reference stays valid until the next Neighborhood() call (it may
  /// point into transient scratch when the entry is not memoized).
  const std::vector<Neighbor>& Neighborhood(EdgeId e);

  /// Memo lookup only — no compute. On a hit copies the neighborhood into
  /// `*out`, updates LRU recency, and returns true. Hit/miss accounting
  /// is the caller's job (exactly one accounting path exists per front
  /// end: Neighborhood() counts internally, ConcurrentLazyProjection
  /// counts in the caller's per-worker Stats). Building block for
  /// ConcurrentLazyProjection, which computes misses outside the shard
  /// lock.
  bool TryGet(EdgeId e, std::vector<Neighbor>* out);

  /// Offers a freshly computed neighborhood of `e` to the memo; the
  /// admission/eviction policy decides whether it is kept. No-op when `e`
  /// is already resident. Does not count as a hit or a computation.
  void Admit(EdgeId e, std::span<const Neighbor> neighbors);

  /// Counters of this projection's activity. `bytes_used`/`peak_bytes`
  /// follow the LazyEntryBytes() accounting.
  struct Stats {
    uint64_t computations = 0;  ///< neighborhoods computed from scratch
    uint64_t memo_hits = 0;     ///< served from the memo
    uint64_t evictions = 0;     ///< memoized entries dropped
    uint64_t bytes_used = 0;    ///< current memo footprint
    uint64_t peak_bytes = 0;    ///< high-water memo footprint
    // Disk-tier counters (0 unless a spill_dir is configured). The first
    // two are memo-side (counted where the spill hook fires); the last
    // two are caller-side like memo_hits, accumulated per worker by
    // ConcurrentLazyProjection::Neighborhood.
    uint64_t spills = 0;           ///< neighborhoods appended to spill logs
    uint64_t spill_bytes = 0;      ///< neighbor payload bytes spilled
    uint64_t spill_readmits = 0;   ///< served by re-admitting from disk
    uint64_t spill_fallbacks = 0;  ///< spill read failed -> recomputed

    /// memo_hits / (memo_hits + computations); 0 when nothing was
    /// accessed.
    double HitRate() const;
  };
  /// Current statistics; hits/computations only count Neighborhood() and
  /// TryGet() traffic on this instance.
  const Stats& stats() const { return stats_; }

  /// Called with the exact neighborhood whenever the budget pushes an
  /// entry out of RAM: on eviction, and on every Admit() the policy
  /// declines (never-fits, newcomer-outranked, or budget 0). Returns
  /// true when a new spill record was appended; the projection then
  /// counts it in stats(). Installed by ConcurrentLazyProjection when a
  /// spill_dir is configured; runs under the caller's shard lock.
  using SpillHook = std::function<bool(EdgeId, std::span<const Neighbor>)>;
  void set_spill_hook(SpillHook hook) { spill_hook_ = std::move(hook); }

 private:
  struct Entry {
    std::vector<Neighbor> neighbors;
    uint64_t bytes = 0;
    // Policy bookkeeping handles.
    std::multimap<uint64_t, EdgeId>::iterator rank_it;
    std::list<EdgeId>::iterator lru_it;
    size_t random_index = 0;
  };

  /// Admission rank of a neighborhood of `e` under the active policy:
  /// kWedgeAdmission -> reuse × recompute cost, kDegreePriority ->
  /// degree. Higher ranks are kept longer.
  uint64_t RankOf(EdgeId e, size_t num_neighbors) const;
  void Evict(EdgeId victim);

  const Hypergraph* graph_;
  const ProjectedDegrees* degrees_;  // nullable wedge index
  LazyProjectionOptions options_;
  Rng rng_;

  std::unordered_map<EdgeId, Entry> memo_;
  std::multimap<uint64_t, EdgeId> rank_order_;  // ascending admission rank
  std::list<EdgeId> lru_order_;                 // front = most recent
  std::vector<EdgeId> random_pool_;

  std::unique_ptr<NeighborhoodBuilder> builder_;
  std::vector<Neighbor> transient_;
  SpillHook spill_hook_;  // null unless the disk tier is attached

  Stats stats_;

  /// Fires the spill hook (if any) and accounts the spill in stats_.
  void MaybeSpill(EdgeId e, std::span<const Neighbor> neighbors);
};

/// Thread-safe lazy projection for parallel samplers: the memo is split
/// into shards (edge id modulo shard count, each with its own mutex and
/// budget slice), misses are computed outside any lock with the caller's
/// NeighborhoodBuilder, and hit/recompute counters live in caller-owned
/// per-thread Stats — concurrent workers only contend on a shard when
/// they touch the same slice of the id space at the same moment.
///
/// Counts computed through this class are bit-identical to a materialized
/// projection regardless of shard count, worker count, or interleaving
/// (neighborhoods are always exact); the statistics are not deterministic
/// under concurrency — see docs/MEMORY.md.
class ConcurrentLazyProjection {
 public:
  /// Validating factory. `graph` and `degrees` (the wedge index used for
  /// admission scoring and wedge sampling) must outlive the projection.
  /// `num_shards` 0 picks a default sized to the worker count. When
  /// `options.spill_dir` is set the directory is created and one spill
  /// log per shard is opened; filesystem failures surface as kIOError.
  static Result<std::unique_ptr<ConcurrentLazyProjection>> Create(
      const Hypergraph& graph, const ProjectedDegrees& degrees,
      const LazyProjectionOptions& options, size_t num_shards = 0);

  /// Copies the exact neighborhood of `e` into `*out` (sorted by id).
  /// On a RAM miss the shard's spill log (when configured) is probed
  /// first — a verified record is re-admitted instead of recomputed; a
  /// missing or corrupt record falls back to computing with `builder`
  /// outside the shard lock, and the result is offered to the shard's
  /// memo. `local_stats` accumulates this caller's hits/computations/
  /// readmits/fallbacks; pass one per worker and merge with
  /// shared_stats() afterwards.
  void Neighborhood(EdgeId e, NeighborhoodBuilder& builder,
                    std::vector<Neighbor>* out,
                    LazyProjection::Stats* local_stats);

  /// Memo-side statistics summed over shards: evictions, bytes resident,
  /// peak bytes, spills/spill_bytes. Hits/computations (and the
  /// caller-side readmit/fallback counters) are zero here — they live in
  /// the per-worker Stats fed to Neighborhood().
  LazyProjection::Stats shared_stats() const;

  /// Number of memo shards.
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    LazyProjection lazy;
    // Disk tier: null unless options.spill_dir is set. The index
    // (Append/Lookup/Invalidate) is guarded by `mu`; ReadRecord preads
    // immutable extents outside the lock, mirroring how misses compute
    // outside the lock.
    std::unique_ptr<SpillLog> spill;
    explicit Shard(LazyProjection projection) : lazy(std::move(projection)) {}
  };

  ConcurrentLazyProjection(const Hypergraph& graph,
                           const ProjectedDegrees& degrees,
                           const LazyProjectionOptions& options,
                           size_t num_shards);

  const Hypergraph* graph_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Merges one sampler run's lazy statistics: the memo-side counters from
/// `lazy.shared_stats()` (evictions, bytes resident, peak, spills) plus
/// the summed per-worker hit/recompute/readmit/fallback counters. The
/// one merge rule both lazy kernels (mochy_a, mochy_aplus) report
/// through.
LazyProjection::Stats MergeLazyRunStats(
    const ConcurrentLazyProjection& lazy,
    std::span<const LazyProjection::Stats> local_stats);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_LAZY_PROJECTION_H_
