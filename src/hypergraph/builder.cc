#include "hypergraph/builder.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace mochy {

void HypergraphBuilder::AddEdge(std::span<const NodeId> nodes) {
  pool_.insert(pool_.end(), nodes.begin(), nodes.end());
  sizes_.push_back(static_cast<uint32_t>(nodes.size()));
}

void HypergraphBuilder::AddEdge(std::initializer_list<NodeId> nodes) {
  AddEdge(std::span<const NodeId>(nodes.begin(), nodes.size()));
}

Result<Hypergraph> HypergraphBuilder::Build(const BuildOptions& options) && {
  Hypergraph graph;
  graph.edge_offsets_.clear();
  graph.edge_offsets_.push_back(0);
  graph.edge_nodes_.reserve(pool_.size());

  // Duplicate detection: hash of sorted members -> candidate edge ids.
  std::unordered_map<uint64_t, std::vector<EdgeId>> seen;
  if (options.dedup_edges) seen.reserve(sizes_.size() * 2);

  std::vector<NodeId> scratch;
  size_t cursor = 0;
  NodeId max_node = 0;
  bool any_node = false;
  for (uint32_t raw_size : sizes_) {
    scratch.assign(pool_.begin() + cursor, pool_.begin() + cursor + raw_size);
    cursor += raw_size;
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.empty()) {
      if (options.drop_empty) continue;
      return Status::InvalidArgument("empty hyperedge not allowed");
    }
    any_node = true;
    max_node = std::max(max_node, scratch.back());

    if (options.dedup_edges) {
      const uint64_t h = HashIdSpan(scratch.data(), scratch.size());
      auto& bucket = seen[h];
      bool duplicate = false;
      for (EdgeId prev : bucket) {
        const auto span = graph.edge(prev);
        if (span.size() == scratch.size() &&
            std::equal(span.begin(), span.end(), scratch.begin())) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back(static_cast<EdgeId>(graph.num_edges()));
    }

    graph.edge_nodes_.insert(graph.edge_nodes_.end(), scratch.begin(),
                             scratch.end());
    graph.edge_offsets_.push_back(graph.edge_nodes_.size());
  }

  size_t num_nodes = options.num_nodes;
  if (num_nodes == 0) {
    num_nodes = any_node ? static_cast<size_t>(max_node) + 1 : 0;
  } else if (any_node && max_node >= num_nodes) {
    return Status::InvalidArgument("node id exceeds declared num_nodes");
  }
  graph.num_nodes_ = num_nodes;

  // Build node -> edges incidence by counting then filling.
  graph.node_offsets_.assign(num_nodes + 1, 0);
  for (NodeId v : graph.edge_nodes_) graph.node_offsets_[v + 1]++;
  for (size_t v = 0; v < num_nodes; ++v) {
    graph.node_offsets_[v + 1] += graph.node_offsets_[v];
  }
  graph.node_edges_.resize(graph.edge_nodes_.size());
  std::vector<uint64_t> fill(graph.node_offsets_.begin(),
                             graph.node_offsets_.end() - 1);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    for (NodeId v : graph.edge(e)) {
      graph.node_edges_[fill[v]++] = e;
    }
  }
  // Edges are appended in increasing id order, so each node's incidence
  // list is already sorted ascending.
  return graph;
}

Result<Hypergraph> MakeHypergraph(
    const std::vector<std::vector<NodeId>>& edges,
    const BuildOptions& options) {
  HypergraphBuilder builder;
  for (const auto& edge : edges) {
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  return std::move(builder).Build(options);
}

}  // namespace mochy
