// Mutable accumulator that produces an immutable Hypergraph.
//
// The builder sorts members inside each hyperedge, drops within-edge
// duplicate nodes, optionally removes duplicate hyperedges (the paper's
// Table 2 statistics are "after removing duplicated hyperedges"), and
// builds both CSR incidence directions.
#ifndef MOCHY_HYPERGRAPH_BUILDER_H_
#define MOCHY_HYPERGRAPH_BUILDER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

struct BuildOptions {
  /// Remove duplicate hyperedges (same node set), keeping the first.
  bool dedup_edges = true;
  /// Drop hyperedges that end up empty.
  bool drop_empty = true;
  /// Number of nodes; 0 means "max node id + 1".
  size_t num_nodes = 0;
};

class HypergraphBuilder {
 public:
  HypergraphBuilder() = default;

  /// Appends a hyperedge with the given members (any order, duplicates OK).
  void AddEdge(std::span<const NodeId> nodes);
  void AddEdge(std::initializer_list<NodeId> nodes);

  /// Number of edges added so far.
  size_t num_pending_edges() const { return sizes_.size(); }

  /// Consumes the builder and produces the hypergraph. Fails when a node id
  /// exceeds the declared `num_nodes` or when the result has no edges and
  /// `options.drop_empty` removed everything that was added.
  Result<Hypergraph> Build(const BuildOptions& options = {}) &&;

 private:
  std::vector<NodeId> pool_;      // concatenated members
  std::vector<uint32_t> sizes_;   // size per added edge
};

/// Convenience: builds a hypergraph from edge lists in one call.
Result<Hypergraph> MakeHypergraph(
    const std::vector<std::vector<NodeId>>& edges,
    const BuildOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_BUILDER_H_
