#include "hypergraph/spill_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/fault.h"

namespace mochy {

namespace {

constexpr size_t kRecordHeaderBytes = 8;  // u32 payload_len + u32 checksum
constexpr size_t kNeighborWireBytes = 8;  // u32 edge + u32 weight
// Guards the reader against a corrupt length prefix asking for an
// absurd allocation; generous next to any real neighborhood.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

uint32_t Checksum32(const unsigned char* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

void PutU32(std::vector<unsigned char>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// pwrite() the whole buffer at `offset`, retrying partial writes.
bool PwriteAll(int fd, const unsigned char* data, size_t len,
               uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::pwrite(fd, data + done, len - done, static_cast<off_t>(offset + done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool PreadAll(int fd, unsigned char* data, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::pread(fd, data + done, len - done, static_cast<off_t>(offset + done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<SpillLog>> SpillLog::Create(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create spill log " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<SpillLog>(new SpillLog(path, fd));
}

SpillLog::~SpillLog() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());  // scratch: one engine lifetime only
  }
}

bool SpillLog::Append(EdgeId e, std::span<const Neighbor> neighbors) {
  if (index_.find(e) != index_.end()) return false;  // identical bytes live

  char key[64];
  const int key_len =
      std::snprintf(key, sizeof key, "spill##%" PRIu32 "##%zu\n",
                    static_cast<uint32_t>(e), neighbors.size());

  std::vector<unsigned char> payload;
  payload.reserve(static_cast<size_t>(key_len) +
                  neighbors.size() * kNeighborWireBytes);
  payload.insert(payload.end(), key, key + key_len);
  for (const Neighbor& n : neighbors) {
    PutU32(&payload, n.edge);
    PutU32(&payload, n.weight);
  }

  std::vector<unsigned char> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Checksum32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  size_t write_bytes = record.size();
  const FaultAction fault = MOCHY_FAULT_POINT("spill.append");
  if (fault.kind == FaultAction::Kind::kError) return false;  // spill dropped
  if (fault.kind == FaultAction::Kind::kShortIo) {
    // Torn write: only a prefix lands, but the index still points at the
    // full extent — exactly the state a crash mid-append would leave.
    // ReadRecord detects it by checksum and the caller recomputes.
    write_bytes = std::min(write_bytes, fault.max_bytes);
  }
  if (!PwriteAll(fd_, record.data(), write_bytes, end_offset_)) return false;

  index_[e] = RecordRef{end_offset_, static_cast<uint32_t>(record.size())};
  end_offset_ += record.size();
  return true;
}

bool SpillLog::Lookup(EdgeId e, RecordRef* ref) const {
  const auto it = index_.find(e);
  if (it == index_.end()) return false;
  *ref = it->second;
  return true;
}

void SpillLog::Invalidate(EdgeId e) { index_.erase(e); }

bool SpillLog::ReadRecord(const RecordRef& ref, EdgeId expect,
                          std::vector<Neighbor>* out) const {
  if (ref.length < kRecordHeaderBytes ||
      ref.length - kRecordHeaderBytes > kMaxPayloadBytes) {
    return false;
  }
  std::vector<unsigned char> record(ref.length);

  size_t read_bytes = record.size();
  const FaultAction fault = MOCHY_FAULT_POINT("spill.read");
  if (fault.kind == FaultAction::Kind::kError) return false;
  if (fault.kind == FaultAction::Kind::kShortIo) {
    read_bytes = std::min(read_bytes, fault.max_bytes);
  }
  if (!PreadAll(fd_, record.data(), read_bytes, ref.offset)) return false;
  if (read_bytes < record.size()) return false;  // short read: torn record

  const uint32_t payload_len = GetU32(record.data());
  if (payload_len != ref.length - kRecordHeaderBytes) return false;
  const unsigned char* payload = record.data() + kRecordHeaderBytes;
  if (GetU32(record.data() + 4) != Checksum32(payload, payload_len)) {
    return false;
  }

  // Parse the delimited key: "spill##<edge>##<count>\n".
  const char* text = reinterpret_cast<const char*>(payload);
  const void* newline = std::memchr(text, '\n', payload_len);
  if (newline == nullptr) return false;
  const size_t key_len =
      static_cast<size_t>(static_cast<const char*>(newline) - text) + 1;
  const std::string key(text, key_len);  // NUL-terminate for sscanf
  uint32_t edge = 0;
  size_t count = 0;
  char trailer = 0;
  if (std::sscanf(key.c_str(), "spill##%" SCNu32 "##%zu%c", &edge, &count,
                  &trailer) != 3 ||
      trailer != '\n' || edge != expect) {
    return false;
  }
  if (payload_len - key_len != count * kNeighborWireBytes) return false;

  out->clear();
  out->reserve(count);
  const unsigned char* cursor = payload + key_len;
  for (size_t i = 0; i < count; ++i) {
    Neighbor n;
    n.edge = GetU32(cursor);
    n.weight = GetU32(cursor + 4);
    out->push_back(n);
    cursor += kNeighborWireBytes;
  }
  return true;
}

}  // namespace mochy
