// Binary on-disk container for hypergraphs (".mhg").
//
// The text format (hypergraph/io.h) stays the interchange/import format;
// this container is the out-of-core tier: the four CSR arrays of
// Hypergraph are stored verbatim (little-endian) behind a versioned
// header, so a graph can be mapped with mmap(2) and its incidence
// structure read zero-copy, without the tokenize/sort/dedup cost of the
// text importer.
//
// Layout (all integers little-endian; full tables in docs/STORAGE.md):
//
//   [0]   u32 magic "MHG1"
//   [4]   u32 version (currently 1)
//   [8]   u64 flags (reserved, must be 0)
//   [16]  u64 num_nodes
//   [24]  u64 num_edges
//   [32]  u64 num_pins
//   [40]  4 × section descriptor {u64 offset, u64 length, u64 fnv64}
//         sections in order: edge_offsets u64[num_edges+1],
//         edge_nodes u32[num_pins], node_offsets u64[num_nodes+1],
//         node_edges u32[num_pins]
//   [136] u64 fnv64 over header bytes [0, 136)
//   [144] section payloads, each 8-byte aligned, zero padded
//
// Error taxonomy on load: wrong magic or unsupported version/flags →
// kInvalidArgument; a file or section shorter than its descriptor claims
// → kOutOfRange; open/map failures and checksum mismatches (bit rot) →
// kIOError.
#ifndef MOCHY_HYPERGRAPH_BINARY_FORMAT_H_
#define MOCHY_HYPERGRAPH_BINARY_FORMAT_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/types.h"

namespace mochy {

/// File magic ("MHG1" as a little-endian u32) and current format version.
inline constexpr uint32_t kBinaryHypergraphMagic = 0x3147484Du;
inline constexpr uint32_t kBinaryHypergraphVersion = 1;

/// Writes `graph` to `path` in the binary container format, truncating.
Status SaveHypergraphBinary(const Hypergraph& graph, const std::string& path);

/// A hypergraph mapped read-only from a ".mhg" file. The CSR accessors
/// are zero-copy views into the mapping; they stay valid for the
/// lifetime of this object only. Move-only RAII over the mapping.
class MappedHypergraph {
 public:
  /// Maps and verifies `path` (header + section checksums). See the
  /// header comment for the error taxonomy.
  static Result<MappedHypergraph> Open(const std::string& path);

  MappedHypergraph(MappedHypergraph&& other) noexcept;
  MappedHypergraph& operator=(MappedHypergraph&& other) noexcept;
  MappedHypergraph(const MappedHypergraph&) = delete;
  MappedHypergraph& operator=(const MappedHypergraph&) = delete;
  ~MappedHypergraph();

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }
  uint64_t num_pins() const { return num_pins_; }

  /// CSR views straight into the mapping (no copies).
  std::span<const uint64_t> edge_offsets() const { return edge_offsets_; }
  std::span<const NodeId> edge_nodes() const { return edge_nodes_; }
  std::span<const uint64_t> node_offsets() const { return node_offsets_; }
  std::span<const EdgeId> node_edges() const { return node_edges_; }

  /// Members of hyperedge `e`, sorted ascending (zero-copy).
  std::span<const NodeId> edge(EdgeId e) const {
    return edge_nodes_.subspan(edge_offsets_[e],
                               edge_offsets_[e + 1] - edge_offsets_[e]);
  }

  /// Copies the mapped arrays into an owning, validated Hypergraph.
  Result<Hypergraph> ToHypergraph() const;

 private:
  MappedHypergraph() = default;

  void* base_ = nullptr;
  size_t mapped_bytes_ = 0;
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  uint64_t num_pins_ = 0;
  std::span<const uint64_t> edge_offsets_;
  std::span<const NodeId> edge_nodes_;
  std::span<const uint64_t> node_offsets_;
  std::span<const EdgeId> node_edges_;
};

/// Maps `path` and returns an owning Hypergraph (mmap verify + copy-out).
Result<Hypergraph> LoadHypergraphBinary(const std::string& path);

/// True when the file starts with the binary container magic. Missing or
/// unreadable files return false (the subsequent load reports the error).
bool IsBinaryHypergraphFile(const std::string& path);

/// Loads either format: sniffs the magic bytes and dispatches to
/// LoadHypergraphBinary or the text importer. `options` applies to the
/// text path only — binary containers store an already-built graph.
Result<Hypergraph> LoadHypergraphAuto(const std::string& path,
                                      const BuildOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_BINARY_FORMAT_H_
