#include "hypergraph/dynamic.h"

#include <algorithm>

#include "hypergraph/builder.h"

namespace mochy {

Result<EdgeId> DynamicHypergraph::AddEdge(std::span<const NodeId> nodes) {
  if (num_edges() >= kInvalidEdge) {
    return Status::OutOfRange("edge id space exhausted");
  }
  // Normalize exactly like HypergraphBuilder: sort members, drop
  // within-edge duplicates.
  members_.assign(nodes.begin(), nodes.end());
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  if (members_.empty()) {
    return Status::InvalidArgument("hyperedge has no member nodes");
  }
  const EdgeId e = static_cast<EdgeId>(num_edges());
  if (members_.back() >= node_edges_.size()) {
    node_edges_.resize(static_cast<size_t>(members_.back()) + 1);
  }

  // One stamped-counter sweep over the members' incidence lists yields
  // N(e) with weights: every occurrence of edge `a` in some E_v, v ∈ e,
  // is one shared node, so the per-edge occurrence count is |e ∩ a|.
  overlap_.EnsureSize(e + 1);
  overlap_.NewEpoch();
  touched_.clear();
  for (const NodeId v : members_) {
    for (const EdgeId a : node_edges_[v]) {
      const uint32_t seen = overlap_.Get(a);
      if (seen == 0) touched_.push_back(a);
      overlap_.Set(a, seen + 1);
    }
  }
  // Arrival order is id order everywhere else; keep N(e) sorted too.
  std::sort(touched_.begin(), touched_.end());

  adjacency_.emplace_back();
  std::vector<Neighbor>& own = adjacency_.back();
  own.reserve(touched_.size());
  for (const EdgeId a : touched_) {
    const uint32_t weight = overlap_.Get(a);
    own.push_back(Neighbor{a, weight});
    // `e` holds the largest id, so appending keeps adjacency_[a] sorted.
    adjacency_[a].push_back(Neighbor{e, weight});
    total_weight_ += weight;
  }
  num_wedges_ += touched_.size();

  // Publish the edge itself last: the sweep above must not see `e` in
  // its own members' incidence lists.
  for (const NodeId v : members_) node_edges_[v].push_back(e);
  edge_nodes_.insert(edge_nodes_.end(), members_.begin(), members_.end());
  edge_offsets_.push_back(edge_nodes_.size());
  return e;
}

Result<EdgeId> DynamicHypergraph::AddEdge(std::initializer_list<NodeId> nodes) {
  return AddEdge(std::span<const NodeId>(nodes.begin(), nodes.size()));
}

Result<Hypergraph> DynamicHypergraph::Snapshot() const {
  HypergraphBuilder builder;
  for (EdgeId e = 0; e < num_edges(); ++e) builder.AddEdge(edge(e));
  BuildOptions options;
  options.dedup_edges = false;
  options.num_nodes = num_nodes();
  return std::move(builder).Build(options);
}

void DynamicHypergraph::Clear() {
  edge_offsets_.resize(1);
  edge_nodes_.clear();
  node_edges_.clear();
  adjacency_.clear();
  num_wedges_ = 0;
  total_weight_ = 0;
}

}  // namespace mochy
