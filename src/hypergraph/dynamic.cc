#include "hypergraph/dynamic.h"

#include <algorithm>

#include "hypergraph/builder.h"

namespace mochy {

Result<EdgeId> DynamicHypergraph::AddEdge(std::span<const NodeId> nodes) {
  if (num_edges() >= kInvalidEdge) {
    return Status::OutOfRange("edge id space exhausted");
  }
  // Normalize exactly like HypergraphBuilder: sort members, drop
  // within-edge duplicates.
  members_.assign(nodes.begin(), nodes.end());
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  if (members_.empty()) {
    return Status::InvalidArgument("hyperedge has no member nodes");
  }
  const EdgeId e = static_cast<EdgeId>(num_edges());
  if (members_.back() >= node_edges_.size()) {
    node_edges_.resize(static_cast<size_t>(members_.back()) + 1);
  }

  // One stamped-counter sweep over the members' incidence lists yields
  // N(e) with weights: every occurrence of edge `a` in some E_v, v ∈ e,
  // is one shared node, so the per-edge occurrence count is |e ∩ a|.
  overlap_.EnsureSize(e + 1);
  overlap_.NewEpoch();
  touched_.clear();
  for (const NodeId v : members_) {
    for (const EdgeId a : node_edges_[v]) {
      const uint32_t seen = overlap_.Get(a);
      if (seen == 0) touched_.push_back(a);
      overlap_.Set(a, seen + 1);
    }
  }
  // Arrival order is id order everywhere else; keep N(e) sorted too.
  std::sort(touched_.begin(), touched_.end());

  adjacency_.emplace_back();
  std::vector<Neighbor>& own = adjacency_.back();
  own.reserve(touched_.size());
  for (const EdgeId a : touched_) {
    const uint32_t weight = overlap_.Get(a);
    own.push_back(Neighbor{a, weight});
    // `e` holds the largest id, so appending keeps adjacency_[a] sorted.
    adjacency_[a].push_back(Neighbor{e, weight});
    total_weight_ += weight;
  }
  num_wedges_ += touched_.size();

  // Publish the edge itself last: the sweep above must not see `e` in
  // its own members' incidence lists.
  for (const NodeId v : members_) node_edges_[v].push_back(e);
  edge_nodes_.insert(edge_nodes_.end(), members_.begin(), members_.end());
  edge_offsets_.push_back(edge_nodes_.size());
  live_.push_back(1);
  num_live_edges_ += 1;
  live_pins_ += members_.size();
  return e;
}

Status DynamicHypergraph::RemoveEdge(EdgeId e) {
  if (e >= num_edges()) {
    return Status::InvalidArgument("edge id out of range");
  }
  if (live_[e] == 0) {
    return Status::InvalidArgument("edge already removed");
  }
  // Reverse of AddEdge's incidence publication: erase `e` from each
  // member's sorted edge list.
  for (const NodeId v : edge(e)) {
    std::vector<EdgeId>& list = node_edges_[v];
    list.erase(std::lower_bound(list.begin(), list.end(), e));
  }
  // Reverse of the projection update: drop the Neighbor{e, ·} entry from
  // each neighbor's sorted-by-id adjacency and the wedge/weight totals.
  for (const Neighbor& n : adjacency_[e]) {
    std::vector<Neighbor>& list = adjacency_[n.edge];
    const auto it = std::lower_bound(
        list.begin(), list.end(), e,
        [](const Neighbor& lhs, EdgeId id) { return lhs.edge < id; });
    list.erase(it);
    total_weight_ -= n.weight;
    num_wedges_ -= 1;
  }
  // Actually release the adjacency storage: a sliding window removes
  // edges forever, so clear() alone would strand capacity per tombstone.
  std::vector<Neighbor>().swap(adjacency_[e]);
  live_[e] = 0;
  num_live_edges_ -= 1;
  live_pins_ -= edge_size(e);
  return Status::OK();
}

Result<EdgeId> DynamicHypergraph::AddEdge(std::initializer_list<NodeId> nodes) {
  return AddEdge(std::span<const NodeId>(nodes.begin(), nodes.size()));
}

Result<Hypergraph> DynamicHypergraph::Snapshot() const {
  HypergraphBuilder builder;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (live_[e] != 0) builder.AddEdge(edge(e));
  }
  BuildOptions options;
  options.dedup_edges = false;
  options.num_nodes = num_nodes();
  return std::move(builder).Build(options);
}

void DynamicHypergraph::Clear() {
  edge_offsets_.resize(1);
  edge_nodes_.clear();
  live_.clear();
  num_live_edges_ = 0;
  live_pins_ = 0;
  node_edges_.clear();
  adjacency_.clear();
  num_wedges_ = 0;
  total_weight_ = 0;
}

}  // namespace mochy
