// Fundamental id types shared by all hypergraph modules.
#ifndef MOCHY_HYPERGRAPH_TYPES_H_
#define MOCHY_HYPERGRAPH_TYPES_H_

#include <cstdint>

namespace mochy {

/// Node identifier; dense in [0, num_nodes).
using NodeId = uint32_t;

/// Hyperedge identifier; dense in [0, num_edges).
using EdgeId = uint32_t;

/// Sentinel for "no node" / "no edge".
inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_TYPES_H_
