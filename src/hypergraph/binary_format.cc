#include "hypergraph/binary_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "hypergraph/io.h"

// The section payloads are the in-memory CSR arrays written verbatim, so
// the zero-copy read path can only reinterpret them on a little-endian
// host. Big-endian ports would need an explicit byte-swapping loader.
static_assert(std::endian::native == std::endian::little,
              "binary hypergraph container requires a little-endian host");

namespace mochy {

namespace {

constexpr size_t kHeaderBytes = 144;
constexpr size_t kSectionTableOffset = 40;
constexpr size_t kNumSections = 4;
constexpr size_t kHeaderChecksumOffset = 136;

uint64_t Fnv64(const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct SectionDesc {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

void PutU32(std::vector<unsigned char>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(std::vector<unsigned char>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

size_t AlignUp8(size_t v) { return (v + 7) & ~size_t{7}; }

}  // namespace

Status SaveHypergraphBinary(const Hypergraph& graph, const std::string& path) {
  const size_t num_edges = graph.num_edges();
  const uint64_t num_pins = graph.num_pins();

  // Gather the four CSR sections. edge_offsets/node_offsets are copied
  // into contiguous u64 arrays through the public accessors; the
  // remaining arrays are reconstructed the same way so the writer does
  // not need friend access.
  std::vector<uint64_t> edge_offsets(num_edges + 1);
  std::vector<NodeId> edge_nodes;
  edge_nodes.reserve(num_pins);
  edge_offsets[0] = 0;
  for (size_t e = 0; e < num_edges; ++e) {
    const auto span = graph.edge(static_cast<EdgeId>(e));
    edge_nodes.insert(edge_nodes.end(), span.begin(), span.end());
    edge_offsets[e + 1] = edge_nodes.size();
  }
  std::vector<uint64_t> node_offsets(graph.num_nodes() + 1);
  std::vector<EdgeId> node_edges;
  node_edges.reserve(num_pins);
  node_offsets[0] = 0;
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    const auto span = graph.edges_of(static_cast<NodeId>(v));
    node_edges.insert(node_edges.end(), span.begin(), span.end());
    node_offsets[v + 1] = node_edges.size();
  }

  const void* section_data[kNumSections] = {
      edge_offsets.data(), edge_nodes.data(), node_offsets.data(),
      node_edges.data()};
  const size_t section_bytes[kNumSections] = {
      edge_offsets.size() * sizeof(uint64_t),
      edge_nodes.size() * sizeof(NodeId),
      node_offsets.size() * sizeof(uint64_t),
      node_edges.size() * sizeof(EdgeId)};

  SectionDesc descs[kNumSections];
  size_t cursor = kHeaderBytes;
  for (size_t s = 0; s < kNumSections; ++s) {
    descs[s].offset = cursor;
    descs[s].length = section_bytes[s];
    descs[s].checksum = Fnv64(section_data[s], section_bytes[s]);
    cursor = AlignUp8(cursor + section_bytes[s]);
  }

  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  PutU32(&header, kBinaryHypergraphMagic);
  PutU32(&header, kBinaryHypergraphVersion);
  PutU64(&header, 0);  // flags (reserved)
  PutU64(&header, graph.num_nodes());
  PutU64(&header, num_edges);
  PutU64(&header, num_pins);
  for (const SectionDesc& d : descs) {
    PutU64(&header, d.offset);
    PutU64(&header, d.length);
    PutU64(&header, d.checksum);
  }
  PutU64(&header, Fnv64(header.data(), header.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  size_t written = kHeaderBytes;
  static constexpr unsigned char kPad[8] = {0};
  for (size_t s = 0; ok && s < kNumSections; ++s) {
    // An empty graph has zero-length sections whose vector data() is
    // null; fwrite's pointer argument must not be null even for n == 0.
    ok = section_bytes[s] == 0 ||
         std::fwrite(section_data[s], 1, section_bytes[s], f) ==
             section_bytes[s];
    written += section_bytes[s];
    const size_t pad = AlignUp8(written) - written;
    if (ok && pad > 0) {
      ok = std::fwrite(kPad, 1, pad, f) == pad;
      written += pad;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

MappedHypergraph::MappedHypergraph(MappedHypergraph&& other) noexcept {
  *this = std::move(other);
}

MappedHypergraph& MappedHypergraph::operator=(
    MappedHypergraph&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
    base_ = std::exchange(other.base_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    num_nodes_ = std::exchange(other.num_nodes_, 0);
    num_edges_ = std::exchange(other.num_edges_, 0);
    num_pins_ = std::exchange(other.num_pins_, 0);
    edge_offsets_ = std::exchange(other.edge_offsets_, {});
    edge_nodes_ = std::exchange(other.edge_nodes_, {});
    node_offsets_ = std::exchange(other.node_offsets_, {});
    node_edges_ = std::exchange(other.node_edges_, {});
  }
  return *this;
}

MappedHypergraph::~MappedHypergraph() {
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
}

Result<MappedHypergraph> MappedHypergraph::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat failed for " + path + ": " +
                           std::strerror(err));
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return Status::OutOfRange("truncated header: " + path + " is " +
                              std::to_string(file_bytes) + " bytes, header needs " +
                              std::to_string(kHeaderBytes));
  }
  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(errno));
  }

  MappedHypergraph mapped;
  mapped.base_ = base;
  mapped.mapped_bytes_ = file_bytes;
  const auto* bytes = static_cast<const unsigned char*>(base);

  const uint32_t magic = GetU32(bytes);
  if (magic != kBinaryHypergraphMagic) {
    return Status::InvalidArgument("not a binary hypergraph (bad magic): " +
                                   path);
  }
  const uint32_t version = GetU32(bytes + 4);
  if (version != kBinaryHypergraphVersion) {
    return Status::InvalidArgument(
        "unsupported binary hypergraph version " + std::to_string(version) +
        " (reader supports " + std::to_string(kBinaryHypergraphVersion) +
        "): " + path);
  }
  if (GetU64(bytes + 8) != 0) {
    return Status::InvalidArgument("unsupported flags in " + path);
  }
  if (GetU64(bytes + kHeaderChecksumOffset) !=
      Fnv64(bytes, kHeaderChecksumOffset)) {
    return Status::IOError("header checksum mismatch (corrupt file): " + path);
  }

  mapped.num_nodes_ = GetU64(bytes + 16);
  mapped.num_edges_ = GetU64(bytes + 24);
  mapped.num_pins_ = GetU64(bytes + 32);

  SectionDesc descs[kNumSections];
  for (size_t s = 0; s < kNumSections; ++s) {
    const unsigned char* d = bytes + kSectionTableOffset + s * 24;
    descs[s].offset = GetU64(d);
    descs[s].length = GetU64(d + 8);
    descs[s].checksum = GetU64(d + 16);
  }
  const uint64_t expected_lengths[kNumSections] = {
      (mapped.num_edges_ + 1) * sizeof(uint64_t),
      mapped.num_pins_ * sizeof(NodeId),
      (mapped.num_nodes_ + 1) * sizeof(uint64_t),
      mapped.num_pins_ * sizeof(EdgeId)};
  static const char* const kSectionNames[kNumSections] = {
      "edge_offsets", "edge_nodes", "node_offsets", "node_edges"};
  for (size_t s = 0; s < kNumSections; ++s) {
    if (descs[s].length != expected_lengths[s]) {
      return Status::InvalidArgument(
          std::string("section ") + kSectionNames[s] +
          " length disagrees with header counts in " + path);
    }
    if (descs[s].offset % 8 != 0 || descs[s].offset < kHeaderBytes ||
        descs[s].offset > file_bytes ||
        descs[s].length > file_bytes - descs[s].offset) {
      return Status::OutOfRange(std::string("truncated section ") +
                                kSectionNames[s] + " in " + path);
    }
    if (Fnv64(bytes + descs[s].offset, descs[s].length) != descs[s].checksum) {
      return Status::IOError(std::string("checksum mismatch in section ") +
                             kSectionNames[s] + " (corrupt file): " + path);
    }
  }

  mapped.edge_offsets_ = {
      reinterpret_cast<const uint64_t*>(bytes + descs[0].offset),
      mapped.num_edges_ + 1};
  mapped.edge_nodes_ = {
      reinterpret_cast<const NodeId*>(bytes + descs[1].offset),
      mapped.num_pins_};
  mapped.node_offsets_ = {
      reinterpret_cast<const uint64_t*>(bytes + descs[2].offset),
      mapped.num_nodes_ + 1};
  mapped.node_edges_ = {
      reinterpret_cast<const EdgeId*>(bytes + descs[3].offset),
      mapped.num_pins_};
  return mapped;
}

Result<Hypergraph> MappedHypergraph::ToHypergraph() const {
  Hypergraph graph = AssembleHypergraphFromCsr(
      num_nodes_,
      std::vector<uint64_t>(edge_offsets_.begin(), edge_offsets_.end()),
      std::vector<NodeId>(edge_nodes_.begin(), edge_nodes_.end()),
      std::vector<uint64_t>(node_offsets_.begin(), node_offsets_.end()),
      std::vector<EdgeId>(node_edges_.begin(), node_edges_.end()));
  MOCHY_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

Result<Hypergraph> LoadHypergraphBinary(const std::string& path) {
  MOCHY_ASSIGN_OR_RETURN(MappedHypergraph mapped, MappedHypergraph::Open(path));
  return mapped.ToHypergraph();
}

bool IsBinaryHypergraphFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  unsigned char head[4];
  const bool got = std::fread(head, 1, sizeof head, f) == sizeof head;
  std::fclose(f);
  return got && GetU32(head) == kBinaryHypergraphMagic;
}

Result<Hypergraph> LoadHypergraphAuto(const std::string& path,
                                      const BuildOptions& options) {
  if (IsBinaryHypergraphFile(path)) return LoadHypergraphBinary(path);
  return LoadHypergraph(path, options);
}

}  // namespace mochy
