#include "hypergraph/lazy_projection.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"

namespace mochy {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kWedgeAdmission:
      return "wedge-admission";
    case EvictionPolicy::kDegreePriority:
      return "degree";
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kRandom:
      return "random";
  }
  return "unknown";
}

Status ValidateLazyProjectionOptions(const LazyProjectionOptions& options) {
  if (options.require_memoization &&
      options.memory_budget_bytes < LazyEntryBytes(0)) {
    return Status::InvalidArgument(
        "lazy projection misconfigured: require_memoization is set but "
        "memory_budget_bytes (" +
        std::to_string(options.memory_budget_bytes) +
        ") cannot hold even an empty entry (" +
        std::to_string(LazyEntryBytes(0)) +
        " bytes); raise the budget or clear require_memoization");
  }
  return Status::OK();
}

double LazyProjection::Stats::HitRate() const {
  const uint64_t accesses = memo_hits + computations;
  return accesses == 0 ? 0.0
                       : static_cast<double>(memo_hits) /
                             static_cast<double>(accesses);
}

Result<LazyProjection> LazyProjection::Create(
    const Hypergraph& graph, const LazyProjectionOptions& options,
    const ProjectedDegrees* degrees) {
  if (Status s = ValidateLazyProjectionOptions(options); !s.ok()) return s;
  if (degrees != nullptr && degrees->degree.size() != graph.num_edges()) {
    return Status::InvalidArgument(
        "wedge index does not match the hypergraph (degrees for " +
        std::to_string(degrees->degree.size()) + " edges, graph has " +
        std::to_string(graph.num_edges()) + ")");
  }
  return LazyProjection(graph, options, degrees);
}

LazyProjection::LazyProjection(const Hypergraph& graph,
                               const LazyProjectionOptions& options,
                               const ProjectedDegrees* degrees)
    : graph_(&graph),
      degrees_(degrees),
      options_(options),
      rng_(options.seed),
      builder_(std::make_unique<NeighborhoodBuilder>(graph.num_edges())) {}

uint64_t LazyProjection::RankOf(EdgeId e, size_t num_neighbors) const {
  switch (options_.policy) {
    case EvictionPolicy::kWedgeAdmission: {
      // Expected reuse × recompute cost. The reuse proxy is the projected
      // degree |N_e| — under uniform hyperwedge sampling, a sample reads
      // N_e with probability |N_e|/|∧| — taken from the wedge index when
      // available (identical to the computed neighborhood size).
      const uint64_t reuse = degrees_ != nullptr
                                 ? degrees_->degree[e]
                                 : static_cast<uint64_t>(num_neighbors);
      MOCHY_DCHECK(degrees_ == nullptr || degrees_->degree[e] == num_neighbors);
      return reuse * NeighborhoodBuilder::SweepCost(*graph_, e);
    }
    case EvictionPolicy::kDegreePriority:
      return num_neighbors;
    case EvictionPolicy::kLru:
    case EvictionPolicy::kRandom:
      return 0;
  }
  return 0;
}

const std::vector<Neighbor>& LazyProjection::Neighborhood(EdgeId e) {
  auto it = memo_.find(e);
  if (it != memo_.end()) {
    ++stats_.memo_hits;
    if (options_.policy == EvictionPolicy::kLru) {
      lru_order_.erase(it->second.lru_it);
      lru_order_.push_front(e);
      it->second.lru_it = lru_order_.begin();
    }
    return it->second.neighbors;
  }
  ++stats_.computations;
  builder_->Compute(*graph_, e, &transient_);
  Admit(e, transient_);
  auto inserted = memo_.find(e);
  return inserted != memo_.end() ? inserted->second.neighbors : transient_;
}

bool LazyProjection::TryGet(EdgeId e, std::vector<Neighbor>* out) {
  auto it = memo_.find(e);
  if (it == memo_.end()) return false;
  if (options_.policy == EvictionPolicy::kLru) {
    lru_order_.erase(it->second.lru_it);
    lru_order_.push_front(e);
    it->second.lru_it = lru_order_.begin();
  }
  out->assign(it->second.neighbors.begin(), it->second.neighbors.end());
  return true;
}

void LazyProjection::MaybeSpill(EdgeId e,
                                std::span<const Neighbor> neighbors) {
  if (!spill_hook_) return;
  if (spill_hook_(e, neighbors)) {
    ++stats_.spills;
    stats_.spill_bytes += neighbors.size() * sizeof(Neighbor);
  }
}

void LazyProjection::Admit(EdgeId e, std::span<const Neighbor> neighbors) {
  // Every path that leaves `e` non-resident offers it to the disk tier
  // instead: the spill log re-serves what the RAM budget cannot hold.
  if (options_.memory_budget_bytes == 0) {
    MaybeSpill(e, neighbors);
    return;
  }
  if (memo_.find(e) != memo_.end()) return;
  const uint64_t bytes = LazyEntryBytes(neighbors.size());
  if (bytes > options_.memory_budget_bytes) {  // never fits
    MaybeSpill(e, neighbors);
    return;
  }
  const uint64_t rank = RankOf(e, neighbors.size());

  // Rank policies decide admission before touching the memo: the
  // newcomer is admitted only if the strictly-lower-ranked residents
  // free enough room (ties keep residents). Checking first avoids
  // evicting low-ranked entries and then declining anyway — which would
  // shrink the memo for no gain.
  if (options_.policy == EvictionPolicy::kWedgeAdmission ||
      options_.policy == EvictionPolicy::kDegreePriority) {
    uint64_t reclaimable =
        options_.memory_budget_bytes - stats_.bytes_used;  // free room
    for (auto it = rank_order_.begin();
         reclaimable < bytes && it != rank_order_.end() && it->first < rank;
         ++it) {
      reclaimable += memo_[it->second].bytes;
    }
    if (reclaimable < bytes) {  // newcomer loses
      MaybeSpill(e, neighbors);
      return;
    }
  }

  // Free space per policy until the new entry fits.
  while (stats_.bytes_used + bytes > options_.memory_budget_bytes) {
    MOCHY_DCHECK(!memo_.empty());
    EdgeId victim = kInvalidEdge;
    switch (options_.policy) {
      case EvictionPolicy::kWedgeAdmission:
      case EvictionPolicy::kDegreePriority: {
        const auto lowest = rank_order_.begin();
        MOCHY_DCHECK(lowest->first < rank);  // guaranteed by the pre-check
        victim = lowest->second;
        break;
      }
      case EvictionPolicy::kLru:
        victim = lru_order_.back();
        break;
      case EvictionPolicy::kRandom:
        victim = random_pool_[rng_.UniformInt(random_pool_.size())];
        break;
    }
    Evict(victim);
  }

  Entry entry;
  entry.neighbors.assign(neighbors.begin(), neighbors.end());
  entry.bytes = bytes;
  auto [it, inserted] = memo_.emplace(e, std::move(entry));
  MOCHY_DCHECK(inserted);
  stats_.bytes_used += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_used);
  switch (options_.policy) {
    case EvictionPolicy::kWedgeAdmission:
    case EvictionPolicy::kDegreePriority:
      it->second.rank_it = rank_order_.emplace(rank, e);
      break;
    case EvictionPolicy::kLru:
      lru_order_.push_front(e);
      it->second.lru_it = lru_order_.begin();
      break;
    case EvictionPolicy::kRandom:
      it->second.random_index = random_pool_.size();
      random_pool_.push_back(e);
      break;
  }
}

void LazyProjection::Evict(EdgeId victim) {
  auto it = memo_.find(victim);
  MOCHY_DCHECK(it != memo_.end());
  MaybeSpill(victim, it->second.neighbors);
  stats_.bytes_used -= it->second.bytes;
  ++stats_.evictions;
  switch (options_.policy) {
    case EvictionPolicy::kWedgeAdmission:
    case EvictionPolicy::kDegreePriority:
      rank_order_.erase(it->second.rank_it);
      break;
    case EvictionPolicy::kLru:
      lru_order_.erase(it->second.lru_it);
      break;
    case EvictionPolicy::kRandom: {
      const size_t idx = it->second.random_index;
      random_pool_[idx] = random_pool_.back();
      memo_[random_pool_[idx]].random_index = idx;
      random_pool_.pop_back();
      break;
    }
  }
  memo_.erase(it);
}

Result<std::unique_ptr<ConcurrentLazyProjection>>
ConcurrentLazyProjection::Create(const Hypergraph& graph,
                                 const ProjectedDegrees& degrees,
                                 const LazyProjectionOptions& options,
                                 size_t num_shards) {
  if (Status s = ValidateLazyProjectionOptions(options); !s.ok()) return s;
  if (degrees.degree.size() != graph.num_edges()) {
    return Status::InvalidArgument(
        "wedge index does not match the hypergraph (degrees for " +
        std::to_string(degrees.degree.size()) + " edges, graph has " +
        std::to_string(graph.num_edges()) + ")");
  }
  if (num_shards == 0) {
    // Enough shards that workers rarely collide, but never so many that a
    // small budget is diluted below one useful slice (~64 KiB) per shard.
    num_shards = std::min<size_t>(64, std::max<size_t>(1, DefaultThreadCount() * 2));
    if (options.memory_budget_bytes > 0) {
      const uint64_t slices =
          std::max<uint64_t>(1, options.memory_budget_bytes / (64ull << 10));
      num_shards = static_cast<size_t>(
          std::min<uint64_t>(num_shards, slices));
    }
  } else if (options.require_memoization &&
             options.memory_budget_bytes / num_shards < LazyEntryBytes(0)) {
    // An explicit shard count must not dilute a required-memoization
    // budget into useless slices.
    return Status::InvalidArgument(
        "lazy projection misconfigured: memory_budget_bytes split over " +
        std::to_string(num_shards) + " shards leaves " +
        std::to_string(options.memory_budget_bytes / num_shards) +
        " bytes per shard, below one entry (" +
        std::to_string(LazyEntryBytes(0)) + " bytes)");
  }
  std::unique_ptr<ConcurrentLazyProjection> projection(
      new ConcurrentLazyProjection(graph, degrees, options, num_shards));
  if (!options.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.spill_dir, ec);
    if (ec) {
      return Status::IOError("cannot create spill directory " +
                             options.spill_dir + ": " + ec.message());
    }
    // Unique log names even when several engines share one spill_dir in
    // one process (e.g. BatchRunner items).
    static std::atomic<uint64_t> instance_counter{0};
    const uint64_t instance = instance_counter.fetch_add(1);
    for (size_t s = 0; s < projection->shards_.size(); ++s) {
      const std::string path = options.spill_dir + "/mochy_spill_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(instance) + "_shard" +
                               std::to_string(s) + ".spill";
      MOCHY_ASSIGN_OR_RETURN(projection->shards_[s]->spill,
                             SpillLog::Create(path));
      Shard* shard = projection->shards_[s].get();
      shard->lazy.set_spill_hook(
          [shard](EdgeId e, std::span<const Neighbor> neighbors) {
            return shard->spill->Append(e, neighbors);
          });
    }
  }
  return projection;
}

ConcurrentLazyProjection::ConcurrentLazyProjection(
    const Hypergraph& graph, const ProjectedDegrees& degrees,
    const LazyProjectionOptions& options, size_t num_shards)
    : graph_(&graph) {
  LazyProjectionOptions shard_options = options;
  // Split the budget across shards; each shard enforces its slice
  // independently, so the sum never exceeds the configured budget.
  shard_options.memory_budget_bytes = options.memory_budget_bytes / num_shards;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_options.seed = options.seed + s;
    shards_.push_back(std::make_unique<Shard>(
        LazyProjection(graph, shard_options, &degrees)));
  }
}

void ConcurrentLazyProjection::Neighborhood(
    EdgeId e, NeighborhoodBuilder& builder, std::vector<Neighbor>* out,
    LazyProjection::Stats* local_stats) {
  Shard& shard = *shards_[e % shards_.size()];
  SpillLog::RecordRef spill_ref;
  bool spilled = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.lazy.TryGet(e, out)) {
      ++local_stats->memo_hits;
      return;
    }
    if (shard.spill != nullptr) spilled = shard.spill->Lookup(e, &spill_ref);
  }
  if (spilled) {
    // Disk tier: a spilled extent is immutable once indexed, so the
    // pread-and-verify runs outside the lock, like a computed miss.
    if (shard.spill->ReadRecord(spill_ref, e, out)) {
      ++local_stats->spill_readmits;
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lazy.Admit(e, *out);
      return;
    }
    ++local_stats->spill_fallbacks;  // corrupt/torn record: recompute
  }
  // Miss: compute outside the lock with the caller's scratch, then offer
  // the result to the shard (a racing worker may have admitted `e`
  // meanwhile; Admit is a no-op then).
  builder.Compute(*graph_, e, out);
  ++local_stats->computations;
  std::lock_guard<std::mutex> lock(shard.mu);
  if (spilled) shard.spill->Invalidate(e);  // make room for a fresh spill
  shard.lazy.Admit(e, *out);
}

LazyProjection::Stats ConcurrentLazyProjection::shared_stats() const {
  // Only the memo-side counters exist shard-side: hit/compute traffic is
  // accounted exclusively in the callers' per-worker Stats (TryGet does
  // not count, and the shard never sees the out-of-lock computes), so
  // hits/computations stay 0 as documented.
  LazyProjection::Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const LazyProjection::Stats& s = shard->lazy.stats();
    total.bytes_used += s.bytes_used;
    total.evictions += s.evictions;
    total.peak_bytes += s.peak_bytes;
    total.spills += s.spills;
    total.spill_bytes += s.spill_bytes;
  }
  return total;
}

LazyProjection::Stats MergeLazyRunStats(
    const ConcurrentLazyProjection& lazy,
    std::span<const LazyProjection::Stats> local_stats) {
  LazyProjection::Stats merged = lazy.shared_stats();
  for (const LazyProjection::Stats& local : local_stats) {
    merged.memo_hits += local.memo_hits;
    merged.computations += local.computations;
    merged.spill_readmits += local.spill_readmits;
    merged.spill_fallbacks += local.spill_fallbacks;
  }
  return merged;
}

}  // namespace mochy
