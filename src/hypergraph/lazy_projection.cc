#include "hypergraph/lazy_projection.h"

#include <algorithm>

#include "common/logging.h"

namespace mochy {

LazyProjection::LazyProjection(const Hypergraph& graph,
                               const LazyProjectionOptions& options)
    : graph_(graph),
      options_(options),
      rng_(options.seed),
      count_(graph.num_edges(), 0) {
  touched_.reserve(256);
}

void LazyProjection::ComputeInto(EdgeId e, std::vector<Neighbor>* out) {
  ++stats_.computations;
  for (NodeId v : graph_.edge(e)) {
    for (EdgeId other : graph_.edges_of(v)) {
      if (other == e) continue;
      if (count_[other] == 0) touched_.push_back(other);
      ++count_[other];
    }
  }
  std::sort(touched_.begin(), touched_.end());
  out->clear();
  out->reserve(touched_.size());
  for (EdgeId other : touched_) {
    out->push_back(Neighbor{other, count_[other]});
    count_[other] = 0;
  }
  touched_.clear();
}

const std::vector<Neighbor>& LazyProjection::Neighborhood(EdgeId e) {
  auto it = memo_.find(e);
  if (it != memo_.end()) {
    ++stats_.memo_hits;
    if (options_.policy == EvictionPolicy::kLru) {
      lru_order_.erase(it->second.lru_it);
      lru_order_.push_front(e);
      it->second.lru_it = lru_order_.begin();
    }
    return it->second.neighbors;
  }
  ComputeInto(e, &transient_);
  if (options_.memory_budget_bytes > 0) {
    MaybeMemoize(e, std::vector<Neighbor>(transient_));
    auto inserted = memo_.find(e);
    if (inserted != memo_.end()) return inserted->second.neighbors;
  }
  return transient_;
}

void LazyProjection::MaybeMemoize(EdgeId e, std::vector<Neighbor>&& neighbors) {
  const uint64_t bytes = EntryBytes(neighbors.size());
  if (bytes > options_.memory_budget_bytes) return;  // never fits

  // Free space per policy until the new entry fits.
  while (stats_.bytes_used + bytes > options_.memory_budget_bytes) {
    MOCHY_DCHECK(!memo_.empty());
    EdgeId victim = kInvalidEdge;
    switch (options_.policy) {
      case EvictionPolicy::kDegreePriority: {
        // Keep high-degree neighborhoods: evict the lowest-degree entry,
        // but refuse to evict entries with degree above the newcomer's.
        const auto lowest = by_degree_.begin();
        if (lowest->first >= neighbors.size()) return;  // newcomer loses
        victim = lowest->second;
        break;
      }
      case EvictionPolicy::kLru:
        victim = lru_order_.back();
        break;
      case EvictionPolicy::kRandom:
        victim = random_pool_[rng_.UniformInt(random_pool_.size())];
        break;
    }
    Evict(victim);
  }

  Entry entry;
  entry.neighbors = std::move(neighbors);
  entry.bytes = bytes;
  auto [it, inserted] = memo_.emplace(e, std::move(entry));
  MOCHY_DCHECK(inserted);
  stats_.bytes_used += bytes;
  switch (options_.policy) {
    case EvictionPolicy::kDegreePriority:
      it->second.degree_it = by_degree_.emplace(
          static_cast<uint32_t>(it->second.neighbors.size()), e);
      break;
    case EvictionPolicy::kLru:
      lru_order_.push_front(e);
      it->second.lru_it = lru_order_.begin();
      break;
    case EvictionPolicy::kRandom:
      it->second.random_index = random_pool_.size();
      random_pool_.push_back(e);
      break;
  }
}

void LazyProjection::Evict(EdgeId victim) {
  auto it = memo_.find(victim);
  MOCHY_DCHECK(it != memo_.end());
  stats_.bytes_used -= it->second.bytes;
  ++stats_.evictions;
  switch (options_.policy) {
    case EvictionPolicy::kDegreePriority:
      by_degree_.erase(it->second.degree_it);
      break;
    case EvictionPolicy::kLru:
      lru_order_.erase(it->second.lru_it);
      break;
    case EvictionPolicy::kRandom: {
      const size_t idx = it->second.random_index;
      random_pool_[idx] = random_pool_.back();
      memo_[random_pool_[idx]].random_index = idx;
      random_pool_.pop_back();
      break;
    }
  }
  memo_.erase(it);
}

}  // namespace mochy
