// Text serialization for hypergraphs.
//
// Format: one hyperedge per line, member node ids separated by spaces,
// commas, or tabs. Lines starting with '#' or '%' are comments. This is the
// format used by the public hypergraph datasets the paper evaluates on
// (Benson et al.), so real datasets drop in directly when available.
#ifndef MOCHY_HYPERGRAPH_IO_H_
#define MOCHY_HYPERGRAPH_IO_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/status.h"
#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

/// Shared tokenizer for the line-oriented dataset formats (hypergraphs
/// and temporal traces): one record per line, non-negative integer
/// fields separated by spaces, commas, or tabs; '#'/'%' comment lines
/// and blank lines are skipped. Invokes `fn(line_no, fields)` per data
/// line; a field that is non-numeric or overflows uint64 is an error,
/// range checks below 2^64 are the callback's job. Stops at (and
/// returns) the first error.
Status ForEachUintLine(
    const std::string& text,
    const std::function<Status(size_t line_no,
                               std::span<const uint64_t> fields)>& fn);

/// Reads a whole file into a string (binary mode).
Result<std::string> ReadTextFile(const std::string& path);

/// Writes `text` to `path`, truncating (binary mode).
Status WriteTextFile(const std::string& path, const std::string& text);

/// Parses a hypergraph from the text format described above.
Result<Hypergraph> ParseHypergraph(const std::string& text,
                                   const BuildOptions& options = {});

/// Loads a hypergraph from a file in the text format.
Result<Hypergraph> LoadHypergraph(const std::string& path,
                                  const BuildOptions& options = {});

/// Serializes to the text format (one edge per line, space separated).
std::string FormatHypergraph(const Hypergraph& graph);

/// Writes the text format to a file.
Status SaveHypergraph(const Hypergraph& graph, const std::string& path);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_IO_H_
