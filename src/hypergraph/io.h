// Text serialization for hypergraphs.
//
// Format: one hyperedge per line, member node ids separated by spaces,
// commas, or tabs. Lines starting with '#' or '%' are comments. This is the
// format used by the public hypergraph datasets the paper evaluates on
// (Benson et al.), so real datasets drop in directly when available.
#ifndef MOCHY_HYPERGRAPH_IO_H_
#define MOCHY_HYPERGRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

/// Parses a hypergraph from the text format described above.
Result<Hypergraph> ParseHypergraph(const std::string& text,
                                   const BuildOptions& options = {});

/// Loads a hypergraph from a file in the text format.
Result<Hypergraph> LoadHypergraph(const std::string& path,
                                  const BuildOptions& options = {});

/// Serializes to the text format (one edge per line, space separated).
std::string FormatHypergraph(const Hypergraph& graph);

/// Writes the text format to a file.
Status SaveHypergraph(const Hypergraph& graph, const std::string& path);

}  // namespace mochy

#endif  // MOCHY_HYPERGRAPH_IO_H_
