#include "hypergraph/fingerprint.h"

#include "common/hash.h"

namespace mochy {

uint64_t GraphFingerprint(const Hypergraph& graph) {
  uint64_t h = Mix64(0x6d6f6368794670ULL);  // "mochyFp"
  h = HashCombine(h, Mix64(graph.num_nodes()));
  h = HashCombine(h, Mix64(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto span = graph.edge(e);
    h = HashCombine(h, HashIdSpan(span.data(), span.size()));
  }
  return Mix64(h);
}

}  // namespace mochy
