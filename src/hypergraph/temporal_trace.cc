#include "hypergraph/temporal_trace.h"

#include <cstdio>

#include "hypergraph/io.h"

namespace mochy {

Status TemporalTrace::Validate() const {
  uint64_t previous = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const TimedEdge& arrival = arrivals[i];
    if (arrival.nodes.empty()) {
      return Status::InvalidArgument("arrival " + std::to_string(i) +
                                     " has no member nodes");
    }
    if (i > 0 && arrival.time < previous) {
      return Status::InvalidArgument(
          "arrival " + std::to_string(i) + " has time " +
          std::to_string(arrival.time) + " before its predecessor's " +
          std::to_string(previous));
    }
    previous = arrival.time;
  }
  return Status::OK();
}

Result<TemporalTrace> ParseTemporalTrace(const std::string& text) {
  TemporalTrace trace;
  Status parsed = ForEachUintLine(
      text, [&](size_t line_no, std::span<const uint64_t> fields) {
        if (fields.size() < 2) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": want a timestamp plus at least "
                                         "one node id");
        }
        TimedEdge arrival;
        arrival.time = fields[0];
        arrival.nodes.reserve(fields.size() - 1);
        for (const uint64_t value : fields.subspan(1)) {
          if (value > kInvalidNode - 1) {
            return Status::OutOfRange("line " + std::to_string(line_no) +
                                      ": node id too large");
          }
          arrival.nodes.push_back(static_cast<NodeId>(value));
        }
        trace.arrivals.push_back(std::move(arrival));
        return Status::OK();
      });
  if (!parsed.ok()) return parsed;
  if (Status s = trace.Validate(); !s.ok()) return s;
  return trace;
}

Result<TemporalTrace> LoadTemporalTrace(const std::string& path) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return text.status();
  return ParseTemporalTrace(text.value());
}

std::string FormatTemporalTrace(const TemporalTrace& trace) {
  std::string out;
  char scratch[24];
  for (const TimedEdge& arrival : trace.arrivals) {
    int len = std::snprintf(scratch, sizeof(scratch), "%llu",
                            static_cast<unsigned long long>(arrival.time));
    out.append(scratch, static_cast<size_t>(len));
    for (NodeId v : arrival.nodes) {
      out.push_back(' ');
      len = std::snprintf(scratch, sizeof(scratch), "%u", v);
      out.append(scratch, static_cast<size_t>(len));
    }
    out.push_back('\n');
  }
  return out;
}

Status SaveTemporalTrace(const TemporalTrace& trace, const std::string& path) {
  return WriteTextFile(path, FormatTemporalTrace(trace));
}

}  // namespace mochy
