// Fake-hyperedge generation for the hyperedge-prediction case study
// (paper Section 4.4, Table 4; following Yoon et al.'s setup).
//
// For each real hyperedge, a fake counterpart replaces a fraction of its
// members with random non-member nodes. Classifiers are then trained to
// separate real from fake edges.
#ifndef MOCHY_GEN_PERTURB_H_
#define MOCHY_GEN_PERTURB_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

struct PerturbOptions {
  /// Fraction of members replaced per fake edge (at least one member).
  double replace_fraction = 0.5;
  uint64_t seed = 1;
};

/// One fake edge per hyperedge of `graph`: result[e] is the perturbed
/// member set of edge e. Fails when the node population is too small to
/// supply replacement nodes.
Result<std::vector<std::vector<NodeId>>> MakeFakeHyperedges(
    const Hypergraph& graph, const PerturbOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_GEN_PERTURB_H_
