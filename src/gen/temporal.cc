#include "gen/temporal.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "hypergraph/builder.h"

namespace mochy {

TemporalConfig ScaledTemporalConfig(double scale, size_t num_years) {
  TemporalConfig config;
  config.num_years = num_years;
  config.num_nodes =
      std::max<size_t>(8, static_cast<size_t>(3000 * scale));
  config.edges_first_year = static_cast<size_t>(900 * scale);
  config.edges_last_year = static_cast<size_t>(2600 * scale);
  return config;
}

Result<TemporalTrace> GenerateTemporalTrace(const TemporalConfig& config) {
  if (config.num_years == 0 || config.num_nodes < 8) {
    return Status::InvalidArgument("temporal generator needs years and nodes");
  }
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t num_communities = std::max<size_t>(4, n / 30);
  std::vector<std::vector<NodeId>> community_members(num_communities);
  for (NodeId v = 0; v < n; ++v) {
    community_members[rng.Zipf(num_communities, 0.8)].push_back(v);
  }

  TemporalTrace trace;
  for (size_t year = 0; year < config.num_years; ++year) {
    const double progress =
        config.num_years == 1
            ? 0.0
            : static_cast<double>(year) /
                  static_cast<double>(config.num_years - 1);
    const double cross =
        config.cross_community_first +
        progress * (config.cross_community_last - config.cross_community_first);
    const size_t num_edges = static_cast<size_t>(
        static_cast<double>(config.edges_first_year) +
        progress * (static_cast<double>(config.edges_last_year) -
                    static_cast<double>(config.edges_first_year)));
    // Team sizes creep upward over the years.
    const double size_mean = 1.6 + 1.2 * progress;

    // Repeat collaborations (follow-up papers by almost the same team)
    // produce tightly clustered, closed triples; their share shrinks over
    // the years while cross-community work grows, which is what drives
    // the paper's rising open-motif fraction.
    const double repeat_probability = 0.65 - 0.35 * progress;

    std::vector<NodeId> edge;
    std::vector<std::vector<NodeId>> history;
    std::unordered_set<NodeId> seen;
    for (size_t e = 0; e < num_edges; ++e) {
      const size_t home = rng.Zipf(num_communities, 0.8);
      edge.clear();
      if (!history.empty() && rng.Bernoulli(repeat_probability)) {
        edge = history[rng.UniformInt(history.size())];
        // Mutate one author to keep the edge distinct.
        if (edge.size() > 1 && rng.Bernoulli(0.5)) {
          edge.erase(edge.begin() +
                     static_cast<int64_t>(rng.UniformInt(edge.size())));
        } else {
          const auto& pool = community_members[home];
          if (!pool.empty()) {
            const NodeId v = pool[rng.UniformInt(pool.size())];
            if (std::find(edge.begin(), edge.end(), v) == edge.end()) {
              edge.push_back(v);
            }
          }
        }
      } else {
        const size_t size =
            1 + std::min<uint64_t>(rng.Poisson(size_mean), 20);
        seen.clear();
        size_t attempts = 0;
        while (edge.size() < size && attempts < 50 * size + 50) {
          ++attempts;
          NodeId v;
          if (rng.Bernoulli(cross)) {
            // Cross-community co-author: links otherwise-distant groups,
            // creating open (less clustered) triples.
            const size_t other = rng.UniformInt(num_communities);
            const auto& pool = community_members[other];
            if (pool.empty()) continue;
            v = pool[rng.UniformInt(pool.size())];
          } else {
            const auto& pool = community_members[home];
            if (pool.empty()) continue;
            v = pool[rng.UniformInt(pool.size())];
          }
          if (seen.insert(v).second) edge.push_back(v);
        }
      }
      if (edge.empty()) continue;
      trace.arrivals.push_back(TimedEdge{year, edge});
      history.push_back(edge);
      if (history.size() > 128) history.erase(history.begin());
    }
  }
  return trace;
}

Result<std::vector<Hypergraph>> GenerateTemporalCoauthorship(
    const TemporalConfig& config) {
  auto trace = GenerateTemporalTrace(config);
  if (!trace.ok()) return trace.status();

  // Group arrivals by year; the snapshot build dedups repeat
  // collaborations within the year, as before.
  std::vector<Hypergraph> years;
  years.reserve(config.num_years);
  size_t index = 0;
  const auto& arrivals = trace.value().arrivals;
  for (size_t year = 0; year < config.num_years; ++year) {
    HypergraphBuilder builder;
    while (index < arrivals.size() && arrivals[index].time == year) {
      const auto& nodes = arrivals[index].nodes;
      builder.AddEdge(std::span<const NodeId>(nodes.data(), nodes.size()));
      ++index;
    }
    BuildOptions options;
    options.num_nodes = config.num_nodes;
    auto graph = std::move(builder).Build(options);
    if (!graph.ok()) return graph.status();
    years.push_back(std::move(graph).value());
  }
  return years;
}

}  // namespace mochy
