#include "gen/generators.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "hypergraph/builder.h"

namespace mochy {

namespace {

/// Adds `count` distinct nodes drawn by `draw` into `edge` (which may
/// already contain members). Falls back to uniform draws if the sampler
/// keeps colliding.
template <typename DrawFn>
void FillDistinct(std::vector<NodeId>* edge, size_t count, size_t num_nodes,
                  Rng& rng, DrawFn&& draw) {
  std::unordered_set<NodeId> seen(edge->begin(), edge->end());
  const size_t target = std::min(edge->size() + count, num_nodes);
  size_t attempts = 0;
  const size_t max_attempts = 50 * count + 100;
  while (edge->size() < target && attempts < max_attempts) {
    ++attempts;
    const NodeId v = draw();
    if (seen.insert(v).second) edge->push_back(v);
  }
  // Deterministic fallback when the skewed sampler keeps colliding: take
  // the first unused ids after a random offset.
  const NodeId offset = static_cast<NodeId>(rng.UniformInt(num_nodes));
  for (NodeId step = 0; step < num_nodes && edge->size() < target; ++step) {
    const NodeId v = static_cast<NodeId>((offset + step) % num_nodes);
    if (seen.insert(v).second) edge->push_back(v);
  }
}

// ---------------------------------------------------------------------------
// Co-authorship: communities of researchers with recurring teams.
// ---------------------------------------------------------------------------
Hypergraph GenerateCoauthorship(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t num_communities = std::max<size_t>(4, n / 25);
  // Community membership: skewed community popularity.
  std::vector<std::vector<NodeId>> community_members(num_communities);
  std::vector<uint32_t> community_of(n);
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t c =
        static_cast<uint32_t>(rng.Zipf(num_communities, 0.8));
    community_of[v] = c;
    community_members[c].push_back(v);
  }
  // Per-community paper history for repeat collaborations.
  std::vector<std::vector<std::vector<NodeId>>> history(num_communities);

  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  for (size_t e = 0; e < config.num_edges; ++e) {
    const uint32_t c = static_cast<uint32_t>(rng.Zipf(num_communities, 0.8));
    const auto& members = community_members[c];
    edge.clear();
    const bool repeat = !history[c].empty() && rng.Bernoulli(0.45);
    if (repeat) {
      // Follow-up paper: mutate an earlier collaboration by one author.
      const auto& previous =
          history[c][rng.UniformInt(history[c].size())];
      edge = previous;
      if (edge.size() > 1 && rng.Bernoulli(0.5)) {
        edge.erase(edge.begin() + rng.UniformInt(edge.size()));
      } else {
        FillDistinct(&edge, 1, n, rng, [&]() -> NodeId {
          if (!members.empty() && rng.Bernoulli(0.9)) {
            return members[rng.UniformInt(members.size())];
          }
          return static_cast<NodeId>(rng.UniformInt(n));
        });
      }
    } else {
      const size_t size =
          1 + std::min<uint64_t>(rng.Poisson(1.8), 24);  // mean ~2.8, cap 25
      FillDistinct(&edge, size, n, rng, [&]() -> NodeId {
        if (!members.empty() && rng.Bernoulli(0.85)) {
          return members[rng.UniformInt(members.size())];
        }
        return static_cast<NodeId>(rng.UniformInt(n));
      });
    }
    if (edge.empty()) continue;
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
    auto& papers = history[c];
    papers.push_back(edge);
    if (papers.size() > 64) papers.erase(papers.begin());
  }
  BuildOptions options;
  options.num_nodes = n;
  auto result = std::move(builder).Build(options);
  MOCHY_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Contact: a small population in classrooms; nested local sub-groups.
// ---------------------------------------------------------------------------
Hypergraph GenerateContact(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t class_size = std::min<size_t>(std::max<size_t>(10, n / 10), n);
  const size_t num_classes = (n + class_size - 1) / class_size;

  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  for (size_t e = 0; e < config.num_edges; ++e) {
    const size_t cls = rng.UniformInt(num_classes);
    const size_t begin = cls * class_size;
    const size_t end = std::min(begin + class_size, n);
    const size_t span = end - begin;
    if (span == 0) continue;
    // Anchor a tight local window inside the class; group interactions are
    // repeated subsets of the same few people, giving intersection-heavy
    // triples. The anchor person is always present, so two sub-groups of
    // the same circle overlap (real contact groups are cliquish; disjoint
    // sub-groups of one larger group are rare).
    const size_t anchor = begin + rng.UniformInt(span);
    const size_t window = std::min<size_t>(8, span);
    const size_t size =
        std::min<size_t>(2 + rng.Geometric(0.55), std::min<size_t>(5, window));
    edge.clear();
    edge.push_back(static_cast<NodeId>(anchor));
    FillDistinct(&edge, size - 1, n, rng, [&]() -> NodeId {
      const size_t lo = anchor >= begin + window / 2 ? anchor - window / 2
                                                     : begin;
      const size_t hi = std::min(lo + window, end);
      return static_cast<NodeId>(lo + rng.UniformInt(hi - lo));
    });
    if (edge.size() < 2) continue;
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  BuildOptions options;
  options.num_nodes = n;
  auto result = std::move(builder).Build(options);
  MOCHY_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Email: hub senders with persistent contact lists.
// ---------------------------------------------------------------------------
Hypergraph GenerateEmail(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  // Persistent contact list per account, heavier for prolific senders.
  std::vector<std::vector<NodeId>> contacts(n);
  for (NodeId v = 0; v < n; ++v) {
    Rng local = rng.Fork(v);
    const size_t list_size =
        2 + static_cast<size_t>(local.Zipf(std::min<size_t>(n, 40), 0.6));
    std::unordered_set<NodeId> set;
    while (set.size() < std::min(list_size, n - 1)) {
      const NodeId u = static_cast<NodeId>(local.UniformInt(n));
      if (u != v) set.insert(u);
    }
    contacts[v].assign(set.begin(), set.end());
    std::sort(contacts[v].begin(), contacts[v].end());
  }

  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  for (size_t e = 0; e < config.num_edges; ++e) {
    const NodeId sender = static_cast<NodeId>(rng.Zipf(n, 1.1));
    const auto& list = contacts[sender];
    // Heavy-tailed recipient counts (mailing-list style mails reach ~25).
    const size_t receivers = std::min<size_t>(
        1 + rng.Geometric(0.30), std::max<size_t>(1, list.size()));
    edge.clear();
    edge.push_back(sender);
    // Receivers come mostly from the prefix of the contact list (frequent
    // correspondents), so emails from one sender nest inside each other.
    FillDistinct(&edge, receivers, n, rng, [&]() -> NodeId {
      const size_t prefix =
          1 + rng.Geometric(0.3) % std::max<size_t>(1, list.size());
      return list[rng.UniformInt(std::min(prefix, list.size()))];
    });
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  BuildOptions options;
  options.num_nodes = n;
  auto result = std::move(builder).Build(options);
  MOCHY_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Tags: few heavily-reused tags grouped into topics.
// ---------------------------------------------------------------------------
Hypergraph GenerateTags(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t num_topics = std::max<size_t>(6, n / 40);
  // Topic pools: tags drawn by global popularity (Zipf), so popular tags
  // appear in many topics and co-occur constantly.
  std::vector<std::vector<NodeId>> topics(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    Rng local = rng.Fork(t);
    std::unordered_set<NodeId> pool;
    const size_t pool_size = std::min<size_t>(12, n);
    while (pool.size() < pool_size) {
      pool.insert(static_cast<NodeId>(local.Zipf(n, 1.0)));
    }
    topics[t].assign(pool.begin(), pool.end());
    std::sort(topics[t].begin(), topics[t].end());
  }

  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  for (size_t e = 0; e < config.num_edges; ++e) {
    const size_t topic = rng.Zipf(num_topics, 0.9);
    const auto& pool = topics[topic];
    const size_t size = std::min<size_t>(
        2 + std::min<uint64_t>(rng.Poisson(1.2), 3), pool.size());  // 2..5
    edge.clear();
    FillDistinct(&edge, size, n, rng, [&]() -> NodeId {
      if (rng.Bernoulli(0.15)) {
        // Globally popular tag bleeding across topics.
        return static_cast<NodeId>(rng.Zipf(n, 1.2));
      }
      return pool[rng.Zipf(pool.size(), 0.8)];
    });
    if (edge.size() < 2) continue;
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  BuildOptions options;
  options.num_nodes = n;
  auto result = std::move(builder).Build(options);
  MOCHY_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Threads: users with power-law activity and subforum locality.
// ---------------------------------------------------------------------------
Hypergraph GenerateThreads(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t num_forums = std::max<size_t>(5, n / 60);
  std::vector<std::vector<NodeId>> forum_members(num_forums);
  for (NodeId v = 0; v < n; ++v) {
    // Users join 1-3 forums.
    const size_t joins = 1 + rng.UniformInt(3);
    for (size_t j = 0; j < joins; ++j) {
      forum_members[rng.Zipf(num_forums, 0.7)].push_back(v);
    }
  }

  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  for (size_t e = 0; e < config.num_edges; ++e) {
    const size_t forum = rng.Zipf(num_forums, 0.7);
    const auto& members = forum_members[forum];
    if (members.empty()) continue;
    const size_t size =
        2 + std::min<uint64_t>(rng.Zipf(20, 1.3), members.size() - 1);
    edge.clear();
    FillDistinct(&edge, std::min(size, members.size()), n, rng,
                 [&]() -> NodeId {
                   // Power-law participation inside the forum: a few very
                   // active users join most threads.
                   return members[rng.Zipf(members.size(), 1.1)];
                 });
    if (edge.size() < 2) continue;
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  BuildOptions options;
  options.num_nodes = n;
  auto result = std::move(builder).Build(options);
  MOCHY_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace

std::string DomainName(Domain domain) {
  switch (domain) {
    case Domain::kCoauthorship:
      return "coauth";
    case Domain::kContact:
      return "contact";
    case Domain::kEmail:
      return "email";
    case Domain::kTags:
      return "tags";
    case Domain::kThreads:
      return "threads";
  }
  return "unknown";
}

GeneratorConfig DefaultConfig(Domain domain, double scale) {
  GeneratorConfig config;
  config.domain = domain;
  auto scaled = [scale](size_t base) {
    return std::max<size_t>(8, static_cast<size_t>(base * scale));
  };
  switch (domain) {
    case Domain::kCoauthorship:
      config.num_nodes = scaled(2000);
      config.num_edges = scaled(4000);
      break;
    case Domain::kContact:
      // The paper's contact datasets are tiny but very dense
      // (|E|/|V| ~ 50 in contact-primary).
      config.num_nodes = scaled(240);
      config.num_edges = scaled(7000);
      break;
    case Domain::kEmail:
      // email-EU has |E|/|V| ~ 25.
      config.num_nodes = scaled(280);
      config.num_edges = scaled(5000);
      break;
    case Domain::kTags:
      config.num_nodes = scaled(800);
      config.num_edges = scaled(4000);
      break;
    case Domain::kThreads:
      config.num_nodes = scaled(900);
      config.num_edges = scaled(3500);
      break;
  }
  return config;
}

Result<Hypergraph> GenerateDomainHypergraph(const GeneratorConfig& config) {
  if (config.num_nodes == 0 || config.num_edges == 0) {
    return Status::InvalidArgument("generator needs nodes and edges");
  }
  switch (config.domain) {
    case Domain::kCoauthorship:
      return GenerateCoauthorship(config);
    case Domain::kContact:
      return GenerateContact(config);
    case Domain::kEmail:
      return GenerateEmail(config);
    case Domain::kTags:
      return GenerateTags(config);
    case Domain::kThreads:
      return GenerateThreads(config);
  }
  return Status::InvalidArgument("unknown domain");
}

std::vector<NamedDataset> GenerateBenchmarkSuite(uint64_t seed, double scale) {
  struct Spec {
    Domain domain;
    const char* name;
    double size_factor;
  };
  // Mirrors Table 2's composition: 3 coauth, 2 contact, 2 email, 2 tags,
  // 2 threads, with size variation inside each domain.
  const Spec specs[] = {
      {Domain::kCoauthorship, "coauth-alpha", 1.0},
      {Domain::kCoauthorship, "coauth-beta", 0.7},
      {Domain::kCoauthorship, "coauth-gamma", 0.45},
      {Domain::kContact, "contact-primary", 1.0},
      {Domain::kContact, "contact-high", 0.6},
      {Domain::kEmail, "email-corp", 1.0},
      {Domain::kEmail, "email-uni", 0.55},
      {Domain::kTags, "tags-forum", 1.0},
      {Domain::kTags, "tags-qa", 0.65},
      {Domain::kThreads, "threads-forum", 1.0},
      {Domain::kThreads, "threads-qa", 0.6},
  };
  std::vector<NamedDataset> suite;
  uint64_t index = 0;
  for (const Spec& spec : specs) {
    GeneratorConfig config =
        DefaultConfig(spec.domain, scale * spec.size_factor);
    config.seed = seed + 1000 * (++index);
    auto graph = GenerateDomainHypergraph(config);
    MOCHY_CHECK(graph.ok()) << graph.status().ToString();
    suite.push_back(NamedDataset{spec.name, DomainName(spec.domain),
                                 std::move(graph).value()});
  }
  return suite;
}

}  // namespace mochy
