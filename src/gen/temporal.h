// Temporal co-authorship generator for the evolution case study
// (paper Section 4.4, Figure 7).
//
// Produces one hypergraph per "year". Over the years, collaborations
// gradually reach across community boundaries and teams grow, which makes
// collaborations less clustered — exactly the mechanism the paper reads
// off Figure 7(b): the fraction of open h-motif instances rises over time.
#ifndef MOCHY_GEN_TEMPORAL_H_
#define MOCHY_GEN_TEMPORAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

struct TemporalConfig {
  size_t num_years = 33;        ///< paper: 1984..2016
  size_t num_nodes = 1500;      ///< author population
  size_t edges_first_year = 300;
  size_t edges_last_year = 900;  ///< linear growth in publications
  /// Probability that a collaboration crosses community boundaries in the
  /// first / last year (linear interpolation in between).
  double cross_community_first = 0.05;
  double cross_community_last = 0.55;
  uint64_t seed = 1;
};

/// One snapshot per year (not cumulative), matching the paper's "using the
/// publications in each year" setup.
Result<std::vector<Hypergraph>> GenerateTemporalCoauthorship(
    const TemporalConfig& config = {});

}  // namespace mochy

#endif  // MOCHY_GEN_TEMPORAL_H_
