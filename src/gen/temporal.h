/// \file
/// Temporal co-authorship generator for the evolution case study
/// (paper Section 4.4, Figure 7).
///
/// One generative process, two views. Over the "years", collaborations
/// gradually reach across community boundaries and teams grow, which
/// makes collaborations less clustered — exactly the mechanism the paper
/// reads off Figure 7(b): the fraction of open h-motif instances rises
/// over time. The process can be materialized as per-year snapshot
/// hypergraphs (the paper's "publications in each year" setup) or as a
/// timestamped hyperedge arrival trace (hypergraph/temporal_trace.h) for
/// the streaming engine to replay; both come from the same RNG stream,
/// so `GenerateTemporalCoauthorship(c)` equals
/// `GenerateTemporalTrace(c)` grouped by year and deduplicated.
#ifndef MOCHY_GEN_TEMPORAL_H_
#define MOCHY_GEN_TEMPORAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/temporal_trace.h"

namespace mochy {

/// Knobs of the temporal co-authorship process.
struct TemporalConfig {
  size_t num_years = 33;        ///< paper: 1984..2016
  size_t num_nodes = 1500;      ///< author population
  size_t edges_first_year = 300;  ///< publications in the first year
  size_t edges_last_year = 900;  ///< linear growth in publications
  /// Probability that a collaboration crosses community boundaries in the
  /// first year (linear interpolation to cross_community_last).
  double cross_community_first = 0.05;
  /// Cross-community probability in the last year.
  double cross_community_last = 0.55;
  uint64_t seed = 1;  ///< RNG seed; same seed, same output
};

/// One snapshot per year (not cumulative), matching the paper's "using the
/// publications in each year" setup. Duplicate collaborations within a
/// year are removed (the paper's Table 2 convention).
Result<std::vector<Hypergraph>> GenerateTemporalCoauthorship(
    const TemporalConfig& config = {});

/// The same process as a hyperedge arrival stream: one TimedEdge per
/// publication, stamped with its 0-based year, duplicates retained (a
/// stream has no dedup point). Feed it to ReplayTrace/StreamingEngine
/// (motif/streaming.h); window width 1 recovers the yearly cadence.
Result<TemporalTrace> GenerateTemporalTrace(const TemporalConfig& config = {});

/// The canonical Figure-7 workload at `scale`: author population and
/// yearly publication counts scale linearly (scale 1.0 = 3000 authors,
/// 900 growing to 2600 publications/year). Shared by
/// bench/figure7_evolution and `mochy_cli gen-trace` so the benchmarked
/// workload and the CLI-generated traces stay in lockstep.
TemporalConfig ScaledTemporalConfig(double scale, size_t num_years = 33);

}  // namespace mochy

#endif  // MOCHY_GEN_TEMPORAL_H_
