// Synthetic hypergraph generators standing in for the paper's 11 public
// datasets (Table 2), one generator per domain.
//
// The paper's discoveries are about *relative* structure: real vs.
// Chung-Lu-randomized counts (Table 3), and within-domain vs. cross-domain
// characteristic-profile similarity (Figures 1, 5, 6). Each generator is
// therefore built around the overlap mechanism the paper attributes to its
// domain, so those relative signals survive the substitution:
//
//  - co-authorship: recurring teams inside communities; new papers mutate
//    earlier collaborations, creating chains of strongly-overlapping
//    edges (the paper highlights motifs where one edge overlaps two other
//    overlapped edges).
//  - contact: a tiny node population in classrooms; group interactions are
//    nested sub-cliques, so intersections dominate private regions.
//  - email: hub senders with persistent contact lists; an email is
//    {sender} ∪ receivers, so one edge often nearly contains another
//    (the paper highlights "one hyperedge contains most nodes").
//  - tags: few, heavily reused tags in topical pools; many edges share
//    several tags, populating all-regions-non-empty motifs.
//  - threads: medium-sized user population with power-law activity and
//    subforum locality; looser overlaps than co-authorship.
//
// All generators are deterministic in (config, seed).
#ifndef MOCHY_GEN_GENERATORS_H_
#define MOCHY_GEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace mochy {

enum class Domain {
  kCoauthorship,
  kContact,
  kEmail,
  kTags,
  kThreads,
};

/// Lower-case domain name ("coauth", "contact", ...).
std::string DomainName(Domain domain);

struct GeneratorConfig {
  Domain domain = Domain::kCoauthorship;
  /// Node population. Domains have sensible scales (contact is small,
  /// co-authorship large); callers usually start from DefaultConfig().
  size_t num_nodes = 1000;
  /// Hyperedges drawn before duplicate removal.
  size_t num_edges = 5000;
  uint64_t seed = 1;
};

/// Domain-typical sizes, scaled by `scale` (1.0 = the defaults used by the
/// experiment harness; they keep each dataset in the sub-second range for
/// exact counting on a laptop).
GeneratorConfig DefaultConfig(Domain domain, double scale = 1.0);

/// Draws one synthetic hypergraph. Fails on degenerate configs (zero
/// nodes/edges).
Result<Hypergraph> GenerateDomainHypergraph(const GeneratorConfig& config);

/// A named dataset of the benchmark suite.
struct NamedDataset {
  std::string name;    ///< e.g. "coauth-alpha"
  std::string domain;  ///< e.g. "coauth"
  Hypergraph graph;
};

/// The 11-dataset suite mirroring Table 2 (3 co-authorship, 2 contact,
/// 2 email, 2 tags, 2 threads), with per-dataset seed/scale variation so
/// same-domain datasets are distinct hypergraphs.
std::vector<NamedDataset> GenerateBenchmarkSuite(uint64_t seed,
                                                 double scale = 1.0);

}  // namespace mochy

#endif  // MOCHY_GEN_GENERATORS_H_
