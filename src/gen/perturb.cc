#include "gen/perturb.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace mochy {

Result<std::vector<std::vector<NodeId>>> MakeFakeHyperedges(
    const Hypergraph& graph, const PerturbOptions& options) {
  if (options.replace_fraction < 0.0 || options.replace_fraction > 1.0) {
    return Status::InvalidArgument("replace_fraction must be in [0, 1]");
  }
  if (graph.num_nodes() < graph.max_edge_size() + 1) {
    return Status::FailedPrecondition(
        "not enough nodes to perturb the largest edge");
  }
  Rng rng(options.seed);
  std::vector<std::vector<NodeId>> fakes(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto span = graph.edge(e);
    std::vector<NodeId> members(span.begin(), span.end());
    const size_t replace = std::max<size_t>(
        1, static_cast<size_t>(
               std::llround(options.replace_fraction *
                            static_cast<double>(members.size()))));
    // Choose victim positions.
    const auto victims =
        rng.SampleDistinct(members.size(), std::min(replace, members.size()));
    std::unordered_set<NodeId> present(members.begin(), members.end());
    for (uint64_t pos : victims) {
      // Replacement: a uniformly random node not currently in the edge.
      NodeId candidate;
      do {
        candidate = static_cast<NodeId>(rng.UniformInt(graph.num_nodes()));
      } while (present.count(candidate) > 0);
      present.erase(members[pos]);
      present.insert(candidate);
      members[pos] = candidate;
    }
    std::sort(members.begin(), members.end());
    fakes[e] = std::move(members);
  }
  return fakes;
}

}  // namespace mochy
