#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace mochy {

namespace {
inline double Sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

double MlpClassifier::Forward(const std::vector<double>& x,
                              std::vector<double>* hidden) const {
  const size_t h = options_.hidden_units;
  hidden->assign(h, 0.0);
  for (size_t j = 0; j < h; ++j) {
    double z = b1_[j];
    const double* row = &w1_[j * input_width_];
    for (size_t f = 0; f < input_width_; ++f) z += row[f] * x[f];
    (*hidden)[j] = z > 0.0 ? z : 0.0;  // ReLU
  }
  double z = b2_;
  for (size_t j = 0; j < h; ++j) z += w2_[j] * (*hidden)[j];
  return Sigmoid(z);
}

Status MlpClassifier::Fit(const Dataset& train) {
  MOCHY_RETURN_IF_ERROR(train.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.hidden_units == 0 || options_.batch_size == 0) {
    return Status::InvalidArgument("hidden_units and batch_size must be > 0");
  }
  standardizer_ = Standardizer::Fit(train);
  Dataset data = train;
  standardizer_.Apply(&data);
  input_width_ = data.num_features();

  const size_t h = options_.hidden_units;
  Rng rng(options_.seed);
  // He initialization for the ReLU layer.
  const double scale1 =
      std::sqrt(2.0 / std::max<size_t>(1, input_width_));
  w1_.assign(h * input_width_, 0.0);
  for (double& w : w1_) w = rng.Normal() * scale1;
  b1_.assign(h, 0.0);
  const double scale2 = std::sqrt(2.0 / static_cast<double>(h));
  w2_.assign(h, 0.0);
  for (double& w : w2_) w = rng.Normal() * scale2;
  b2_ = 0.0;

  // Adam state over all parameters, flattened.
  const size_t params = w1_.size() + b1_.size() + w2_.size() + 1;
  std::vector<double> m(params, 0.0), v(params, 0.0), grad(params, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double beta1_t = 1.0, beta2_t = 1.0;

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden(h, 0.0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t stop = std::min(order.size(), start + options_.batch_size);
      std::fill(grad.begin(), grad.end(), 0.0);
      for (size_t idx = start; idx < stop; ++idx) {
        const auto& x = data.features[order[idx]];
        const double y = static_cast<double>(data.labels[order[idx]]);
        const double p = Forward(x, &hidden);
        const double delta_out = p - y;  // dLoss/dz for sigmoid + log loss
        // Output layer gradients.
        for (size_t j = 0; j < h; ++j) {
          grad[w1_.size() + h + j] += delta_out * hidden[j];
        }
        grad[params - 1] += delta_out;
        // Hidden layer gradients.
        for (size_t j = 0; j < h; ++j) {
          if (hidden[j] <= 0.0) continue;  // ReLU gate
          const double delta_h = delta_out * w2_[j];
          double* g_row = &grad[j * input_width_];
          for (size_t f = 0; f < input_width_; ++f) {
            g_row[f] += delta_h * x[f];
          }
          grad[w1_.size() + j] += delta_h;
        }
      }
      const double batch = static_cast<double>(stop - start);
      beta1_t *= beta1;
      beta2_t *= beta2;
      auto adam_step = [&](size_t index, double* param, double l2) {
        double g = grad[index] / batch + l2 * (*param);
        m[index] = beta1 * m[index] + (1 - beta1) * g;
        v[index] = beta2 * v[index] + (1 - beta2) * g * g;
        const double m_hat = m[index] / (1 - beta1_t);
        const double v_hat = v[index] / (1 - beta2_t);
        *param -= options_.learning_rate * m_hat / (std::sqrt(v_hat) + eps);
      };
      for (size_t i = 0; i < w1_.size(); ++i) {
        adam_step(i, &w1_[i], options_.l2);
      }
      for (size_t j = 0; j < h; ++j) {
        adam_step(w1_.size() + j, &b1_[j], 0.0);
      }
      for (size_t j = 0; j < h; ++j) {
        adam_step(w1_.size() + h + j, &w2_[j], options_.l2);
      }
      adam_step(params - 1, &b2_, 0.0);
    }
  }
  return Status::OK();
}

double MlpClassifier::PredictProba(std::span<const double> x) const {
  if (w1_.empty()) return 0.5;
  const std::vector<double> scaled = standardizer_.Transform(x);
  std::vector<double> padded = scaled;
  padded.resize(input_width_, 0.0);
  std::vector<double> hidden;
  return Forward(padded, &hidden);
}

}  // namespace mochy
