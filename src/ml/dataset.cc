#include "ml/dataset.h"

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace mochy {

Status Dataset::Validate() const {
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  const size_t width = num_features();
  for (const auto& row : features) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
  }
  return Status::OK();
}

Status TrainTestSplit(const Dataset& data, double test_fraction,
                      uint64_t seed, Dataset* train, Dataset* test) {
  MOCHY_RETURN_IF_ERROR(data.Validate());
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    return Status::InvalidArgument("test_fraction must be in [0, 1]");
  }
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(order);
  const size_t test_count =
      static_cast<size_t>(test_fraction * static_cast<double>(data.size()));
  train->features.clear();
  train->labels.clear();
  test->features.clear();
  test->labels.clear();
  for (size_t i = 0; i < order.size(); ++i) {
    Dataset* target = i < test_count ? test : train;
    target->features.push_back(data.features[order[i]]);
    target->labels.push_back(data.labels[order[i]]);
  }
  return Status::OK();
}

Standardizer Standardizer::Fit(const Dataset& data) {
  Standardizer s;
  const size_t width = data.num_features();
  s.mean_.assign(width, 0.0);
  s.inv_std_.assign(width, 1.0);
  if (data.size() == 0) return s;
  const double n = static_cast<double>(data.size());
  for (const auto& row : data.features) {
    for (size_t f = 0; f < width; ++f) s.mean_[f] += row[f];
  }
  for (double& m : s.mean_) m /= n;
  std::vector<double> var(width, 0.0);
  for (const auto& row : data.features) {
    for (size_t f = 0; f < width; ++f) {
      const double d = row[f] - s.mean_[f];
      var[f] += d * d;
    }
  }
  for (size_t f = 0; f < width; ++f) {
    const double v = var[f] / n;
    s.inv_std_[f] = v > 1e-12 ? 1.0 / std::sqrt(v) : 0.0;
  }
  return s;
}

std::vector<double> Standardizer::Transform(std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (size_t f = 0; f < row.size() && f < mean_.size(); ++f) {
    out[f] = (row[f] - mean_[f]) * inv_std_[f];
  }
  return out;
}

void Standardizer::Apply(Dataset* data) const {
  for (auto& row : data->features) {
    row = Transform(std::span<const double>(row.data(), row.size()));
  }
}

}  // namespace mochy
