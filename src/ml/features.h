// Hyperedge features for the Table 4 prediction task.
//
// Three feature sets per candidate hyperedge, exactly as in the paper:
//  - HM26: the number of each h-motif's instances containing the edge
//    (computed in a combined hypergraph of history + all candidates).
//  - HM7: the 7 HM26 features with the largest variance.
//  - HC: hand-crafted baseline — mean/max/min node degree, mean/max/min
//    node neighbor-count over the edge's members, plus the edge size.
#ifndef MOCHY_ML_FEATURES_H_
#define MOCHY_ML_FEATURES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "ml/dataset.h"
#include "motif/pattern.h"

namespace mochy {

struct PredictionTaskOptions {
  /// Fraction of members replaced when fabricating fake edges.
  double replace_fraction = 0.5;
  uint64_t seed = 1;
  /// Worker budget for projection + batched per-candidate counting;
  /// 0 means all cores (DefaultThreadCount()).
  size_t num_threads = 0;
};

/// One candidate classification task: the same rows/labels expressed under
/// the three feature sets (row i of each dataset is candidate i).
struct PredictionTask {
  Dataset hm26;
  Dataset hm7;
  Dataset hc;
  /// The HM26 feature indices (motif id - 1) retained by HM7.
  std::array<int, 7> hm7_feature_indices{};
};

/// Builds the task: for every candidate (a real hyperedge of the target
/// period), one fake counterpart is fabricated by member replacement, a
/// combined hypergraph (history + real + fake candidates) is formed, and
/// all three feature sets are extracted for real (label 1) and fake
/// (label 0) candidates.
Result<PredictionTask> BuildHyperedgePredictionTask(
    const Hypergraph& history,
    const std::vector<std::vector<NodeId>>& candidates,
    const PredictionTaskOptions& options = {});

/// HC features of each edge of `graph` (7 values per edge; see above).
std::vector<std::vector<double>> ComputeHandcraftedFeatures(
    const Hypergraph& graph);

}  // namespace mochy

#endif  // MOCHY_ML_FEATURES_H_
