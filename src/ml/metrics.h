// Classification metrics reported in Table 4: accuracy and AUC.
#ifndef MOCHY_ML_METRICS_H_
#define MOCHY_ML_METRICS_H_

#include <vector>

namespace mochy {

/// Fraction of scores on the correct side of 0.5. Empty input -> 0.
double Accuracy(const std::vector<int>& labels,
                const std::vector<double>& scores);

/// Area under the ROC curve via the rank statistic (Mann-Whitney U), with
/// midrank tie handling. Returns 0.5 when a class is absent.
double AucScore(const std::vector<int>& labels,
                const std::vector<double>& scores);

}  // namespace mochy

#endif  // MOCHY_ML_METRICS_H_
