#include "ml/random_forest.h"

#include <cmath>

#include "common/rng.h"

namespace mochy {

Status RandomForest::Fit(const Dataset& train) {
  MOCHY_RETURN_IF_ERROR(train.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.num_trees <= 0) {
    return Status::InvalidArgument("need at least one tree");
  }
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  Rng rng(options_.seed);
  const size_t n = train.size();
  for (int t = 0; t < options_.num_trees; ++t) {
    DecisionTreeOptions tree_options = options_.tree;
    if (tree_options.max_features == 0) {
      tree_options.max_features = static_cast<size_t>(
          std::max(1.0, std::round(std::sqrt(
                            static_cast<double>(train.num_features())))));
    }
    tree_options.seed = rng();
    // Bootstrap sample with replacement.
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = static_cast<size_t>(rng.UniformInt(n));
    }
    DecisionTree tree(tree_options);
    MOCHY_RETURN_IF_ERROR(tree.FitIndices(train, rows));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::PredictProba(std::span<const double> x) const {
  if (trees_.empty()) return 0.5;
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.PredictProba(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace mochy
