// k-nearest-neighbors on standardized features (Euclidean metric).
#ifndef MOCHY_ML_KNN_H_
#define MOCHY_ML_KNN_H_

#include "ml/classifier.h"

namespace mochy {

struct KnnOptions {
  size_t k = 5;
};

class KNearestNeighbors : public Classifier {
 public:
  explicit KNearestNeighbors(const KnnOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(std::span<const double> x) const override;

 private:
  KnnOptions options_;
  Standardizer standardizer_;
  Dataset train_;  // standardized copy
};

}  // namespace mochy

#endif  // MOCHY_ML_KNN_H_
