#include "ml/logistic.h"

#include <cmath>

#include "common/rng.h"

namespace mochy {

namespace {
inline double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

Status LogisticRegression::Fit(const Dataset& train) {
  MOCHY_RETURN_IF_ERROR(train.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  standardizer_ = Standardizer::Fit(train);
  Dataset data = train;
  standardizer_.Apply(&data);

  const size_t width = data.num_features();
  weights_.assign(width, 0.0);
  bias_ = 0.0;

  // Adam state.
  std::vector<double> m(width + 1, 0.0), v(width + 1, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double n = static_cast<double>(data.size());
  double beta1_t = 1.0, beta2_t = 1.0;

  std::vector<double> grad(width + 1, 0.0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < data.size(); ++i) {
      const auto& x = data.features[i];
      double z = bias_;
      for (size_t f = 0; f < width; ++f) z += weights_[f] * x[f];
      const double error = Sigmoid(z) - static_cast<double>(data.labels[i]);
      for (size_t f = 0; f < width; ++f) grad[f] += error * x[f];
      grad[width] += error;
    }
    for (size_t f = 0; f < width; ++f) {
      grad[f] = grad[f] / n + options_.l2 * weights_[f];
    }
    grad[width] /= n;

    beta1_t *= beta1;
    beta2_t *= beta2;
    for (size_t f = 0; f <= width; ++f) {
      m[f] = beta1 * m[f] + (1 - beta1) * grad[f];
      v[f] = beta2 * v[f] + (1 - beta2) * grad[f] * grad[f];
      const double m_hat = m[f] / (1 - beta1_t);
      const double v_hat = v[f] / (1 - beta2_t);
      const double step =
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + eps);
      if (f < width) {
        weights_[f] -= step;
      } else {
        bias_ -= step;
      }
    }
  }
  return Status::OK();
}

double LogisticRegression::PredictProba(std::span<const double> x) const {
  const std::vector<double> scaled = standardizer_.Transform(x);
  double z = bias_;
  for (size_t f = 0; f < weights_.size() && f < scaled.size(); ++f) {
    z += weights_[f] * scaled[f];
  }
  return Sigmoid(z);
}

}  // namespace mochy
