// L2-regularized logistic regression trained with Adam on standardized
// features (one of the five Table 4 classifiers).
#ifndef MOCHY_ML_LOGISTIC_H_
#define MOCHY_ML_LOGISTIC_H_

#include "ml/classifier.h"

namespace mochy {

struct LogisticOptions {
  double learning_rate = 0.05;
  double l2 = 1e-3;
  int epochs = 300;
  uint64_t seed = 1;
};

class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(const LogisticOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(std::span<const double> x) const override;

  /// Learned weights (standardized feature space); exposed for tests.
  const std::vector<double>& weights() const { return weights_; }

 private:
  LogisticOptions options_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace mochy

#endif  // MOCHY_ML_LOGISTIC_H_
