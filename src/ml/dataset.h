// Dense feature matrix + binary labels, train/test splitting, and feature
// standardization for the Table 4 hyperedge-prediction case study.
#ifndef MOCHY_ML_DATASET_H_
#define MOCHY_ML_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace mochy {

/// Row-major feature matrix with parallel 0/1 labels.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;

  size_t size() const { return features.size(); }
  size_t num_features() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Checks rectangular shape, label/feature alignment, binary labels.
  Status Validate() const;
};

/// Deterministic shuffled split; `test_fraction` of rows go to `test`.
Status TrainTestSplit(const Dataset& data, double test_fraction,
                      uint64_t seed, Dataset* train, Dataset* test);

/// Per-feature standardization (zero mean, unit variance) fitted on one
/// dataset and applied to others — constant features map to zero.
class Standardizer {
 public:
  static Standardizer Fit(const Dataset& data);

  std::vector<double> Transform(std::span<const double> row) const;
  void Apply(Dataset* data) const;

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace mochy

#endif  // MOCHY_ML_DATASET_H_
