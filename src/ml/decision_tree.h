// CART decision tree with Gini impurity (one of the Table 4 classifiers,
// also the base learner of the random forest).
#ifndef MOCHY_ML_DECISION_TREE_H_
#define MOCHY_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace mochy {

struct DecisionTreeOptions {
  int max_depth = 8;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 2;
  /// 0 = consider all features at each split; otherwise sample this many
  /// (random forests pass ~sqrt(#features)).
  size_t max_features = 0;
  uint64_t seed = 1;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(const DecisionTreeOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;

  /// Fit on a subset of row indices (bootstrap support for forests).
  Status FitIndices(const Dataset& train, const std::vector<size_t>& rows);

  double PredictProba(std::span<const double> x) const override;

  /// Number of nodes in the fitted tree (tests/inspection).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1, right = -1;
    double positive_fraction = 0.5;
  };

  int BuildNode(const Dataset& data, std::vector<size_t>& rows, size_t begin,
                size_t end, int depth, class Rng& rng);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace mochy

#endif  // MOCHY_ML_DECISION_TREE_H_
