// Random forest: bagged CART trees with per-split feature subsampling.
#ifndef MOCHY_ML_RANDOM_FOREST_H_
#define MOCHY_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"

namespace mochy {

struct RandomForestOptions {
  int num_trees = 40;
  DecisionTreeOptions tree;  ///< tree.max_features 0 => sqrt(#features)
  uint64_t seed = 1;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(const RandomForestOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(std::span<const double> x) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace mochy

#endif  // MOCHY_ML_RANDOM_FOREST_H_
