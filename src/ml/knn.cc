#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace mochy {

Status KNearestNeighbors::Fit(const Dataset& train) {
  MOCHY_RETURN_IF_ERROR(train.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  standardizer_ = Standardizer::Fit(train);
  train_ = train;
  standardizer_.Apply(&train_);
  return Status::OK();
}

double KNearestNeighbors::PredictProba(std::span<const double> x) const {
  if (train_.size() == 0) return 0.5;
  const std::vector<double> query = standardizer_.Transform(x);
  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int>> distances;  // (squared dist, label)
  distances.reserve(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    const auto& row = train_.features[i];
    double d = 0.0;
    for (size_t f = 0; f < row.size() && f < query.size(); ++f) {
      const double diff = row[f] - query[f];
      d += diff * diff;
    }
    distances.emplace_back(d, train_.labels[i]);
  }
  const size_t k = std::min(options_.k, distances.size());
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<int64_t>(k - 1),
                   distances.end());
  double positives = 0.0;
  for (size_t i = 0; i < k; ++i) positives += distances[i].second;
  return positives / static_cast<double>(k);
}

}  // namespace mochy
