// Multi-layer perceptron: one ReLU hidden layer, sigmoid output, Adam with
// mini-batches (mirrors the sklearn MLPClassifier used for Table 4).
#ifndef MOCHY_ML_MLP_H_
#define MOCHY_ML_MLP_H_

#include "ml/classifier.h"

namespace mochy {

struct MlpOptions {
  size_t hidden_units = 32;
  double learning_rate = 0.01;
  double l2 = 1e-4;
  int epochs = 120;
  size_t batch_size = 32;
  uint64_t seed = 1;
};

class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(const MlpOptions& options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(std::span<const double> x) const override;

 private:
  double Forward(const std::vector<double>& x,
                 std::vector<double>* hidden) const;

  MlpOptions options_;
  Standardizer standardizer_;
  size_t input_width_ = 0;
  // Row-major [hidden][input] weights, hidden biases, output weights/bias.
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
};

}  // namespace mochy

#endif  // MOCHY_ML_MLP_H_
