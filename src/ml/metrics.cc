#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

namespace mochy {

double Accuracy(const std::vector<int>& labels,
                const std::vector<double>& scores) {
  if (labels.empty() || labels.size() != scores.size()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const int predicted = scores[i] >= 0.5 ? 1 : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double AucScore(const std::vector<int>& labels,
                const std::vector<double>& scores) {
  if (labels.empty() || labels.size() != scores.size()) return 0.5;
  std::vector<size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Midranks over tied scores.
  std::vector<double> rank(labels.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }

  double positive_rank_sum = 0.0;
  size_t positives = 0;
  for (size_t idx = 0; idx < labels.size(); ++idx) {
    if (labels[idx] == 1) {
      positive_rank_sum += rank[idx];
      ++positives;
    }
  }
  const size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace mochy
