// Common interface of the five Table 4 classifiers.
#ifndef MOCHY_ML_CLASSIFIER_H_
#define MOCHY_ML_CLASSIFIER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace mochy {

/// Binary probabilistic classifier. Implementations are deterministic in
/// their configured seed.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset (validated by implementations).
  virtual Status Fit(const Dataset& train) = 0;

  /// P(label = 1 | x). Only valid after a successful Fit().
  virtual double PredictProba(std::span<const double> x) const = 0;

  /// Hard 0/1 prediction at the 0.5 threshold.
  int Predict(std::span<const double> x) const {
    return PredictProba(x) >= 0.5 ? 1 : 0;
  }

  /// Probabilities for every row of a dataset.
  std::vector<double> PredictAll(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.size());
    for (const auto& row : data.features) {
      out.push_back(
          PredictProba(std::span<const double>(row.data(), row.size())));
    }
    return out;
  }
};

}  // namespace mochy

#endif  // MOCHY_ML_CLASSIFIER_H_
