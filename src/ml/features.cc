#include "ml/features.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "gen/perturb.h"
#include "hypergraph/builder.h"
#include "hypergraph/projection.h"
#include "motif/batch.h"

namespace mochy {

namespace {

// Sub-hypergraph that decides a candidate's HM26 row: every instance
// containing hyperedge e has its other two member edges within two hops
// of e in the projection (either both overlap e, or one overlaps e and
// the other overlaps it), and classification reads only the member node
// sets, which the sub-hypergraph preserves verbatim. So the candidate's
// per-edge row over {e} ∪ N(e) ∪ N(N(e)) is bit-identical to its row in
// the full combined graph. The candidate is emitted first, so its id in
// the subgraph is always 0.
Result<Hypergraph> MakeCandidateNeighborhood(const Hypergraph& combined,
                                             const ProjectedGraph& projection,
                                             EdgeId candidate) {
  std::vector<EdgeId> closure;
  for (const auto& near : projection.neighbors(candidate)) {
    closure.push_back(near.edge);
    for (const auto& far : projection.neighbors(near.edge)) {
      closure.push_back(far.edge);
    }
  }
  std::sort(closure.begin(), closure.end());
  closure.erase(std::unique(closure.begin(), closure.end()), closure.end());
  closure.erase(std::remove(closure.begin(), closure.end(), candidate),
                closure.end());

  HypergraphBuilder builder;
  builder.AddEdge(combined.edge(candidate));
  for (EdgeId e : closure) builder.AddEdge(combined.edge(e));
  BuildOptions build;
  build.dedup_edges = false;  // duplicate hyperedges are distinct instances
  build.num_nodes = combined.num_nodes();
  return std::move(builder).Build(build);
}

}  // namespace

std::vector<std::vector<double>> ComputeHandcraftedFeatures(
    const Hypergraph& graph) {
  // Per-node neighbor counts (distinct co-members over incident edges).
  std::vector<double> node_neighbors(graph.num_nodes(), 0.0);
  std::unordered_set<NodeId> seen;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    seen.clear();
    for (EdgeId e : graph.edges_of(v)) {
      for (NodeId u : graph.edge(e)) {
        if (u != v) seen.insert(u);
      }
    }
    node_neighbors[v] = static_cast<double>(seen.size());
  }

  std::vector<std::vector<double>> rows(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto members = graph.edge(e);
    double deg_sum = 0.0, deg_max = 0.0, deg_min = 1e18;
    double nbr_sum = 0.0, nbr_max = 0.0, nbr_min = 1e18;
    for (NodeId v : members) {
      const double d = static_cast<double>(graph.degree(v));
      deg_sum += d;
      deg_max = std::max(deg_max, d);
      deg_min = std::min(deg_min, d);
      const double nb = node_neighbors[v];
      nbr_sum += nb;
      nbr_max = std::max(nbr_max, nb);
      nbr_min = std::min(nbr_min, nb);
    }
    const double size = static_cast<double>(members.size());
    rows[e] = {deg_sum / size, deg_max, deg_min,
               nbr_sum / size, nbr_max, nbr_min, size};
  }
  return rows;
}

Result<PredictionTask> BuildHyperedgePredictionTask(
    const Hypergraph& history,
    const std::vector<std::vector<NodeId>>& candidates,
    const PredictionTaskOptions& options) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate hyperedges");
  }

  // Fabricate one fake per candidate by member replacement. Reuse the
  // perturbation module by building a candidates-only hypergraph that
  // shares the node universe.
  BuildOptions candidate_build;
  candidate_build.dedup_edges = false;
  candidate_build.num_nodes = history.num_nodes();
  MOCHY_ASSIGN_OR_RETURN(Hypergraph candidate_graph,
                         MakeHypergraph(candidates, candidate_build));
  if (candidate_graph.num_edges() != candidates.size()) {
    return Status::InvalidArgument("candidate edges may not be empty");
  }
  PerturbOptions perturb;
  perturb.replace_fraction = options.replace_fraction;
  perturb.seed = options.seed;
  MOCHY_ASSIGN_OR_RETURN(std::vector<std::vector<NodeId>> fakes,
                         MakeFakeHyperedges(candidate_graph, perturb));

  // Combined hypergraph: history edges first, then real candidates, then
  // fakes. Dedup must stay off so edge ids stay aligned with rows.
  HypergraphBuilder builder;
  for (EdgeId e = 0; e < history.num_edges(); ++e) {
    const auto span = history.edge(e);
    builder.AddEdge(span);
  }
  for (const auto& edge : candidates) {
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  for (const auto& edge : fakes) {
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  BuildOptions combined_build;
  combined_build.dedup_edges = false;
  combined_build.num_nodes = history.num_nodes();
  MOCHY_ASSIGN_OR_RETURN(Hypergraph combined,
                         std::move(builder).Build(combined_build));

  auto projection = ProjectedGraph::Build(combined, options.num_threads);
  if (!projection.ok()) return projection.status();
  const auto hc_rows = ComputeHandcraftedFeatures(combined);

  // HM26 rows through the engine facade: one batch item per candidate
  // neighborhood (real and fake alike). Each item generates the
  // candidate's 2-hop sub-hypergraph on a batch worker and reports the
  // candidate's per-edge row via MotifEngine::CountPerEdge — bit-identical
  // to the row a full-graph ComputePerEdgeMotifCounts pass would produce
  // (see MakeCandidateNeighborhood), with per-item status isolation.
  const size_t base = history.num_edges();
  const size_t num_candidates = candidates.size();
  BatchOptions batch_options;
  batch_options.num_threads = options.num_threads;
  BatchRunner runner(batch_options);
  const ProjectedGraph& combined_projection = projection.value();
  for (size_t i = 0; i < 2 * num_candidates; ++i) {
    const EdgeId candidate = static_cast<EdgeId>(base + i);
    runner.AddGeneratedPerEdgeRow(
        [&combined, &combined_projection, candidate] {
          return MakeCandidateNeighborhood(combined, combined_projection,
                                           candidate);
        },
        /*target_edge=*/0, EngineOptions{},
        "candidate-" + std::to_string(i));
  }
  const BatchResult batch = runner.Run();
  if (Status status = batch.first_error(); !status.ok()) return status;

  PredictionTask task;
  auto append = [&](size_t item, int label) {
    const MotifCounts& row = batch.items[item].counts;
    std::vector<double> motifs(kNumHMotifs);
    for (int t = 1; t <= kNumHMotifs; ++t) motifs[t - 1] = row[t];
    task.hm26.features.push_back(std::move(motifs));
    task.hm26.labels.push_back(label);
    task.hc.features.push_back(hc_rows[base + item]);
    task.hc.labels.push_back(label);
  };
  for (size_t i = 0; i < num_candidates; ++i) append(i, 1);
  for (size_t i = 0; i < num_candidates; ++i) append(num_candidates + i, 0);

  // HM7: the seven highest-variance HM26 features.
  std::array<double, kNumHMotifs> mean{}, var{};
  const double n = static_cast<double>(task.hm26.size());
  for (const auto& row : task.hm26.features) {
    for (int f = 0; f < kNumHMotifs; ++f) mean[f] += row[f];
  }
  for (double& m : mean) m /= n;
  for (const auto& row : task.hm26.features) {
    for (int f = 0; f < kNumHMotifs; ++f) {
      const double d = row[f] - mean[f];
      var[f] += d * d;
    }
  }
  std::array<int, kNumHMotifs> order{};
  for (int f = 0; f < kNumHMotifs; ++f) order[f] = f;
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return var[a] > var[b]; });
  std::copy(order.begin(), order.begin() + 7,
            task.hm7_feature_indices.begin());
  for (const auto& row : task.hm26.features) {
    std::vector<double> selected(7);
    for (int f = 0; f < 7; ++f) {
      selected[f] = row[static_cast<size_t>(task.hm7_feature_indices[f])];
    }
    task.hm7.features.push_back(std::move(selected));
  }
  task.hm7.labels = task.hm26.labels;
  return task;
}

}  // namespace mochy
