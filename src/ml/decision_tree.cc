#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace mochy {

namespace {

/// Gini impurity of a split given positive/total counts on each side.
double SplitGini(double left_pos, double left_n, double right_pos,
                 double right_n) {
  auto gini = [](double pos, double n) {
    if (n <= 0.0) return 0.0;
    const double p = pos / n;
    return 2.0 * p * (1.0 - p);
  };
  const double total = left_n + right_n;
  return (left_n / total) * gini(left_pos, left_n) +
         (right_n / total) * gini(right_pos, right_n);
}

}  // namespace

Status DecisionTree::Fit(const Dataset& train) {
  std::vector<size_t> rows(train.size());
  std::iota(rows.begin(), rows.end(), 0);
  return FitIndices(train, rows);
}

Status DecisionTree::FitIndices(const Dataset& train,
                                const std::vector<size_t>& row_subset) {
  MOCHY_RETURN_IF_ERROR(train.Validate());
  if (row_subset.empty()) {
    return Status::InvalidArgument("empty training subset");
  }
  nodes_.clear();
  std::vector<size_t> rows = row_subset;
  Rng rng(options_.seed);
  BuildNode(train, rows, 0, rows.size(), 0, rng);
  return Status::OK();
}

int DecisionTree::BuildNode(const Dataset& data, std::vector<size_t>& rows,
                            size_t begin, size_t end, int depth, Rng& rng) {
  const size_t count = end - begin;
  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) positives += data.labels[rows[i]];

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].positive_fraction =
      static_cast<double>(positives) / static_cast<double>(count);

  const bool pure = positives == 0 || positives == count;
  if (pure || depth >= options_.max_depth ||
      count < options_.min_samples_split) {
    return node_index;
  }

  // Candidate features: all, or a random subset (forest mode).
  const size_t width = data.num_features();
  std::vector<size_t> candidates;
  if (options_.max_features == 0 || options_.max_features >= width) {
    candidates.resize(width);
    std::iota(candidates.begin(), candidates.end(), 0);
  } else {
    const auto sampled = rng.SampleDistinct(width, options_.max_features);
    candidates.assign(sampled.begin(), sampled.end());
  }

  double best_gini = 1.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, int>> values;  // (feature value, label)
  values.reserve(count);
  for (size_t feature : candidates) {
    values.clear();
    for (size_t i = begin; i < end; ++i) {
      values.emplace_back(data.features[rows[i]][feature],
                          data.labels[rows[i]]);
    }
    std::sort(values.begin(), values.end());
    double left_pos = 0.0, left_n = 0.0;
    const double total_pos = static_cast<double>(positives);
    const double total_n = static_cast<double>(count);
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      left_pos += values[i].second;
      left_n += 1.0;
      if (values[i].first == values[i + 1].first) continue;  // no boundary
      if (left_n < options_.min_samples_leaf ||
          total_n - left_n < options_.min_samples_leaf) {
        continue;
      }
      const double g =
          SplitGini(left_pos, left_n, total_pos - left_pos, total_n - left_n);
      if (g < best_gini - 1e-12) {
        best_gini = g;
        best_feature = static_cast<int>(feature);
        best_threshold = (values[i].first + values[i + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_index;  // no useful split

  // Partition rows in place around the threshold.
  const auto middle = std::stable_partition(
      rows.begin() + static_cast<int64_t>(begin),
      rows.begin() + static_cast<int64_t>(end), [&](size_t row) {
        return data.features[row][static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const size_t split =
      static_cast<size_t>(middle - rows.begin());
  if (split == begin || split == end) return node_index;  // degenerate

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int left = BuildNode(data, rows, begin, split, depth + 1, rng);
  nodes_[node_index].left = left;
  const int right = BuildNode(data, rows, split, end, depth + 1, rng);
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::PredictProba(std::span<const double> x) const {
  if (nodes_.empty()) return 0.5;
  int index = 0;
  while (nodes_[static_cast<size_t>(index)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    const size_t f = static_cast<size_t>(node.feature);
    const double value = f < x.size() ? x[f] : 0.0;
    index = value <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(index)].positive_fraction;
}

}  // namespace mochy
