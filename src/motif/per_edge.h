// Per-hyperedge motif participation counts: for each hyperedge e, the
// number of instances of each h-motif that contain e. These are the HM26
// features of the paper's hyperedge-prediction case study (Table 4).
#ifndef MOCHY_MOTIF_PER_EDGE_H_
#define MOCHY_MOTIF_PER_EDGE_H_

#include <array>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/pattern.h"

namespace mochy {

/// row[e][t-1] = number of h-motif-t instances containing hyperedge e.
/// Exact (via full enumeration); every instance contributes to the rows of
/// its three member hyperedges.
std::vector<std::array<double, kNumHMotifs>> ComputePerEdgeMotifCounts(
    const Hypergraph& graph, const ProjectedGraph& projection);

}  // namespace mochy

#endif  // MOCHY_MOTIF_PER_EDGE_H_
