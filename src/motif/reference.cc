#include "motif/reference.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace mochy::reference {

MotifCounts CountMotifsExact(const Hypergraph& graph,
                             const ProjectedGraph& projection,
                             size_t num_threads) {
  const size_t m = graph.num_edges();
  MOCHY_CHECK(projection.num_edges() == m)
      << "projection does not match hypergraph";
  if (num_threads == 0) num_threads = DefaultThreadCount();

  std::vector<MotifCounts> partial(num_threads);
  // Work stealing over hubs, one atomic claim per hub: per-hub work is
  // |N_e|^2 and projected degrees are heavy-tailed, so static blocks would
  // balance poorly.
  std::atomic<size_t> next_hub{0};
  auto worker = [&](size_t thread) {
    MotifCounts& local = partial[thread];
    while (true) {
      const size_t i = next_hub.fetch_add(1, std::memory_order_relaxed);
      if (i >= m) return;
      const EdgeId ei = static_cast<EdgeId>(i);
      const auto nbrs = projection.neighbors(ei);
      const uint64_t size_i = graph.edge_size(ei);
      for (size_t a = 0; a < nbrs.size(); ++a) {
        const EdgeId ej = nbrs[a].edge;
        const uint64_t w_ij = nbrs[a].weight;
        const uint64_t size_j = graph.edge_size(ej);
        for (size_t b = a + 1; b < nbrs.size(); ++b) {
          const EdgeId ek = nbrs[b].edge;
          const uint64_t w_jk = projection.Weight(ej, ek);
          // Count open instances at their unique hub; closed instances
          // only from the smallest hub id (Algorithm 2, line 4).
          if (w_jk != 0 && ei >= std::min(ej, ek)) continue;
          const uint64_t w_ik = nbrs[b].weight;
          const uint64_t size_k = graph.edge_size(ek);
          const uint64_t w_ijk =
              w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
          // Triples containing duplicated hyperedges correspond to no
          // h-motif (paper Figure 4) and yield id 0: skip them. They can
          // occur when duplicate removal is disabled (e.g. null models).
          const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij,
                                             w_jk, w_ik, w_ijk);
          if (id != 0) local[id] += 1.0;
        }
      }
    }
  };
  ParallelWorkers(num_threads, worker);

  MotifCounts total;
  for (const MotifCounts& part : partial) total += part;
  return total;
}

namespace {

/// Processes one sampled hyperedge e_i: visits every h-motif instance that
/// contains e_i and increments raw counts. `stamp` is an |E|-sized scratch
/// with stamp[e] = omega(e_i, e) for e in N(e_i), 0 elsewhere.
void ProcessSampledEdge(const Hypergraph& graph,
                        const ProjectedGraph& projection, EdgeId ei,
                        std::vector<uint32_t>& stamp, MotifCounts& raw) {
  const auto nbrs = projection.neighbors(ei);
  for (const Neighbor& n : nbrs) stamp[n.edge] = n.weight;
  const uint64_t size_i = graph.edge_size(ei);

  for (size_t a = 0; a < nbrs.size(); ++a) {
    const EdgeId ej = nbrs[a].edge;
    const uint64_t w_ij = nbrs[a].weight;
    const uint64_t size_j = graph.edge_size(ej);
    // Case 1: e_k also a neighbor of e_i. Enumerate unordered pairs once
    // (j < k by position, Algorithm 4 line 6).
    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      const EdgeId ek = nbrs[b].edge;
      const uint64_t w_ik = nbrs[b].weight;
      const uint64_t size_k = graph.edge_size(ek);
      const uint64_t w_jk = projection.Weight(ej, ek);
      const uint64_t w_ijk =
          w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
      // id 0 = triple with duplicated hyperedges (no h-motif, Figure 4).
      const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk,
                                         w_ik, w_ijk);
      if (id != 0) raw[id] += 1.0;
    }
    // Case 2: e_k in N(e_j) \ N(e_i) \ {e_i}: an open instance whose hub
    // is e_j (e_i and e_k are disjoint). Counted for every such e_j.
    for (const Neighbor& nj : projection.neighbors(ej)) {
      const EdgeId ek = nj.edge;
      if (ek == ei || stamp[ek] != 0) continue;  // in N(e_i): handled above
      const uint64_t size_k = graph.edge_size(ek);
      const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij,
                                         /*w_jk=*/nj.weight, /*w_ik=*/0,
                                         /*w_ijk=*/0);
      if (id != 0) raw[id] += 1.0;
    }
  }
  for (const Neighbor& n : nbrs) stamp[n.edge] = 0;
}

/// Visits every h-motif instance containing the wedge {e_i, e_j} and
/// increments raw counts. `stamp_i` / `stamp_j` are |E|-sized scratch
/// arrays (all zero on entry and exit).
void ProcessWedge(const Hypergraph& graph, EdgeId ei, EdgeId ej,
                  uint64_t w_ij, std::span<const Neighbor> nbrs_i,
                  std::span<const Neighbor> nbrs_j,
                  std::vector<uint32_t>& stamp_i,
                  std::vector<uint32_t>& stamp_j, MotifCounts& raw) {
  const uint64_t size_i = graph.edge_size(ei);
  const uint64_t size_j = graph.edge_size(ej);
  for (const Neighbor& n : nbrs_j) stamp_j[n.edge] = n.weight;

  // e_k in N(e_i): w_ik from the list, w_jk from the stamp.
  for (const Neighbor& n : nbrs_i) {
    const EdgeId ek = n.edge;
    if (ek == ej) continue;
    stamp_i[ek] = n.weight;
    const uint64_t w_ik = n.weight;
    const uint64_t w_jk = stamp_j[ek];
    const uint64_t size_k = graph.edge_size(ek);
    const uint64_t w_ijk =
        w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
    // id 0 = triple with duplicated hyperedges (no h-motif, Figure 4).
    const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk,
                                       w_ik, w_ijk);
    if (id != 0) raw[id] += 1.0;
  }
  // e_k in N(e_j) \ N(e_i): w_ik = 0, hence open with hub e_j.
  for (const Neighbor& n : nbrs_j) {
    const EdgeId ek = n.edge;
    if (ek == ei || stamp_i[ek] != 0) continue;
    const uint64_t size_k = graph.edge_size(ek);
    const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij,
                                       /*w_jk=*/n.weight, /*w_ik=*/0,
                                       /*w_ijk=*/0);
    if (id != 0) raw[id] += 1.0;
  }

  for (const Neighbor& n : nbrs_i) stamp_i[n.edge] = 0;
  for (const Neighbor& n : nbrs_j) stamp_j[n.edge] = 0;
}

/// Applies the Theorem-4 rescaling: raw counts -> unbiased estimates.
void RescaleWedgeEstimates(uint64_t num_wedges, uint64_t num_samples,
                           MotifCounts* counts) {
  const double wedges = static_cast<double>(num_wedges);
  const double r = static_cast<double>(num_samples);
  for (int id = 1; id <= kNumHMotifs; ++id) {
    const double wedges_per_instance = IsOpenMotif(id) ? 2.0 : 3.0;
    (*counts)[id] *= wedges / (wedges_per_instance * r);
  }
}

}  // namespace

MotifCounts CountMotifsEdgeSample(const Hypergraph& graph,
                                  const ProjectedGraph& projection,
                                  const MochyAOptions& options) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  const size_t m = graph.num_edges();
  MotifCounts total;
  if (m == 0 || options.num_samples == 0) return total;

  size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  std::vector<MotifCounts> partial(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    std::vector<uint32_t> stamp(m, 0);
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      // Per-sample fork: the estimate is identical for any thread count.
      Rng rng = base.Fork(n);
      const EdgeId ei = static_cast<EdgeId>(rng.UniformInt(m));
      ProcessSampledEdge(graph, projection, ei, stamp, partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  // Rescale: each instance is counted once per sampled member hyperedge,
  // i.e. 3s/|E| times in expectation.
  total *=
      static_cast<double>(m) / (3.0 * static_cast<double>(options.num_samples));
  return total;
}

MotifCounts CountMotifsWedgeSample(const Hypergraph& graph,
                                   const ProjectedGraph& projection,
                                   const MochyAPlusOptions& options) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  const size_t m = graph.num_edges();
  MotifCounts total;
  const uint64_t wedges = projection.num_wedges();
  if (m == 0 || wedges == 0 || options.num_samples == 0) return total;

  size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  std::vector<MotifCounts> partial(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    std::vector<uint32_t> stamp_i(m, 0), stamp_j(m, 0);
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      Rng rng = base.Fork(n);
      const uint64_t k = rng.UniformInt(wedges);
      const auto [ei, ej] = projection.WedgeAt(k);
      const uint64_t w_ij = projection.Weight(ei, ej);
      MOCHY_DCHECK(w_ij > 0);
      ProcessWedge(graph, ei, ej, w_ij, projection.neighbors(ei),
                   projection.neighbors(ej), stamp_i, stamp_j,
                   partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  RescaleWedgeEstimates(wedges, options.num_samples, &total);
  return total;
}

}  // namespace mochy::reference
