/// \file
/// Batched multi-graph h-motif counting on one shared thread pool.
///
/// A characteristic profile needs counts for the real hypergraph plus five
/// or more null-model randomizations; parameter sweeps need many seeds or
/// sample budgets of one graph. Running a separate MotifEngine per graph
/// serializes the projection builds and leaves workers idle between runs.
/// BatchRunner instead feeds every item — optionally including the null
/// graph *generation* — through one work queue on the shared thread pool,
/// so projection builds of later items overlap with the counting of
/// earlier ones and per-item statistics are gathered in one place.
///
/// \par Determinism
/// Batched results are bit-identical to running one MotifEngine per graph
/// sequentially with the same per-item options: every counting strategy is
/// seed-deterministic regardless of worker count (see motif/engine.h), and
/// the batch never changes an item's seed or sample count.
///
/// \par Thread safety
/// A BatchRunner is not thread-safe; build and Run() it from one thread.
/// Run() itself fans out over the shared pool internally and may be called
/// repeatedly (items are retained).
///
/// \par Scratch reuse
/// The counting kernels take their scratch from per-thread arenas
/// (common/scratch_arena.h) that live as long as the pool workers, so
/// consecutive batch items on one worker reuse the same stamp arrays —
/// no per-item scratch allocation, only an O(1) epoch bump.
#ifndef MOCHY_MOTIF_BATCH_H_
#define MOCHY_MOTIF_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "motif/engine.h"

namespace mochy {

/// What a batch item computes and reports in BatchItemResult::counts.
enum class BatchResultMode {
  /// Global counts or estimates of all 26 h-motifs (MotifEngine::Count).
  kCounts,
  /// The exact per-edge participation row of BatchItem::target_edge
  /// (MotifEngine::CountPerEdge): counts[t] = instances of motif t that
  /// contain the target hyperedge. This is how the Table-4 feature
  /// extractor batches one item per candidate neighborhood.
  kPerEdgeRow,
};

/// One unit of batched work: a hypergraph to count plus the EngineOptions
/// to count it with. Exactly one of `graph` / `make` is set: `graph`
/// borrows an existing hypergraph (it must outlive the Run() call), while
/// `make` generates one on a batch worker — this is how null-model
/// generation is overlapped with counting.
struct BatchItem {
  /// Borrowed input graph; nullptr when `make` is set.
  const Hypergraph* graph = nullptr;
  /// Generator for an owned input graph; empty when `graph` is set. A
  /// failed generation is reported in the item's BatchItemResult::status.
  std::function<Result<Hypergraph>()> make;
  /// Per-item strategy, seed, sample budget, projection policy and memory
  /// budget, … (engine.h). Projection policy, memory budget and spill_dir
  /// are forwarded per item — one batch can mix materialized and
  /// memory-bounded lazy items (several lazy items may share one
  /// spill_dir; each engine's logs are uniquely named scratch), and each
  /// lazy item's EngineStats carries its hit rate, resident bytes and
  /// spill/readmit counters. The batch scheduler owns the thread
  /// budget, so `options.num_threads` is overridden: 1 when the batch
  /// parallelizes across items, the full BatchOptions::num_threads budget
  /// when items run inline (single item, single worker, or far more
  /// workers than items).
  EngineOptions options;
  /// What this item computes (global counts, or one per-edge row).
  BatchResultMode mode = BatchResultMode::kCounts;
  /// kPerEdgeRow only: the hyperedge (by id in this item's graph) whose
  /// row is reported. Out-of-range ids fail the item's status.
  EdgeId target_edge = 0;
  /// Caller-chosen tag echoed back in BatchItemResult::label.
  std::string label;
};

/// Outcome of one BatchItem. `counts` and `stats` are meaningful only when
/// `status.ok()`.
struct BatchItemResult {
  /// Per-item error (generation, projection build, or counting). A failed
  /// item never poisons the batch: all other items still run and report.
  Status status = Status::OK();
  /// Counts or estimates of all 26 h-motifs — or, for a
  /// BatchResultMode::kPerEdgeRow item, the target hyperedge's per-edge
  /// participation row (counts[t] = motif-t instances containing it).
  MotifCounts counts;
  /// Uniform per-run statistics from the engine (strategy, elapsed, …).
  EngineStats stats;
  /// Seconds spent generating the graph (0 for borrowed graphs).
  double generate_seconds = 0.0;
  /// Seconds spent building the projected graph for this item.
  double projection_seconds = 0.0;
  /// Echo of BatchItem::label.
  std::string label;
};

/// Aggregate statistics over one Run() call.
struct BatchStats {
  /// Number of items in the batch.
  size_t num_items = 0;
  /// Items whose BatchItemResult::status is not OK.
  size_t num_failed = 0;
  /// Batch-level workers used; 1 when items ran inline (sequentially,
  /// each with intra-graph parallelism) instead of item-parallel.
  size_t num_threads = 1;
  /// Wall-clock seconds for the whole Run() call.
  double elapsed_seconds = 0.0;
  /// Sum over items of generate + projection + counting seconds.
  double busy_seconds = 0.0;
  /// busy_seconds / (elapsed_seconds * num_threads) — fraction of the
  /// worker-seconds the batch kept busy; 0 when elapsed is 0.
  double pool_utilization = 0.0;

  /// One-line summary ("items=6 failed=0 threads=4 elapsed=0.8s ...").
  std::string ToString() const;
};

/// Results of a Run() call, in the order the items were added.
struct BatchResult {
  /// Per-item outcomes, index-aligned with the Add() calls.
  std::vector<BatchItemResult> items;
  /// Aggregate batch statistics.
  BatchStats stats;

  /// True when every item succeeded.
  bool all_ok() const { return stats.num_failed == 0; }
  /// The first non-OK item status, or OK when all_ok().
  Status first_error() const;
};

/// Knobs shared by the whole batch.
struct BatchOptions {
  /// Worker budget for the batch; 0 means DefaultThreadCount().
  size_t num_threads = 0;
  /// Process items longest-first (estimated by pin count) so a large
  /// trailing item cannot straggle the batch. Results keep Add() order
  /// regardless; disable to process in Add() order.
  bool longest_first = true;
};

/// Counts many hypergraphs in one call on the shared thread pool.
///
/// Usage:
/// \code
///   BatchRunner runner(BatchOptions{.num_threads = 8});
///   runner.Add(real_graph, options, "real");
///   runner.AddGenerated([&] { return GenerateChungLu(real_graph, cl); },
///                       options, "null-0");
///   BatchResult result = runner.Run();
/// \endcode
class BatchRunner {
 public:
  /// Creates an empty batch with the given shared knobs.
  explicit BatchRunner(BatchOptions options = {});

  /// Adds a borrowed graph; it must outlive Run(). Returns the item index.
  size_t Add(const Hypergraph& graph, EngineOptions options = {},
             std::string label = {});

  /// Adds a generated graph: `make` runs on a batch worker, so generation
  /// overlaps with other items' counting. Returns the item index.
  size_t AddGenerated(std::function<Result<Hypergraph>()> make,
                      EngineOptions options = {}, std::string label = {});

  /// Adds a generated graph whose result is the per-edge row of
  /// `target_edge` (BatchResultMode::kPerEdgeRow) instead of global
  /// counts: the item's BatchItemResult::counts[t] is the number of
  /// motif-t instances containing that hyperedge. The Table-4 feature
  /// extractor uses this with one generated candidate-neighborhood
  /// subgraph per item. Returns the item index.
  size_t AddGeneratedPerEdgeRow(std::function<Result<Hypergraph>()> make,
                                EdgeId target_edge, EngineOptions options = {},
                                std::string label = {});

  /// Number of items added so far.
  size_t size() const { return items_.size(); }

  /// Runs every item and blocks until all finish. Per-item failures are
  /// reported in BatchItemResult::status; Run() itself never fails.
  BatchResult Run() const;

 private:
  BatchOptions options_;
  std::vector<BatchItem> items_;
};

/// Convenience wrapper: one Run() over `graphs`, all counted with the same
/// `options`. Item i borrows graphs[i] (no nulls allowed).
BatchResult CountBatch(const std::vector<const Hypergraph*>& graphs,
                       const EngineOptions& options = {},
                       const BatchOptions& batch_options = {});

}  // namespace mochy

#endif  // MOCHY_MOTIF_BATCH_H_
