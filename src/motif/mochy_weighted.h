// MoCHy-A+W: projection-free h-motif estimation via weighted hyperwedge
// sampling (an extension beyond the paper; see DESIGN.md).
//
// The paper's on-the-fly MoCHy-A+ avoids *storing* the projected graph but
// still needs one full pass to index the wedge set for uniform sampling.
// This variant removes that pass entirely:
//
//   1. A hyperwedge is drawn with probability proportional to its weight
//      omega(i,j) = |e_i ∩ e_j| by sampling a node v with probability
//      proportional to C(|E_v|, 2) (alias table, O(|V|) setup) and then a
//      uniform pair of v's incident edges. Summing over shared nodes, the
//      pair {e_i, e_j} is hit with probability omega_ij / W where
//      W = sum_v C(|E_v|, 2) is known exactly.
//   2. Each instance found around the wedge is Horvitz-Thompson weighted
//      by W / (omega_ij * w[t] * r), which makes every per-motif estimate
//      exactly unbiased — no |∧| needed.
//
// As a by-product, |∧| itself is estimated unbiasedly as (1/r) Σ W/omega.
#ifndef MOCHY_MOTIF_MOCHY_WEIGHTED_H_
#define MOCHY_MOTIF_MOCHY_WEIGHTED_H_

#include <cstdint>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "motif/counts.h"

namespace mochy {

struct MochyWeightedOptions {
  uint64_t num_samples = 1000;  ///< r — weighted wedge samples
  uint64_t seed = 1;
};

struct MochyWeightedResult {
  MotifCounts counts;           ///< unbiased per-motif estimates
  double estimated_num_wedges;  ///< unbiased estimate of |∧|
  uint64_t total_weight;        ///< W = Σ_v C(|E_v|, 2), exact
};

/// Runs the projection-free estimator. Fails when the hypergraph has no
/// hyperwedges (no node with degree >= 2).
Result<MochyWeightedResult> CountMotifsWeightedWedge(
    const Hypergraph& graph, const MochyWeightedOptions& options = {});

}  // namespace mochy

#endif  // MOCHY_MOTIF_MOCHY_WEIGHTED_H_
