#include "motif/mochy_a.h"

#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace mochy {

namespace {

/// Processes one sampled hyperedge e_i: visits every h-motif instance that
/// contains e_i and increments raw counts. `stamp` is an |E|-sized scratch
/// with stamp[e] = omega(e_i, e) for e in N(e_i), 0 elsewhere.
void ProcessSampledEdge(const Hypergraph& graph,
                        const ProjectedGraph& projection, EdgeId ei,
                        std::vector<uint32_t>& stamp, MotifCounts& raw) {
  const auto nbrs = projection.neighbors(ei);
  for (const Neighbor& n : nbrs) stamp[n.edge] = n.weight;
  const uint64_t size_i = graph.edge_size(ei);

  for (size_t a = 0; a < nbrs.size(); ++a) {
    const EdgeId ej = nbrs[a].edge;
    const uint64_t w_ij = nbrs[a].weight;
    const uint64_t size_j = graph.edge_size(ej);
    // Case 1: e_k also a neighbor of e_i. Enumerate unordered pairs once
    // (j < k by position, Algorithm 4 line 6).
    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      const EdgeId ek = nbrs[b].edge;
      const uint64_t w_ik = nbrs[b].weight;
      const uint64_t size_k = graph.edge_size(ek);
      const uint64_t w_jk = projection.Weight(ej, ek);
      const uint64_t w_ijk =
          w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
      // id 0 = triple with duplicated hyperedges (no h-motif, Figure 4).
      const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk,
                                         w_ik, w_ijk);
      if (id != 0) raw[id] += 1.0;
    }
    // Case 2: e_k in N(e_j) \ N(e_i) \ {e_i}: an open instance whose hub
    // is e_j (e_i and e_k are disjoint). Counted for every such e_j.
    for (const Neighbor& nj : projection.neighbors(ej)) {
      const EdgeId ek = nj.edge;
      if (ek == ei || stamp[ek] != 0) continue;  // in N(e_i): handled above
      const uint64_t size_k = graph.edge_size(ek);
      const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij,
                                         /*w_jk=*/nj.weight, /*w_ik=*/0,
                                         /*w_ijk=*/0);
      if (id != 0) raw[id] += 1.0;
    }
  }
  for (const Neighbor& n : nbrs) stamp[n.edge] = 0;
}

}  // namespace

MotifCounts CountMotifsEdgeSample(const Hypergraph& graph,
                                  const ProjectedGraph& projection,
                                  const MochyAOptions& options) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  const size_t m = graph.num_edges();
  MotifCounts total;
  if (m == 0 || options.num_samples == 0) return total;

  size_t num_threads = options.num_threads == 0 ? 1 : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  std::vector<MotifCounts> partial(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    std::vector<uint32_t> stamp(m, 0);
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      // Per-sample fork: the estimate is identical for any thread count.
      Rng rng = base.Fork(n);
      const EdgeId ei = static_cast<EdgeId>(rng.UniformInt(m));
      ProcessSampledEdge(graph, projection, ei, stamp, partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  // Rescale: each instance is counted once per sampled member hyperedge,
  // i.e. 3s/|E| times in expectation.
  total *= static_cast<double>(m) / (3.0 * static_cast<double>(options.num_samples));
  return total;
}

}  // namespace mochy
