#include "motif/mochy_a.h"

#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/scratch_arena.h"
#include "motif/stamp_kernels.h"

namespace mochy {

namespace {

/// Processes one sampled hyperedge e_i: visits every h-motif instance that
/// contains e_i and increments raw counts. arena.edge_weight2 holds
/// w(e_i, ·) for the whole call; arena.edge_weight is re-stamped per e_j.
/// `nbrs` is N(e_i) and must stay valid for the whole call;
/// `nbrs_of(ej)` returns N(e_j), valid until the next nbrs_of call — the
/// two entry points below bind it to the materialized projection or to
/// the lazy memo.
template <typename InnerNbrsFn>
void ProcessSampledEdge(const Hypergraph& graph, EdgeId ei,
                        std::span<const Neighbor> nbrs, InnerNbrsFn&& nbrs_of,
                        const uint32_t* size_of, ScratchArena& arena,
                        MotifCounts& raw) {
  StampedWeights& w_i = arena.edge_weight2;  // w(e_i, ·) over N(e_i)
  StampedWeights& w_j = arena.edge_weight;   // w(e_j, ·), re-stamped per e_j
  w_i.NewEpoch();
  for (const Neighbor& n : nbrs) w_i.Set(n.edge, n.weight);
  internal::StampHubNodes(graph, ei, arena);
  const uint64_t size_i = size_of[ei];

  for (size_t a = 0; a < nbrs.size(); ++a) {
    const EdgeId ej = nbrs[a].edge;
    const uint64_t w_ij = nbrs[a].weight;
    const uint64_t size_j = size_of[ej];
    bool pair_ready = false;

    // One pass over N(e_j) replaces the old per-pair hash probes: members
    // also adjacent to e_i stamp w_jk for the pair loop below, the rest
    // are Case-2 instances — e_k disjoint from e_i, an open instance with
    // hub e_j — classified on the spot.
    w_j.NewEpoch();
    for (const Neighbor& nj : nbrs_of(ej)) {
      const EdgeId ek = nj.edge;
      if (ek == ei) continue;
      if (w_i.Get(ek) != 0) {  // in N(e_i): handled by the pair loop
        w_j.Set(ek, nj.weight);
        continue;
      }
      const int id = ClassifyMotifOrZero(size_i, size_j, size_of[ek], w_ij,
                                         /*w_jk=*/nj.weight, /*w_ik=*/0,
                                         /*w_ijk=*/0);
      if (id != 0) raw[id] += 1.0;
    }
    // Case 1: e_k also a neighbor of e_i. Enumerate unordered pairs once
    // (j < k by position, Algorithm 4 line 6).
    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      const EdgeId ek = nbrs[b].edge;
      const uint64_t w_ik = nbrs[b].weight;
      const uint64_t size_k = size_of[ek];
      const uint64_t w_jk = w_j.Get(ek);
      uint64_t w_ijk = 0;
      if (w_jk != 0) {
        if (!pair_ready) {
          internal::StampPairNodes(graph, ej, arena);
          pair_ready = true;
        }
        w_ijk = internal::StampedTripleIntersection(graph, ek, arena);
      }
      // id 0 = triple with duplicated hyperedges (no h-motif, Figure 4).
      const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk,
                                         w_ik, w_ijk);
      if (id != 0) raw[id] += 1.0;
    }
  }
}

}  // namespace

MotifCounts CountMotifsEdgeSample(const Hypergraph& graph,
                                  const ProjectedGraph& projection,
                                  const MochyAOptions& options) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  const size_t m = graph.num_edges();
  MotifCounts total;
  if (m == 0 || options.num_samples == 0) return total;

  size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  const std::vector<uint32_t> size_of = internal::HoistEdgeSizes(graph);
  std::vector<MotifCounts> partial(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    ScratchArena& arena = LocalScratchArena();
    arena.EnsureEdges(m);
    arena.EnsureNodes(graph.num_nodes());
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      // Per-sample fork: the estimate is identical for any thread count.
      Rng rng = base.Fork(n);
      const EdgeId ei = static_cast<EdgeId>(rng.UniformInt(m));
      ProcessSampledEdge(
          graph, ei, projection.neighbors(ei),
          [&](EdgeId ej) { return projection.neighbors(ej); }, size_of.data(),
          arena, partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  // Rescale: each instance is counted once per sampled member hyperedge,
  // i.e. 3s/|E| times in expectation.
  total *=
      static_cast<double>(m) / (3.0 * static_cast<double>(options.num_samples));
  return total;
}

Result<MotifCounts> CountMotifsEdgeSampleLazy(
    const Hypergraph& graph, ConcurrentLazyProjection& lazy,
    const MochyAOptions& options, LazyProjection::Stats* stats_out) {
  const size_t m = graph.num_edges();
  MotifCounts total;
  if (stats_out != nullptr) *stats_out = lazy.shared_stats();
  if (m == 0 || options.num_samples == 0) return total;

  size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  const std::vector<uint32_t> size_of = internal::HoistEdgeSizes(graph);
  std::vector<MotifCounts> partial(num_threads);
  std::vector<LazyProjection::Stats> local_stats(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    ScratchArena& arena = LocalScratchArena();
    arena.EnsureEdges(m);
    arena.EnsureNodes(graph.num_nodes());
    NeighborhoodBuilder builder(m);
    // Copies: memo references cannot cross the shard lock. The outer
    // N(e_i) must survive the whole per-sample pass, the inner N(e_j)
    // only until the next fetch — hence two buffers.
    std::vector<Neighbor> nbrs_i, nbrs_j;
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      Rng rng = base.Fork(n);
      const EdgeId ei = static_cast<EdgeId>(rng.UniformInt(m));
      lazy.Neighborhood(ei, builder, &nbrs_i, &local_stats[thread]);
      ProcessSampledEdge(
          graph, ei, std::span<const Neighbor>(nbrs_i.data(), nbrs_i.size()),
          [&](EdgeId ej) {
            lazy.Neighborhood(ej, builder, &nbrs_j, &local_stats[thread]);
            return std::span<const Neighbor>(nbrs_j.data(), nbrs_j.size());
          },
          size_of.data(), arena, partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  total *=
      static_cast<double>(m) / (3.0 * static_cast<double>(options.num_samples));
  if (stats_out != nullptr) *stats_out = MergeLazyRunStats(lazy, local_stats);
  return total;
}

}  // namespace mochy
