#include "motif/counts.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace mochy {

int MotifCounts::Check(int id) {
  MOCHY_DCHECK(id >= 1 && id <= kNumHMotifs);
  return id - 1;
}

double MotifCounts::Total() const {
  double sum = 0.0;
  for (double c : counts_) sum += c;
  return sum;
}

double MotifCounts::TotalOpen() const {
  double sum = 0.0;
  for (int id = 17; id <= 22; ++id) sum += counts_[id - 1];
  return sum;
}

double MotifCounts::TotalClosed() const { return Total() - TotalOpen(); }

MotifCounts& MotifCounts::operator+=(const MotifCounts& other) {
  for (int i = 0; i < kNumHMotifs; ++i) counts_[i] += other.counts_[i];
  return *this;
}

MotifCounts& MotifCounts::operator-=(const MotifCounts& other) {
  for (int i = 0; i < kNumHMotifs; ++i) counts_[i] -= other.counts_[i];
  return *this;
}

MotifCounts& MotifCounts::operator*=(double factor) {
  for (double& c : counts_) c *= factor;
  return *this;
}

MotifCounts MotifCounts::Mean(const std::vector<MotifCounts>& many) {
  MotifCounts mean;
  if (many.empty()) return mean;
  for (const MotifCounts& one : many) mean += one;
  mean *= 1.0 / static_cast<double>(many.size());
  return mean;
}

double MotifCounts::RelativeError(const MotifCounts& reference) const {
  double abs_diff = 0.0;
  double total = 0.0;
  for (int i = 0; i < kNumHMotifs; ++i) {
    abs_diff += std::abs(counts_[i] - reference.counts_[i]);
    total += reference.counts_[i];
  }
  if (total == 0.0) {
    return abs_diff == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return abs_diff / total;
}

std::string MotifCounts::ToString() const {
  std::string out;
  char line[64];
  for (int id = 1; id <= kNumHMotifs; ++id) {
    std::snprintf(line, sizeof(line), "h-motif %2d: %.6g\n", id,
                  counts_[id - 1]);
    out += line;
  }
  return out;
}

}  // namespace mochy
