#include "motif/enumerate.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "motif/pattern.h"
#include "motif/stamp_kernels.h"

namespace mochy {

namespace {

template <typename Visit>
void EnumerateFromHub(const Hypergraph& graph,
                      const ProjectedGraph& projection, EdgeId ei,
                      Visit&& visit) {
  const auto nbrs = projection.neighbors(ei);
  const uint64_t size_i = graph.edge_size(ei);
  for (size_t a = 0; a < nbrs.size(); ++a) {
    const EdgeId ej = nbrs[a].edge;
    const uint64_t w_ij = nbrs[a].weight;
    const uint64_t size_j = graph.edge_size(ej);
    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      const EdgeId ek = nbrs[b].edge;
      const uint64_t w_jk = projection.Weight(ej, ek);
      if (w_jk != 0 && ei >= std::min(ej, ek)) continue;
      const uint64_t w_ik = nbrs[b].weight;
      const uint64_t size_k = graph.edge_size(ek);
      const uint64_t w_ijk =
          w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
      // id 0 = triple with duplicated hyperedges (no h-motif, Figure 4).
      const int id =
          ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk, w_ik, w_ijk);
      if (id != 0) visit(MotifInstance{ei, ej, ek, id});
    }
  }
}

}  // namespace

void EnumerateInstances(const Hypergraph& graph,
                        const ProjectedGraph& projection,
                        const std::function<void(const MotifInstance&)>& fn) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  for (EdgeId ei = 0; ei < graph.num_edges(); ++ei) {
    EnumerateFromHub(graph, projection, ei, fn);
  }
}

void EnumerateInstancesParallel(
    const Hypergraph& graph, const ProjectedGraph& projection,
    size_t num_threads,
    const std::function<void(size_t thread, const MotifInstance&)>& fn) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  if (num_threads == 0) num_threads = DefaultThreadCount();
  // Same Σd²-chunked claiming as the exact counter: per-hub work is
  // ~|N_e|², so chunks of near-equal estimated work keep both the claiming
  // overhead and the straggler tail small.
  const std::vector<uint64_t> cost = internal::HubWorkEstimate(projection);
  ParallelWorkChunks(cost, num_threads,
                     [&](size_t thread, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EnumerateFromHub(graph, projection, static_cast<EdgeId>(i),
                       [&](const MotifInstance& inst) { fn(thread, inst); });
    }
  });
}

std::vector<MotifInstance> CollectInstances(const Hypergraph& graph,
                                            const ProjectedGraph& projection) {
  std::vector<MotifInstance> out;
  EnumerateInstances(graph, projection,
                     [&](const MotifInstance& inst) { out.push_back(inst); });
  return out;
}

}  // namespace mochy
