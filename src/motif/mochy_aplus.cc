#include "motif/mochy_aplus.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/scratch_arena.h"
#include "motif/stamp_kernels.h"

namespace mochy {

namespace {

/// Visits every h-motif instance containing the wedge {e_i, e_j} and
/// increments raw counts. arena.edge_weight holds w(e_j, ·) and
/// arena.edge_weight2 w(e_i, ·) for the duration of the call; the node
/// sets carry e_i and e_i ∩ e_j for the stamped triple intersections.
void ProcessWedge(const Hypergraph& graph, EdgeId ei, EdgeId ej,
                  uint64_t w_ij, std::span<const Neighbor> nbrs_i,
                  std::span<const Neighbor> nbrs_j, const uint32_t* size_of,
                  ScratchArena& arena, MotifCounts& raw) {
  const uint64_t size_i = size_of[ei];
  const uint64_t size_j = size_of[ej];
  StampedWeights& w_i = arena.edge_weight2;  // w(e_i, ·) over N(e_i)\{e_j}
  StampedWeights& w_j = arena.edge_weight;   // w(e_j, ·) over N(e_j)
  w_j.NewEpoch();
  for (const Neighbor& n : nbrs_j) w_j.Set(n.edge, n.weight);
  w_i.NewEpoch();
  // e_i's nodes and e_i ∩ e_j are scattered lazily: only wedges that reach
  // a closed triple pay for the node passes.
  bool pair_ready = false;

  // e_k in N(e_i): w_ik from the list, w_jk from the stamp.
  for (const Neighbor& n : nbrs_i) {
    const EdgeId ek = n.edge;
    if (ek == ej) continue;
    w_i.Set(ek, n.weight);
    const uint64_t w_ik = n.weight;
    const uint64_t w_jk = w_j.Get(ek);
    const uint64_t size_k = size_of[ek];
    uint64_t w_ijk = 0;
    if (w_jk != 0) {
      if (!pair_ready) {
        internal::StampHubNodes(graph, ei, arena);
        internal::StampPairNodes(graph, ej, arena);
        pair_ready = true;
      }
      w_ijk = internal::StampedTripleIntersection(graph, ek, arena);
    }
    // id 0 = triple with duplicated hyperedges (no h-motif, Figure 4).
    const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk,
                                       w_ik, w_ijk);
    if (id != 0) raw[id] += 1.0;
  }
  // e_k in N(e_j) \ N(e_i): w_ik = 0, hence open with hub e_j.
  for (const Neighbor& n : nbrs_j) {
    const EdgeId ek = n.edge;
    if (ek == ei || w_i.Test(ek)) continue;
    const int id = ClassifyMotifOrZero(size_i, size_j, size_of[ek], w_ij,
                                       /*w_jk=*/n.weight, /*w_ik=*/0,
                                       /*w_ijk=*/0);
    if (id != 0) raw[id] += 1.0;
  }
}

/// Applies the Theorem-4 rescaling: raw counts -> unbiased estimates.
void RescaleWedgeEstimates(uint64_t num_wedges, uint64_t num_samples,
                           MotifCounts* counts) {
  const double wedges = static_cast<double>(num_wedges);
  const double r = static_cast<double>(num_samples);
  for (int id = 1; id <= kNumHMotifs; ++id) {
    const double wedges_per_instance = IsOpenMotif(id) ? 2.0 : 3.0;
    (*counts)[id] *= wedges / (wedges_per_instance * r);
  }
}

}  // namespace

MotifCounts CountMotifsWedgeSample(const Hypergraph& graph,
                                   const ProjectedGraph& projection,
                                   const MochyAPlusOptions& options) {
  MOCHY_CHECK(projection.num_edges() == graph.num_edges());
  const size_t m = graph.num_edges();
  MotifCounts total;
  const uint64_t wedges = projection.num_wedges();
  if (m == 0 || wedges == 0 || options.num_samples == 0) return total;

  size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  const std::vector<uint32_t> size_of = internal::HoistEdgeSizes(graph);
  std::vector<MotifCounts> partial(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    ScratchArena& arena = LocalScratchArena();
    arena.EnsureEdges(m);
    arena.EnsureNodes(graph.num_nodes());
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      Rng rng = base.Fork(n);
      const uint64_t k = rng.UniformInt(wedges);
      const auto [ei, ej] = projection.WedgeAt(k);
      const uint64_t w_ij = projection.Weight(ei, ej);
      MOCHY_DCHECK(w_ij > 0);
      ProcessWedge(graph, ei, ej, w_ij, projection.neighbors(ei),
                   projection.neighbors(ej), size_of.data(), arena,
                   partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  RescaleWedgeEstimates(wedges, options.num_samples, &total);
  return total;
}

namespace {

/// Maps the uniform wedge index `k` to its wedge (e_i within-suffix rank):
/// binary search of the wedge prefix sums. The `within`-th neighbor of
/// e_i with id > e_i — a suffix of the sorted neighborhood, identical to
/// ProjectedGraph::WedgeAt on the materialized structure — completes the
/// pick once the neighborhood is in hand.
std::pair<EdgeId, uint64_t> PickWedgeSource(const ProjectedDegrees& degrees,
                                            uint64_t k) {
  const auto it = std::upper_bound(degrees.wedge_prefix.begin(),
                                   degrees.wedge_prefix.end(), k);
  const size_t e = static_cast<size_t>(it - degrees.wedge_prefix.begin()) - 1;
  return {static_cast<EdgeId>(e), k - degrees.wedge_prefix[e]};
}

/// The `within`-th neighbor of `ei` with id > ei in the sorted
/// neighborhood `nbrs`.
const Neighbor& PickWedgeTarget(std::span<const Neighbor> nbrs, EdgeId ei,
                                uint64_t within) {
  const auto suffix = std::upper_bound(
      nbrs.begin(), nbrs.end(), ei,
      [](EdgeId lhs, const Neighbor& rhs) { return lhs < rhs.edge; });
  return *(suffix + static_cast<int64_t>(within));
}

Status CheckWedgeIndex(const Hypergraph& graph,
                       const ProjectedDegrees& degrees) {
  if (degrees.wedge_prefix.size() != graph.num_edges() + 1) {
    return Status::InvalidArgument(
        "wedge index does not match the hypergraph (prefix for " +
        std::to_string(degrees.wedge_prefix.size()) + " entries, graph has " +
        std::to_string(graph.num_edges()) + " edges)");
  }
  return Status::OK();
}

}  // namespace

Result<MotifCounts> CountMotifsWedgeSampleLazy(
    const Hypergraph& graph, const ProjectedDegrees& degrees,
    ConcurrentLazyProjection& lazy, const MochyAPlusOptions& options,
    LazyProjection::Stats* stats_out) {
  if (Status s = CheckWedgeIndex(graph, degrees); !s.ok()) return s;
  const size_t m = graph.num_edges();
  MotifCounts total;
  const uint64_t wedges = degrees.num_wedges;
  if (stats_out != nullptr) *stats_out = lazy.shared_stats();
  if (m == 0 || wedges == 0 || options.num_samples == 0) return total;

  size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  if (num_threads > options.num_samples) {
    num_threads = static_cast<size_t>(options.num_samples);
  }
  const std::vector<uint32_t> size_of = internal::HoistEdgeSizes(graph);
  std::vector<MotifCounts> partial(num_threads);
  std::vector<LazyProjection::Stats> local_stats(num_threads);
  const Rng base(options.seed);

  auto worker = [&](size_t thread) {
    ScratchArena& arena = LocalScratchArena();
    arena.EnsureEdges(m);
    arena.EnsureNodes(graph.num_nodes());
    NeighborhoodBuilder builder(m);
    // Copies: memo references cannot cross the shard lock, and another
    // worker's eviction could invalidate them anyway.
    std::vector<Neighbor> nbrs_i, nbrs_j;
    for (uint64_t n = thread; n < options.num_samples; n += num_threads) {
      Rng rng = base.Fork(n);
      const uint64_t k = rng.UniformInt(wedges);
      const auto [ei, within] = PickWedgeSource(degrees, k);
      lazy.Neighborhood(ei, builder, &nbrs_i, &local_stats[thread]);
      const Neighbor picked = PickWedgeTarget(nbrs_i, ei, within);
      lazy.Neighborhood(picked.edge, builder, &nbrs_j, &local_stats[thread]);
      ProcessWedge(graph, ei, picked.edge, picked.weight,
                   std::span<const Neighbor>(nbrs_i.data(), nbrs_i.size()),
                   std::span<const Neighbor>(nbrs_j.data(), nbrs_j.size()),
                   size_of.data(), arena, partial[thread]);
    }
  };
  ParallelWorkers(num_threads, worker);

  for (const MotifCounts& part : partial) total += part;
  RescaleWedgeEstimates(wedges, options.num_samples, &total);
  if (stats_out != nullptr) *stats_out = MergeLazyRunStats(lazy, local_stats);
  return total;
}

Result<MotifCounts> CountMotifsWedgeSampleOnTheFly(
    const Hypergraph& graph, const ProjectedDegrees& degrees,
    const MochyAPlusOptions& options,
    const LazyProjectionOptions& lazy_options,
    LazyProjection::Stats* stats_out) {
  if (Status s = CheckWedgeIndex(graph, degrees); !s.ok()) return s;
  auto lazy = LazyProjection::Create(graph, lazy_options, &degrees);
  if (!lazy.ok()) return lazy.status();
  const size_t m = graph.num_edges();
  MotifCounts total;
  const uint64_t wedges = degrees.num_wedges;
  if (stats_out != nullptr) *stats_out = lazy.value().stats();
  if (m == 0 || wedges == 0 || options.num_samples == 0) return total;

  const std::vector<uint32_t> size_of = internal::HoistEdgeSizes(graph);
  ScratchArena& arena = LocalScratchArena();
  arena.EnsureEdges(m);
  arena.EnsureNodes(graph.num_nodes());
  std::vector<Neighbor> nbrs_i;  // copy: the lazy reference is transient
  const Rng base(options.seed);
  for (uint64_t n = 0; n < options.num_samples; ++n) {
    Rng rng = base.Fork(n);
    const uint64_t k = rng.UniformInt(wedges);
    const auto [ei, within] = PickWedgeSource(degrees, k);
    {
      const std::vector<Neighbor>& ref = lazy.value().Neighborhood(ei);
      nbrs_i.assign(ref.begin(), ref.end());
    }
    const Neighbor picked = PickWedgeTarget(nbrs_i, ei, within);
    const std::vector<Neighbor>& nbrs_j =
        lazy.value().Neighborhood(picked.edge);
    ProcessWedge(graph, ei, picked.edge, picked.weight,
                 std::span<const Neighbor>(nbrs_i.data(), nbrs_i.size()),
                 std::span<const Neighbor>(nbrs_j.data(), nbrs_j.size()),
                 size_of.data(), arena, total);
  }
  RescaleWedgeEstimates(wedges, options.num_samples, &total);
  if (stats_out != nullptr) *stats_out = lazy.value().stats();
  return total;
}

}  // namespace mochy
