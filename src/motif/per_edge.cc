#include "motif/per_edge.h"

#include "motif/enumerate.h"

namespace mochy {

std::vector<std::array<double, kNumHMotifs>> ComputePerEdgeMotifCounts(
    const Hypergraph& graph, const ProjectedGraph& projection) {
  std::vector<std::array<double, kNumHMotifs>> rows(graph.num_edges());
  for (auto& row : rows) row.fill(0.0);
  EnumerateInstances(graph, projection, [&](const MotifInstance& inst) {
    rows[inst.i][inst.motif - 1] += 1.0;
    rows[inst.j][inst.motif - 1] += 1.0;
    rows[inst.k][inst.motif - 1] += 1.0;
  });
  return rows;
}

}  // namespace mochy
