// MoCHy-A+: approximate h-motif counting via hyperwedge sampling
// (paper Algorithm 5) plus the on-the-fly variant of Section 3.4.
//
// Samples r hyperwedges {e_i, e_j} uniformly with replacement; every
// instance containing the wedge is found by scanning N(e_i) ∪ N(e_j).
// Open motifs contain 2 wedges and closed motifs 3, so raw counts are
// rescaled by |∧|/(2r) and |∧|/(3r) respectively, giving unbiased
// estimates (Theorem 4) with strictly smaller variance than MoCHy-A at
// equal cost (Section 3.3 discussion).
#ifndef MOCHY_MOTIF_MOCHY_APLUS_H_
#define MOCHY_MOTIF_MOCHY_APLUS_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "hypergraph/lazy_projection.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

struct MochyAPlusOptions {
  uint64_t num_samples = 1000;  ///< r — hyperwedge samples (with replacement)
  uint64_t seed = 1;
  /// Samples are processed in parallel; 0 means DefaultThreadCount(). The
  /// estimate is bit-identical for any thread count.
  size_t num_threads = 1;
};

/// Unbiased estimates of all 26 motif counts via uniform hyperwedge
/// sampling over a materialized projection.
MotifCounts CountMotifsWedgeSample(const Hypergraph& graph,
                                   const ProjectedGraph& projection,
                                   const MochyAPlusOptions& options);

/// On-the-fly MoCHy-A+: no materialized projection. Hyperedge
/// neighborhoods are computed on demand through a LazyProjection with the
/// given memoization budget and eviction policy; only the per-edge wedge
/// index (O(|E|) memory) is precomputed. Single-threaded (the memo is the
/// experiment variable here, see Figure 11). Identical estimates to the
/// eager version for the same seed and sample count.
MotifCounts CountMotifsWedgeSampleOnTheFly(
    const Hypergraph& graph, const ProjectedDegrees& degrees,
    const MochyAPlusOptions& options,
    const LazyProjectionOptions& lazy_options,
    LazyProjection::Stats* stats_out = nullptr);

}  // namespace mochy

#endif  // MOCHY_MOTIF_MOCHY_APLUS_H_
