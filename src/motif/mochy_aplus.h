// MoCHy-A+: approximate h-motif counting via hyperwedge sampling
// (paper Algorithm 5) plus the on-the-fly variant of Section 3.4.
//
// Samples r hyperwedges {e_i, e_j} uniformly with replacement; every
// instance containing the wedge is found by scanning N(e_i) ∪ N(e_j).
// Open motifs contain 2 wedges and closed motifs 3, so raw counts are
// rescaled by |∧|/(2r) and |∧|/(3r) respectively, giving unbiased
// estimates (Theorem 4) with strictly smaller variance than MoCHy-A at
// equal cost (Section 3.3 discussion).
#ifndef MOCHY_MOTIF_MOCHY_APLUS_H_
#define MOCHY_MOTIF_MOCHY_APLUS_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "hypergraph/lazy_projection.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

struct MochyAPlusOptions {
  uint64_t num_samples = 1000;  ///< r — hyperwedge samples (with replacement)
  uint64_t seed = 1;
  /// Samples are processed in parallel; 0 means DefaultThreadCount(). The
  /// estimate is bit-identical for any thread count.
  size_t num_threads = 1;
};

/// Unbiased estimates of all 26 motif counts via uniform hyperwedge
/// sampling over a materialized projection.
MotifCounts CountMotifsWedgeSample(const Hypergraph& graph,
                                   const ProjectedGraph& projection,
                                   const MochyAPlusOptions& options);

/// Memory-bounded MoCHy-A+ — the engine's ProjectionPolicy::kLazy path.
/// No materialized projection: wedges are drawn through `degrees` (the
/// wedge index) and neighborhoods fetched through the sharded `lazy`
/// memo, in parallel. Estimates are bit-identical to
/// CountMotifsWedgeSample over the materialized projection of the same
/// graph, for the same seed, sample count, and any thread count; only
/// the statistics depend on the memo. `stats_out`, when set, receives the
/// per-worker hit/recompute counters merged with the memo-side
/// byte/eviction counters. Errors when `degrees` does not match `graph`.
Result<MotifCounts> CountMotifsWedgeSampleLazy(
    const Hypergraph& graph, const ProjectedDegrees& degrees,
    ConcurrentLazyProjection& lazy, const MochyAPlusOptions& options,
    LazyProjection::Stats* stats_out = nullptr);

/// On-the-fly MoCHy-A+ with a private single-threaded memo: the raw
/// Figure-11 experiment surface, where the memoization budget and
/// eviction policy are the variables under study. `lazy_options` is
/// validated (ValidateLazyProjectionOptions — a require_memoization
/// configuration with a zero-byte budget is InvalidArgument, not a silent
/// degrade to recompute-everything) and defaults to the documented
/// kDefaultLazyMemoBudgetBytes budget, NOT to unbounded memoization.
/// Identical estimates to the eager version for the same seed and sample
/// count. Engine callers should prefer ProjectionPolicy::kLazy, which
/// shares the memo across threads and surfaces stats in EngineStats.
Result<MotifCounts> CountMotifsWedgeSampleOnTheFly(
    const Hypergraph& graph, const ProjectedDegrees& degrees,
    const MochyAPlusOptions& options,
    const LazyProjectionOptions& lazy_options,
    LazyProjection::Stats* stats_out = nullptr);

}  // namespace mochy

#endif  // MOCHY_MOTIF_MOCHY_APLUS_H_
