// MoCHy-E-ENUM: h-motif instance enumeration (paper Algorithm 3).
//
// Visits every h-motif instance exactly once and hands it to a callback
// together with its motif id. Counting, per-edge feature extraction
// (Table 4's HM26 features), and instance materialization are all thin
// wrappers over this.
#ifndef MOCHY_MOTIF_ENUMERATE_H_
#define MOCHY_MOTIF_ENUMERATE_H_

#include <functional>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/pattern.h"

namespace mochy {

/// One enumerated instance: the three hyperedges (i is the hub the
/// instance was discovered from) and the motif id in [1, 26].
struct MotifInstance {
  EdgeId i, j, k;
  int motif;
};

/// Calls `fn` once per h-motif instance, in deterministic (hub-major)
/// order. Single-threaded.
void EnumerateInstances(const Hypergraph& graph,
                        const ProjectedGraph& projection,
                        const std::function<void(const MotifInstance&)>& fn);

/// Parallel enumeration: `fn(thread, instance)` may be called concurrently
/// from different threads; instances are still visited exactly once.
/// `num_threads` 0 means DefaultThreadCount().
void EnumerateInstancesParallel(
    const Hypergraph& graph, const ProjectedGraph& projection,
    size_t num_threads,
    const std::function<void(size_t thread, const MotifInstance&)>& fn);

/// Materializes all instances (small graphs / tests only).
std::vector<MotifInstance> CollectInstances(const Hypergraph& graph,
                                            const ProjectedGraph& projection);

}  // namespace mochy

#endif  // MOCHY_MOTIF_ENUMERATE_H_
