#include "motif/batch.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <numeric>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "common/timer.h"

namespace mochy {

namespace {

// Runs one item start-to-finish on the calling thread: generate the graph
// (when the item owns a generator), build its projection, count. The
// engine and any generated graph live only for the duration of the call,
// so a running batch holds at most one projection per worker.
BatchItemResult RunItem(const BatchItem& item, size_t num_threads) {
  BatchItemResult out;
  out.label = item.label;

  std::optional<Hypergraph> owned;
  const Hypergraph* graph = item.graph;
  if (item.make) {
    Timer generate;
    Result<Hypergraph> made = item.make();
    out.generate_seconds = generate.Seconds();
    if (!made.ok()) {
      out.status = made.status();
      return out;
    }
    owned.emplace(std::move(made).value());
    graph = &*owned;
  }
  if (graph == nullptr) {
    out.status =
        Status::InvalidArgument("batch item has neither graph nor generator");
    return out;
  }

  // The batch scheduler owns the thread budget (see batch.h); whatever the
  // caller put in the item's num_threads is replaced here. Projection
  // policy and memory budget pass through per item, so one batch can mix
  // materialized and memory-bounded lazy items.
  EngineOptions options = item.options;
  options.num_threads = num_threads;

  Timer build;
  auto engine = MotifEngine::Create(*graph, options);
  out.projection_seconds = build.Seconds();
  if (!engine.ok()) {
    out.status = engine.status();
    return out;
  }

  if (item.mode == BatchResultMode::kPerEdgeRow) {
    if (item.target_edge >= graph->num_edges()) {
      out.status = Status::InvalidArgument(
          "per-edge batch item targets hyperedge " +
          std::to_string(item.target_edge) + " but the graph has only " +
          std::to_string(graph->num_edges()) + " hyperedges");
      return out;
    }
    auto per_edge = engine.value().CountPerEdge(options);
    if (!per_edge.ok()) {
      out.status = per_edge.status();
      return out;
    }
    const auto& row = per_edge.value().rows[item.target_edge];
    for (int t = 1; t <= kNumHMotifs; ++t) out.counts[t] = row[t - 1];
    out.stats = per_edge.value().stats;
    return out;
  }

  auto counted = engine.value().Count(options);
  if (!counted.ok()) {
    out.status = counted.status();
    return out;
  }
  out.counts = counted.value().counts;
  out.stats = counted.value().stats;
  return out;
}

// Processing order: estimated-longest first, so one heavy trailing item
// cannot straggle an otherwise drained queue (classic LPT list
// scheduling). Generated graphs have unknown cost until they exist; they
// sort first, which is right for null models sized like their source.
std::vector<size_t> ScheduleOrder(const std::vector<BatchItem>& items,
                                  bool longest_first) {
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (!longest_first) return order;
  auto cost = [&](size_t i) -> uint64_t {
    if (items[i].make) return UINT64_MAX;
    return items[i].graph == nullptr ? 0 : items[i].graph->num_pins();
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return cost(a) > cost(b); });
  return order;
}

}  // namespace

std::string BatchStats::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "items=%zu failed=%zu threads=%zu elapsed=%.3fs busy=%.3fs "
                "utilization=%.2f",
                num_items, num_failed, num_threads, elapsed_seconds,
                busy_seconds, pool_utilization);
  return buffer;
}

Status BatchResult::first_error() const {
  for (const BatchItemResult& item : items) {
    if (!item.status.ok()) return item.status;
  }
  return Status::OK();
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

size_t BatchRunner::Add(const Hypergraph& graph, EngineOptions options,
                        std::string label) {
  BatchItem item;
  item.graph = &graph;
  item.options = options;
  item.label = std::move(label);
  items_.push_back(std::move(item));
  return items_.size() - 1;
}

size_t BatchRunner::AddGenerated(std::function<Result<Hypergraph>()> make,
                                 EngineOptions options, std::string label) {
  BatchItem item;
  item.make = std::move(make);
  item.options = options;
  item.label = std::move(label);
  items_.push_back(std::move(item));
  return items_.size() - 1;
}

size_t BatchRunner::AddGeneratedPerEdgeRow(
    std::function<Result<Hypergraph>()> make, EdgeId target_edge,
    EngineOptions options, std::string label) {
  BatchItem item;
  item.make = std::move(make);
  item.options = options;
  item.mode = BatchResultMode::kPerEdgeRow;
  item.target_edge = target_edge;
  item.label = std::move(label);
  items_.push_back(std::move(item));
  return items_.size() - 1;
}

BatchResult BatchRunner::Run() const {
  BatchResult out;
  const size_t n = items_.size();
  out.items.resize(n);
  out.stats.num_items = n;

  const size_t budget =
      options_.num_threads == 0 ? DefaultThreadCount() : options_.num_threads;
  // Two regimes. With at least as many items as workers, parallelism
  // across items wins: each worker drains the queue, counting its item
  // inline, and projection builds overlap with other items' counting. With
  // few items and many workers, per-item parallelism is the only way to
  // keep the pool busy, so items run sequentially with the full budget.
  const size_t workers = std::min(budget, n);
  const bool item_parallel = workers > 1 && budget < 2 * n;
  out.stats.num_threads = item_parallel ? workers : 1;

  Timer wall;
  if (item_parallel) {
    const std::vector<size_t> order =
        ScheduleOrder(items_, options_.longest_first);
    std::atomic<size_t> cursor{0};
    ParallelWorkers(workers, [&](size_t) {
      while (true) {
        const size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
        if (slot >= n) return;
        const size_t index = order[slot];
        out.items[index] = RunItem(items_[index], /*num_threads=*/1);
      }
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      out.items[i] = RunItem(items_[i], budget);
    }
  }
  out.stats.elapsed_seconds = wall.Seconds();

  for (const BatchItemResult& item : out.items) {
    if (!item.status.ok()) ++out.stats.num_failed;
    out.stats.busy_seconds += item.generate_seconds +
                              item.projection_seconds +
                              item.stats.elapsed_seconds;
  }
  if (out.stats.elapsed_seconds > 0.0) {
    out.stats.pool_utilization =
        out.stats.busy_seconds /
        (out.stats.elapsed_seconds * static_cast<double>(out.stats.num_threads));
  }
  return out;
}

BatchResult CountBatch(const std::vector<const Hypergraph*>& graphs,
                       const EngineOptions& options,
                       const BatchOptions& batch_options) {
  BatchRunner runner(batch_options);
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (graphs[i] != nullptr) {
      runner.Add(*graphs[i], options, "graph-" + std::to_string(i));
    } else {
      // Deliberately enqueue the broken item so result indices stay
      // aligned with the input; it reports InvalidArgument.
      runner.AddGenerated(
          []() -> Result<Hypergraph> {
            return Status::InvalidArgument("null graph pointer in CountBatch");
          },
          options, "graph-" + std::to_string(i));
    }
  }
  return runner.Run();
}

}  // namespace mochy
