#include "motif/mochy_weighted.h"

#include <algorithm>
#include <vector>

#include "common/alias_table.h"
#include "common/logging.h"
#include "common/rng.h"
#include "motif/pattern.h"

namespace mochy {

namespace {

/// Computes the weighted neighborhood of `e` into dense scratch, returning
/// the touched edges (unsorted). count[] must be all-zero on entry; the
/// caller resets it via the returned list.
void ComputeNeighborhood(const Hypergraph& graph, EdgeId e,
                         std::vector<uint32_t>& count,
                         std::vector<EdgeId>& touched) {
  touched.clear();
  for (NodeId v : graph.edge(e)) {
    for (EdgeId other : graph.edges_of(v)) {
      if (other == e) continue;
      if (count[other] == 0) touched.push_back(other);
      ++count[other];
    }
  }
}

}  // namespace

Result<MochyWeightedResult> CountMotifsWeightedWedge(
    const Hypergraph& graph, const MochyWeightedOptions& options) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  if (options.num_samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }
  // Node weights C(d_v, 2): each unordered incident-edge pair at v is one
  // unit of wedge weight; summing over v counts every wedge omega times.
  std::vector<double> node_weight(n, 0.0);
  uint64_t total_weight = 0;
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t d = graph.degree(v);
    const uint64_t pairs = d * (d - 1) / 2;
    node_weight[v] = static_cast<double>(pairs);
    total_weight += pairs;
  }
  if (total_weight == 0) {
    return Status::FailedPrecondition(
        "hypergraph has no hyperwedges (no node with degree >= 2)");
  }
  MOCHY_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Build(node_weight));

  MochyWeightedResult result;
  result.total_weight = total_weight;
  result.estimated_num_wedges = 0.0;

  Rng rng(options.seed);
  std::vector<uint32_t> count_i(m, 0), count_j(m, 0);
  std::vector<EdgeId> touched_i, touched_j;
  const double w_total = static_cast<double>(total_weight);
  const double r = static_cast<double>(options.num_samples);

  for (uint64_t sample = 0; sample < options.num_samples; ++sample) {
    // Draw the wedge proportional to omega.
    const NodeId v = static_cast<NodeId>(table.Sample(rng));
    const auto incident = graph.edges_of(v);
    const auto pick = rng.SampleDistinct(incident.size(), 2);
    EdgeId ei = incident[pick[0]];
    EdgeId ej = incident[pick[1]];
    if (ei > ej) std::swap(ei, ej);

    const uint64_t size_i = graph.edge_size(ei);
    const uint64_t size_j = graph.edge_size(ej);
    ComputeNeighborhood(graph, ei, count_i, touched_i);
    ComputeNeighborhood(graph, ej, count_j, touched_j);
    const uint64_t w_ij = count_i[ej];
    MOCHY_DCHECK(w_ij > 0);
    result.estimated_num_wedges += w_total / (static_cast<double>(w_ij) * r);

    // Horvitz-Thompson base weight for this wedge.
    const double inclusion = static_cast<double>(w_ij) / w_total;
    // One instance per e_k adjacent to e_i or e_j.
    for (EdgeId ek : touched_i) {
      if (ek == ej) continue;
      const uint64_t w_ik = count_i[ek];
      const uint64_t w_jk = count_j[ek];
      const uint64_t w_ijk =
          w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
      const int id = ClassifyMotifOrZero(size_i, size_j, graph.edge_size(ek),
                                         w_ij, w_jk, w_ik, w_ijk);
      if (id == 0) continue;
      const double wedges_per_instance = IsOpenMotif(id) ? 2.0 : 3.0;
      result.counts[id] += 1.0 / (inclusion * wedges_per_instance * r);
    }
    for (EdgeId ek : touched_j) {
      if (ek == ei || count_i[ek] != 0) continue;  // handled above
      const int id = ClassifyMotifOrZero(size_i, size_j, graph.edge_size(ek),
                                         w_ij, /*w_bc=*/count_j[ek],
                                         /*w_ca=*/0, /*w_abc=*/0);
      if (id == 0) continue;
      const double wedges_per_instance = IsOpenMotif(id) ? 2.0 : 3.0;
      result.counts[id] += 1.0 / (inclusion * wedges_per_instance * r);
    }
    for (EdgeId e : touched_i) count_i[e] = 0;
    for (EdgeId e : touched_j) count_j[e] = 0;
  }
  return result;
}

}  // namespace mochy
