/// \file
/// StreamingEngine: exact h-motif counts maintained under hyperedge
/// arrivals.
///
/// The static stack (MotifEngine, motif/engine.h) answers "count this
/// graph": it materializes the projection once, then counts in
/// O(Σ_e |N_e|²). A service absorbing a stream of arrivals needs the
/// complement — "keep the 26-motif count vector of the *current* graph
/// exact after every arrival" — and recounting per arrival is O(graph)
/// each time. StreamingEngine maintains the vector in O(Δ) per arrival
/// instead: hyperedges are immutable once inserted, so an arriving edge
/// `e` can only *create* motif instances (every instance it creates
/// contains `e`, and no existing instance changes class), and the
/// engine enumerates exactly those instances via the projected
/// neighborhood that `DynamicHypergraph` (hypergraph/dynamic.h)
/// maintains incrementally. The full delta-counting contract — which
/// triples an arrival can create, why the update is exact, the
/// per-arrival complexity — is documented in docs/STREAMING.md.
///
/// Counts are bit-identical to `reference::CountMotifsExact` /
/// `MotifEngine::Count(kExact)` on a snapshot of the same edge multiset
/// after every arrival, for every thread count
/// (tests/streaming_test.cc). Result types are shared with the static
/// facade: the engine returns the same `MotifCounts`, and
/// `StreamingStats` mirrors `EngineStats`.
///
/// A StreamingEngine is single-writer: calls to AddEdge must be
/// externally serialized; reads between arrivals are safe.
#ifndef MOCHY_MOTIF_STREAMING_H_
#define MOCHY_MOTIF_STREAMING_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypergraph/dynamic.h"
#include "hypergraph/temporal_trace.h"
#include "motif/counts.h"

namespace mochy {

/// Knobs for StreamingEngine.
struct StreamingOptions {
  /// Logical workers for the per-arrival delta pass (0 =
  /// DefaultThreadCount()). The pass is parallelized over the arriving
  /// edge's projected neighbors; arrivals with small neighborhoods run
  /// inline regardless, so the stream's common case pays no
  /// synchronization.
  size_t num_threads = 1;

  /// Delta passes whose estimated work (|N(e)|² plus the neighbors'
  /// adjacency sizes) is below this run inline even when num_threads
  /// allows more; fan-out only pays off on hub arrivals.
  uint64_t parallel_work_threshold = 1 << 14;
};

/// Cumulative run statistics over every AddEdge so far. The streaming
/// counterpart of EngineStats (motif/engine.h).
struct StreamingStats {
  uint64_t arrivals = 0;           ///< AddEdge calls accepted
  uint64_t candidate_triples = 0;  ///< triples examined by delta passes
  uint64_t new_instances = 0;      ///< instances added (classified != 0)
  double elapsed_seconds = 0.0;    ///< total wall time inside AddEdge
  size_t num_threads = 1;          ///< resolved worker budget
  uint64_t num_wedges = 0;         ///< current |∧| of the graph

  /// One-line summary (arrivals, instances, throughput).
  std::string ToString() const;
};

/// Maintains exact 26-motif counts of an append-only hypergraph, one
/// O(Δ) delta pass per arrival.
class StreamingEngine {
 public:
  /// An engine starts empty; feed it with AddEdge (or ReplayTrace).
  explicit StreamingEngine(const StreamingOptions& options = {});

  /// Ingests one hyperedge (any member order, within-edge duplicates
  /// OK) and updates the count vector by enumerating exactly the motif
  /// instances the arrival creates. Returns the new edge's id.
  Result<EdgeId> AddEdge(std::span<const NodeId> nodes);
  /// Convenience overload of AddEdge for brace-list members.
  Result<EdgeId> AddEdge(std::initializer_list<NodeId> nodes);

  /// Exact counts of the current graph (valid between arrivals).
  const MotifCounts& counts() const { return counts_; }

  /// The maintained graph and its incremental projection.
  const DynamicHypergraph& graph() const { return graph_; }

  /// Cumulative statistics over all arrivals so far.
  const StreamingStats& stats() const { return stats_; }

  /// Drops the graph and counts but keeps options and capacity; used at
  /// tumbling-window boundaries.
  void Reset();

 private:
  struct DeltaCounters;
  void CountDelta(EdgeId e);
  void PrepareDeltaScratch(EdgeId e, ScratchArena& arena) const;
  void CountDeltaRange(EdgeId e, size_t begin, size_t end,
                       ScratchArena& arena, DeltaCounters& out) const;

  StreamingOptions options_;
  size_t resolved_threads_ = 1;
  DynamicHypergraph graph_;
  MotifCounts counts_;
  StreamingStats stats_;
};

/// How ReplayTrace turns arrival timestamps into emitted count vectors.
enum class WindowMode {
  /// Counts of the cumulative graph at each window close — the evolving
  /// network including everything that arrived so far.
  kCumulative,
  /// The engine resets at each window boundary: counts of each window's
  /// own graph (e.g. one snapshot per year, the paper's Figure 7 setup).
  kTumbling,
};

/// Per-window output of ReplayTrace.
struct WindowResult {
  uint64_t start_time = 0;  ///< window start (inclusive)
  uint64_t end_time = 0;    ///< window end (exclusive)
  uint64_t arrivals = 0;    ///< arrivals that fell into this window
  size_t num_edges = 0;     ///< graph size at window close
  /// Exact counts at window close (cumulative graph or window graph,
  /// per WindowMode).
  MotifCounts counts;
};

/// Knobs for ReplayTrace.
struct ReplayOptions {
  /// Per-arrival engine knobs.
  StreamingOptions streaming;
  /// Window width in trace time units. Window boundaries are aligned to
  /// a grid anchored at the first arrival's timestamp; only windows
  /// containing at least one arrival are emitted (so replay cost is
  /// bounded by the arrival count even for sparse timestamps, e.g. Unix
  /// seconds at width 1). During a gap the cumulative counts are those
  /// of the last emitted window.
  uint64_t window_width = 1;
  /// Cumulative (default) or tumbling windows.
  WindowMode mode = WindowMode::kCumulative;
};

/// Streams a validated trace through a StreamingEngine and emits one
/// count vector per time window. When `observer` is non-empty it is
/// invoked with each WindowResult as the window closes (for live
/// consumers); the full series is also returned.
struct ReplayResult {
  std::vector<WindowResult> windows;  ///< one entry per window, in order
  StreamingStats stats;               ///< aggregate engine statistics
};
Result<ReplayResult> ReplayTrace(
    const TemporalTrace& trace, const ReplayOptions& options = {},
    std::function<void(const WindowResult&)> observer = {});

}  // namespace mochy

#endif  // MOCHY_MOTIF_STREAMING_H_
