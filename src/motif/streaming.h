/// \file
/// StreamingEngine: exact h-motif counts maintained under hyperedge
/// arrivals and removals.
///
/// The static stack (MotifEngine, motif/engine.h) answers "count this
/// graph": it materializes the projection once, then counts in
/// O(Σ_e |N_e|²). A service absorbing a stream of updates needs the
/// complement — "keep the 26-motif count vector of the *current* graph
/// exact after every update" — and recounting per update is O(graph)
/// each time. StreamingEngine maintains the vector in O(Δ) per update
/// instead: hyperedges never change their node set in place, so an
/// arriving edge `e` can only *create* motif instances and a removed
/// edge can only *destroy* instances (every affected instance contains
/// `e`, and no other instance changes class). The engine enumerates
/// exactly those instances via the projected neighborhood that
/// `DynamicHypergraph` (hypergraph/dynamic.h) maintains incrementally —
/// the same enumeration both directions, added on arrival, subtracted
/// on removal. The full delta-counting contract — which triples an
/// update touches, why both directions are exact, the per-update
/// complexity — is documented in docs/STREAMING.md.
///
/// Counts are bit-identical to `reference::CountMotifsExact` /
/// `MotifEngine::Count(kExact)` on a snapshot of the same edge multiset
/// after every arrival and removal — any interleaving — for every
/// thread count (tests/streaming_test.cc). Result types are shared with
/// the static facade: the engine returns the same `MotifCounts`, and
/// `StreamingStats` mirrors `EngineStats`.
///
/// A StreamingEngine is single-writer: calls to AddEdge/RemoveEdge must
/// be externally serialized; reads between updates are safe. For
/// multiple producer threads, use `ShardedStreamingEngine` below.
#ifndef MOCHY_MOTIF_STREAMING_H_
#define MOCHY_MOTIF_STREAMING_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "hypergraph/dynamic.h"
#include "hypergraph/temporal_trace.h"
#include "motif/counts.h"

namespace mochy {

/// Knobs for StreamingEngine.
struct StreamingOptions {
  /// Logical workers for the per-arrival delta pass (0 =
  /// DefaultThreadCount()). The pass is parallelized over the arriving
  /// edge's projected neighbors; arrivals with small neighborhoods run
  /// inline regardless, so the stream's common case pays no
  /// synchronization.
  size_t num_threads = 1;

  /// Delta passes whose estimated work (|N(e)|² plus the neighbors'
  /// adjacency sizes) is below this run inline even when num_threads
  /// allows more; fan-out only pays off on hub arrivals.
  uint64_t parallel_work_threshold = 1 << 14;
};

/// Cumulative run statistics over every AddEdge/RemoveEdge so far. The
/// streaming counterpart of EngineStats (motif/engine.h).
struct StreamingStats {
  uint64_t arrivals = 0;           ///< AddEdge calls accepted
  uint64_t removals = 0;           ///< RemoveEdge calls accepted
  uint64_t candidate_triples = 0;  ///< triples examined by delta passes
  uint64_t new_instances = 0;      ///< instances added (classified != 0)
  uint64_t removed_instances = 0;  ///< instances subtracted by removals
  double elapsed_seconds = 0.0;    ///< wall time inside AddEdge/RemoveEdge
  size_t num_threads = 1;          ///< resolved worker budget
  uint64_t num_wedges = 0;         ///< current |∧| of the graph

  /// One-line summary (arrivals, removals, instances, throughput).
  std::string ToString() const;
};

/// Maintains exact 26-motif counts of a fully dynamic hypergraph, one
/// O(Δ) delta pass per arrival or removal.
class StreamingEngine {
 public:
  /// An engine starts empty; feed it with AddEdge (or ReplayTrace).
  explicit StreamingEngine(const StreamingOptions& options = {});

  /// Ingests one hyperedge (any member order, within-edge duplicates
  /// OK) and updates the count vector by enumerating exactly the motif
  /// instances the arrival creates. Returns the new edge's id.
  Result<EdgeId> AddEdge(std::span<const NodeId> nodes);
  /// Convenience overload of AddEdge for brace-list members.
  Result<EdgeId> AddEdge(std::initializer_list<NodeId> nodes);

  /// Removes a live hyperedge and updates the count vector by running
  /// the same delta enumeration in reverse: every instance containing
  /// `e` in the current graph is enumerated and subtracted, then the
  /// edge leaves the graph. Counts afterwards are bit-identical to a
  /// fresh recount of the remaining multiset (integer subtraction is
  /// exact). O(Δ); InvalidArgument for unknown or already removed ids.
  Status RemoveEdge(EdgeId e);

  /// Exact counts of the current graph (valid between updates).
  const MotifCounts& counts() const { return counts_; }

  /// The maintained graph and its incremental projection.
  const DynamicHypergraph& graph() const { return graph_; }

  /// Cumulative statistics over all updates so far.
  const StreamingStats& stats() const { return stats_; }

  /// Drops the graph and counts but keeps options and capacity; used at
  /// tumbling-window boundaries (and reclaims tombstoned id space).
  void Reset();

  /// Adopts a previously captured state (motif/streaming_wal.h): the
  /// edge log — every id ever assigned, including tombstoned ones, in
  /// id order — is replayed through the graph's structural updates only
  /// (no motif delta enumeration; O(graph) instead of O(recount)), and
  /// the count vector is installed verbatim. Afterwards AddEdge /
  /// RemoveEdge continue bit-identically to the engine the state was
  /// captured from: ids resume at the same point, and the restored
  /// graph + counts are exactly what the delta contract needs. The
  /// caller vouches that `counts` are the exact counts of the live
  /// subset of `edges` (the WAL recovery path verifies this via
  /// checksums; tests verify it against reference::CountMotifsExact).
  Status Restore(const std::vector<std::vector<NodeId>>& edges,
                 const std::vector<uint8_t>& live, const MotifCounts& counts,
                 uint64_t arrivals, uint64_t removals);

 private:
  struct DeltaCounters;
  DeltaCounters EnumerateDelta(EdgeId e);
  void PrepareDeltaScratch(EdgeId e, ScratchArena& arena) const;
  void CountDeltaRange(EdgeId e, size_t begin, size_t end,
                       ScratchArena& arena, DeltaCounters& out) const;

  StreamingOptions options_;
  size_t resolved_threads_ = 1;
  DynamicHypergraph graph_;
  MotifCounts counts_;
  StreamingStats stats_;
};

/// How ReplayTrace turns arrival timestamps into emitted count vectors.
enum class WindowMode {
  /// Counts of the cumulative graph at each window close — the evolving
  /// network including everything that arrived so far.
  kCumulative,
  /// The engine resets at each window boundary: counts of each window's
  /// own graph (e.g. one snapshot per year, the paper's Figure 7 setup).
  kTumbling,
  /// True sliding window: arrivals older than `horizon` relative to the
  /// closing window's end are *evicted* through the decremental pass
  /// (StreamingEngine::RemoveEdge) instead of the engine rebuilding.
  /// With horizon == window_width the emitted series is bit-identical
  /// to kTumbling; a larger horizon yields overlapping windows (e.g.
  /// "last 7 days, emitted daily") no rebuild mode can express.
  kSliding,
};

/// Per-window output of ReplayTrace.
struct WindowResult {
  uint64_t start_time = 0;  ///< window start (inclusive)
  uint64_t end_time = 0;    ///< window end (exclusive)
  uint64_t arrivals = 0;    ///< arrivals that fell into this window
  uint64_t evictions = 0;   ///< edges evicted at this close (kSliding)
  size_t num_edges = 0;     ///< live graph size at window close
  /// Exact counts at window close (cumulative, window, or horizon
  /// graph, per WindowMode).
  MotifCounts counts;
};

/// Knobs for ReplayTrace.
struct ReplayOptions {
  /// Per-arrival engine knobs.
  StreamingOptions streaming;
  /// Window width in trace time units. Window boundaries are aligned to
  /// a grid anchored at the first arrival's timestamp; only windows
  /// containing at least one arrival are emitted (so replay cost is
  /// bounded by the arrival count even for sparse timestamps, e.g. Unix
  /// seconds at width 1). During a gap the cumulative counts are those
  /// of the last emitted window.
  uint64_t window_width = 1;
  /// Cumulative (default), tumbling, or sliding windows.
  WindowMode mode = WindowMode::kCumulative;
  /// kSliding only: the age cutoff. At each window close T, edges whose
  /// arrival time is < T - horizon are evicted, so every emitted vector
  /// counts exactly the arrivals of the trailing `horizon` time units.
  /// 0 means window_width; values below window_width are rejected
  /// (arrivals would expire before their own window closed).
  uint64_t horizon = 0;
};

/// Streams a validated trace through a StreamingEngine and emits one
/// count vector per time window. When `observer` is non-empty it is
/// invoked with each WindowResult as the window closes (for live
/// consumers); the full series is also returned.
struct ReplayResult {
  std::vector<WindowResult> windows;  ///< one entry per window, in order
  StreamingStats stats;               ///< aggregate engine statistics
};
Result<ReplayResult> ReplayTrace(
    const TemporalTrace& trace, const ReplayOptions& options = {},
    std::function<void(const WindowResult&)> observer = {});

/// Multi-producer front end over a single StreamingEngine: k producer
/// threads drive one live count vector.
///
/// Producers call Submit(shard, nodes), which appends the edge to the
/// shard's staging log under that shard's own mutex — producers on
/// different shards never contend, and the per-shard slots are
/// cache-line aligned (kCacheLineBytes) so staging writes on one shard
/// cannot invalidate another shard's line. Staged arrivals enter the
/// graph when Drain() runs: it claims the engine mutex once and applies
/// every staged edge through StreamingEngine::AddEdge, shard by shard
/// in index order and in submission order within each shard.
///
/// \par Linearization point
/// A submitted edge takes effect at the moment Drain() applies it to
/// the engine while holding the engine mutex — not at Submit(), which
/// only stages. Every read (Counts, Stats, Snapshot) drains first and
/// reads under the same mutex, so a reader observes a prefix of each
/// shard's submission order, and any edge staged before the read began
/// is included. Because the maintained vector is an exact multiset
/// count, the *values* are independent of how shard orders interleave:
/// after full drains of the same submissions, counts are bit-identical
/// across runs and thread schedules.
///
/// Per-shard contributions stay mergeable: ShardDelta(s) is the sum of
/// the count deltas of the arrivals shard s has applied, and the
/// ShardDelta vectors of all shards sum bit-exactly to Counts() once
/// drained (tests/streaming_test.cc).
class ShardedStreamingEngine {
 public:
  /// `num_shards` staging slots (≥ 1 enforced); producers map to shards
  /// however the caller likes — shard = producer index is typical.
  explicit ShardedStreamingEngine(size_t num_shards,
                                  const StreamingOptions& options = {});

  /// Number of staging shards.
  size_t num_shards() const { return shards_.size(); }

  /// Stages one hyperedge on `shard` (thread-safe per shard and across
  /// shards; same member rules as StreamingEngine::AddEdge). The edge
  /// becomes visible at the next Drain().
  Status Submit(size_t shard, std::span<const NodeId> nodes);
  /// Convenience overload of Submit for brace-list members.
  Status Submit(size_t shard, std::initializer_list<NodeId> nodes);

  /// Applies every staged arrival to the engine (shard index order,
  /// submission order within a shard) and returns how many were
  /// applied. Thread-safe; concurrent drains serialize on the engine
  /// mutex. Malformed staged edges (empty after normalization) are
  /// counted in dropped_submissions() rather than failing the drain.
  size_t Drain();

  /// Drains, then returns the exact counts of everything submitted
  /// before this call (linearizable read).
  MotifCounts Counts();

  /// Drains, then returns shard `s`'s merged contribution: the sum of
  /// count deltas of the arrivals it applied. Σ_s ShardDelta(s) ==
  /// Counts() bit-exactly.
  MotifCounts ShardDelta(size_t shard);

  /// Drains, then returns the engine's cumulative statistics.
  StreamingStats Stats();

  /// Drains, then freezes the current graph (applied arrivals only).
  Result<Hypergraph> Snapshot();

  /// Submissions rejected at application time (e.g. edges with no
  /// member nodes); read under the engine mutex after a drain.
  uint64_t dropped_submissions();

 private:
  struct alignas(kCacheLineBytes) Shard {
    std::mutex mutex;              // guards `staged` only
    std::vector<std::vector<NodeId>> staged;
    // Applied-side state, guarded by engine_mutex_ (not `mutex`):
    MotifCounts delta;             // merged contribution of this shard
    std::vector<std::vector<NodeId>> draining;  // reused swap buffer
  };

  size_t DrainLocked();  // requires engine_mutex_

  std::mutex engine_mutex_;  // guards engine_, dropped_, Shard::delta
  StreamingEngine engine_;
  uint64_t dropped_ = 0;
  // deque: Shard is immovable (mutex); emplace_back never relocates.
  std::deque<Shard> shards_;
};

}  // namespace mochy

#endif  // MOCHY_MOTIF_STREAMING_H_
