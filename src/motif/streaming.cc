#include "motif/streaming.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/scratch_arena.h"
#include "common/timer.h"
#include "motif/pattern.h"

namespace mochy {

std::string StreamingStats::ToString() const {
  char buffer[240];
  const uint64_t updates = arrivals + removals;
  const double rate =
      elapsed_seconds > 0.0 ? static_cast<double>(updates) / elapsed_seconds
                            : 0.0;
  std::snprintf(buffer, sizeof(buffer),
                "arrivals=%llu removals=%llu instances=+%llu/-%llu "
                "wedges=%llu threads=%zu elapsed=%.3fs (%.0f updates/s)",
                static_cast<unsigned long long>(arrivals),
                static_cast<unsigned long long>(removals),
                static_cast<unsigned long long>(new_instances),
                static_cast<unsigned long long>(removed_instances),
                static_cast<unsigned long long>(num_wedges), num_threads,
                elapsed_seconds, rate);
  return buffer;
}

struct StreamingEngine::DeltaCounters {
  MotifCounts counts;
  uint64_t candidates = 0;
  uint64_t instances = 0;
};

StreamingEngine::StreamingEngine(const StreamingOptions& options)
    : options_(options) {
  resolved_threads_ =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  stats_.num_threads = resolved_threads_;
}

Result<EdgeId> StreamingEngine::AddEdge(std::span<const NodeId> nodes) {
  Timer timer;
  auto added = graph_.AddEdge(nodes);
  if (!added.ok()) return added.status();
  const DeltaCounters delta = EnumerateDelta(added.value());
  counts_ += delta.counts;
  stats_.arrivals += 1;
  stats_.candidate_triples += delta.candidates;
  stats_.new_instances += delta.instances;
  stats_.num_wedges = graph_.num_wedges();
  stats_.elapsed_seconds += timer.Seconds();
  return added;
}

Result<EdgeId> StreamingEngine::AddEdge(std::initializer_list<NodeId> nodes) {
  return AddEdge(std::span<const NodeId>(nodes.begin(), nodes.size()));
}

Status StreamingEngine::RemoveEdge(EdgeId e) {
  Timer timer;
  if (e >= graph_.num_edges() || !graph_.is_live(e)) {
    return Status::InvalidArgument("edge id not live");
  }
  // Enumerate while `e` is still in the graph: the arrival pass lists
  // exactly the instances containing `e`, which — node sets never
  // mutate in place — are exactly the instances the removal destroys.
  // The counts are small integers held in doubles, so the subtraction
  // reverses the earlier additions bit-exactly.
  const DeltaCounters delta = EnumerateDelta(e);
  counts_ -= delta.counts;
  Status removed = graph_.RemoveEdge(e);
  MOCHY_DCHECK(removed.ok());
  stats_.removals += 1;
  stats_.candidate_triples += delta.candidates;
  stats_.removed_instances += delta.instances;
  stats_.num_wedges = graph_.num_wedges();
  stats_.elapsed_seconds += timer.Seconds();
  return removed;
}

void StreamingEngine::Reset() {
  graph_.Clear();
  counts_ = MotifCounts();
  stats_.num_wedges = 0;
}

Status StreamingEngine::Restore(const std::vector<std::vector<NodeId>>& edges,
                                const std::vector<uint8_t>& live,
                                const MotifCounts& counts, uint64_t arrivals,
                                uint64_t removals) {
  if (live.size() != edges.size()) {
    return Status::InvalidArgument(
        "restore: live flags (" + std::to_string(live.size()) +
        ") and edge log (" + std::to_string(edges.size()) + ") disagree");
  }
  Reset();
  // Rebuild the structural state only: add every logged edge in id
  // order (reproducing the original id assignment), then tombstone the
  // dead ones. DynamicHypergraph updates are O(Δ) each, so this is
  // O(graph), while re-deriving the counts would be O(full recount).
  for (size_t e = 0; e < edges.size(); ++e) {
    auto added = graph_.AddEdge(edges[e]);
    if (!added.ok()) {
      return Status::Internal("restore: edge " + std::to_string(e) +
                              " rejected: " + added.status().message());
    }
    if (added.value() != static_cast<EdgeId>(e)) {
      return Status::Internal("restore: edge id mismatch");
    }
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    if (live[e] != 0) continue;
    MOCHY_RETURN_IF_ERROR(graph_.RemoveEdge(static_cast<EdgeId>(e)));
  }
  counts_ = counts;
  stats_.arrivals = arrivals;
  stats_.removals = removals;
  stats_.num_wedges = graph_.num_wedges();
  return Status::OK();
}

// Sizes `arena` for the current graph and scatters the arrival's
// neighborhood (N(e) membership + w(e, ·)) and node set. Done once per
// executing thread and arrival: the delta loops below only bump the
// edge_weight / node_pair epochs, which leaves these stamps valid
// across chunk claims.
void StreamingEngine::PrepareDeltaScratch(EdgeId e,
                                          ScratchArena& arena) const {
  arena.EnsureEdges(graph_.num_edges());
  arena.EnsureNodes(graph_.num_nodes());
  arena.edge_weight2.NewEpoch();
  for (const Neighbor& n : graph_.neighbors(e)) {
    arena.edge_weight2.Set(n.edge, n.weight);
  }
  arena.node_hub.NewEpoch();
  for (const NodeId v : graph_.edge(e)) arena.node_hub.Insert(v);
}

// Enumerates every new instance whose smallest role is played by the
// neighbors nbrs[begin..end) of the arrival `e` (see docs/STREAMING.md:
// hub-at-e pairs are split by their first element, leaf triples by the
// shared neighbor). `arena` must be prepared via PrepareDeltaScratch;
// safe to run concurrently for disjoint ranges with per-thread arenas.
void StreamingEngine::CountDeltaRange(EdgeId e, size_t begin, size_t end,
                                      ScratchArena& arena,
                                      DeltaCounters& out) const {
  const auto nbrs = graph_.neighbors(e);
  const uint64_t size_e = graph_.edge_size(e);

  for (size_t ai = begin; ai < end; ++ai) {
    const EdgeId a = nbrs[ai].edge;
    const uint64_t w_ea = nbrs[ai].weight;
    const uint64_t size_a = graph_.edge_size(a);

    // One sweep over N(a): scatter w(a, ·) for the pair loop below and
    // emit the leaf triples {e, a, b} with b outside N(e) on the way.
    arena.edge_weight.NewEpoch();
    for (const Neighbor& nb : graph_.neighbors(a)) {
      const EdgeId b = nb.edge;
      if (b == e) continue;
      arena.edge_weight.Set(b, nb.weight);
      if (arena.edge_weight2.Test(b)) continue;  // hub pair, handled below
      ++out.candidates;
      // b never touches e: the triple is open with hub a, and the
      // triple intersection is empty.
      const int id = ClassifyMotifOrZero(size_e, size_a, graph_.edge_size(b),
                                         w_ea, nb.weight, /*w_ca=*/0,
                                         /*w_abc=*/0);
      if (id != 0) {
        out.counts[id] += 1.0;
        ++out.instances;
      }
    }

    // Pairs {a, b} within N(e), deduplicated by a < b in neighbor order.
    // e ∩ a is stamped lazily: only pairs that reach a closed triple pay
    // for it (same trick as the static hub kernel).
    bool pair_ready = false;
    for (size_t bi = ai + 1; bi < nbrs.size(); ++bi) {
      const EdgeId b = nbrs[bi].edge;
      const uint64_t w_eb = nbrs[bi].weight;
      const uint64_t w_ab = arena.edge_weight.Get(b);
      ++out.candidates;
      uint64_t w_eab = 0;
      if (w_ab != 0) {
        if (!pair_ready) {
          arena.node_pair.NewEpoch();
          for (const NodeId v : graph_.edge(a)) {
            if (arena.node_hub.Test(v)) arena.node_pair.Insert(v);
          }
          pair_ready = true;
        }
        for (const NodeId v : graph_.edge(b)) {
          w_eab += arena.node_pair.Test(v) ? 1 : 0;
        }
      }
      const int id = ClassifyMotifOrZero(size_e, size_a, graph_.edge_size(b),
                                         w_ea, w_ab, w_eb, w_eab);
      if (id != 0) {
        out.counts[id] += 1.0;
        ++out.instances;
      }
    }
  }
}

// Enumerates the motif instances containing `e` in the current graph:
// the delta an arrival adds and, symmetrically, the delta a removal
// subtracts (callers apply the sign). `e` must be live.
StreamingEngine::DeltaCounters StreamingEngine::EnumerateDelta(EdgeId e) {
  DeltaCounters total;
  const auto nbrs = graph_.neighbors(e);
  if (nbrs.empty()) return total;

  // Estimated delta work, mirroring the static hub estimate |N|²: the
  // pair loop is |N(e)|² and each neighbor's adjacency is swept once.
  uint64_t estimate =
      static_cast<uint64_t>(nbrs.size()) * static_cast<uint64_t>(nbrs.size());
  for (const Neighbor& n : nbrs) estimate += graph_.projected_degree(n.edge);

  if (resolved_threads_ > 1 && nbrs.size() >= 2 &&
      estimate >= options_.parallel_work_threshold) {
    const size_t workers = std::min(resolved_threads_, nbrs.size());
    std::vector<uint64_t> cost(nbrs.size());
    for (size_t ai = 0; ai < nbrs.size(); ++ai) {
      cost[ai] = graph_.projected_degree(nbrs[ai].edge) +
                 static_cast<uint64_t>(nbrs.size() - ai);
    }
    // Claim Σ-cost-balanced chunks with one atomic each (the hub-loop
    // scheduling idiom), but prepare each thread's arena once for the
    // whole arrival, not per chunk: the N(e)/node scatter is O(Δ) and
    // would otherwise be repaid ~16 times per worker.
    const std::vector<size_t> chunks =
        WorkChunkBoundaries(cost, workers * 16);
    const size_t num_chunks = chunks.size() - 1;
    std::atomic<size_t> next_chunk{0};
    std::vector<DeltaCounters> partial(workers);
    ParallelWorkers(workers, [&](size_t worker) {
      ScratchArena& arena = LocalScratchArena();
      PrepareDeltaScratch(e, arena);
      while (true) {
        const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        CountDeltaRange(e, chunks[c], chunks[c + 1], arena, partial[worker]);
      }
    });
    for (const DeltaCounters& part : partial) {
      total.counts += part.counts;
      total.candidates += part.candidates;
      total.instances += part.instances;
    }
  } else {
    ScratchArena& arena = LocalScratchArena();
    PrepareDeltaScratch(e, arena);
    CountDeltaRange(e, 0, nbrs.size(), arena, total);
  }
  return total;
}

Result<ReplayResult> ReplayTrace(
    const TemporalTrace& trace, const ReplayOptions& options,
    std::function<void(const WindowResult&)> observer) {
  if (options.window_width == 0) {
    return Status::InvalidArgument("window_width must be positive");
  }
  const bool sliding = options.mode == WindowMode::kSliding;
  const uint64_t horizon =
      options.horizon == 0 ? options.window_width : options.horizon;
  if (sliding && horizon < options.window_width) {
    return Status::InvalidArgument(
        "sliding horizon must be at least window_width");
  }
  if (Status s = trace.Validate(); !s.ok()) return s;

  ReplayResult result;
  StreamingEngine engine(options.streaming);
  if (trace.empty()) {
    result.stats = engine.stats();
    return result;
  }

  constexpr uint64_t kMaxTime = std::numeric_limits<uint64_t>::max();
  const uint64_t origin = trace.arrivals.front().time;
  // kSliding: the live edges oldest-first, as (engine edge id, arrival
  // time). Arrival order is time order (Validate), so eviction only
  // ever pops from the front.
  std::deque<std::pair<EdgeId, uint64_t>> live;
  size_t index = 0;
  while (index < trace.size()) {
    // Jump to the grid window containing the next arrival: gaps emit no
    // windows, so replay cost is bounded by the arrival count even when
    // timestamps are sparse (e.g. Unix seconds replayed at width 1).
    const uint64_t k =
        (trace.arrivals[index].time - origin) / options.window_width;
    const uint64_t window_start = origin + k * options.window_width;
    // A window whose exclusive end would pass 2^64-1 saturates and must
    // swallow the remaining arrivals; an end that merely *equals* the
    // max without saturating is a regular boundary.
    const bool saturated = window_start > kMaxTime - options.window_width;
    const uint64_t window_end =
        saturated ? kMaxTime : window_start + options.window_width;
    if (options.mode == WindowMode::kTumbling) engine.Reset();
    uint64_t evictions = 0;
    if (sliding) {
      // Age out everything the closing window must not count: edges
      // older than `horizon` relative to this window's end leave the
      // graph through the decremental pass. Arrivals of this window are
      // never younger than the cutoff (horizon ≥ width), so evicting
      // before ingesting them is equivalent and keeps the deque simple.
      const uint64_t cutoff = window_end >= horizon ? window_end - horizon : 0;
      while (!live.empty() && live.front().second < cutoff) {
        if (Status s = engine.RemoveEdge(live.front().first); !s.ok()) {
          return s;
        }
        live.pop_front();
        ++evictions;
      }
    }
    uint64_t arrivals = 0;
    while (index < trace.size() &&
           (saturated || trace.arrivals[index].time < window_end)) {
      const TimedEdge& arrival = trace.arrivals[index];
      auto added = engine.AddEdge(std::span<const NodeId>(
          arrival.nodes.data(), arrival.nodes.size()));
      if (!added.ok()) return added.status();
      if (sliding) live.emplace_back(added.value(), arrival.time);
      ++arrivals;
      ++index;
    }
    WindowResult window;
    window.start_time = window_start;
    window.end_time = window_end;
    window.arrivals = arrivals;
    window.evictions = evictions;
    window.num_edges = engine.graph().num_live_edges();
    window.counts = engine.counts();
    if (observer) observer(window);
    result.windows.push_back(std::move(window));
  }
  result.stats = engine.stats();
  return result;
}

ShardedStreamingEngine::ShardedStreamingEngine(size_t num_shards,
                                               const StreamingOptions& options)
    : engine_(options) {
  if (num_shards == 0) num_shards = 1;
  for (size_t s = 0; s < num_shards; ++s) shards_.emplace_back();
}

Status ShardedStreamingEngine::Submit(size_t shard,
                                      std::span<const NodeId> nodes) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  Shard& slot = shards_[shard];
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.staged.emplace_back(nodes.begin(), nodes.end());
  return Status::OK();
}

Status ShardedStreamingEngine::Submit(size_t shard,
                                      std::initializer_list<NodeId> nodes) {
  return Submit(shard, std::span<const NodeId>(nodes.begin(), nodes.size()));
}

// The linearization point of every submitted edge is its AddEdge call
// below: engine_mutex_ is held, so applications are totally ordered,
// and the swap takes each shard's staged log in submission order.
size_t ShardedStreamingEngine::DrainLocked() {
  size_t applied = 0;
  for (Shard& shard : shards_) {
    {
      // Take the whole staged log in one swap so producers only block
      // for the pointer exchange, never for the counting work.
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.draining.swap(shard.staged);
    }
    for (const std::vector<NodeId>& nodes : shard.draining) {
      const MotifCounts before = engine_.counts();
      auto added = engine_.AddEdge(
          std::span<const NodeId>(nodes.data(), nodes.size()));
      if (!added.ok()) {
        dropped_ += 1;
        continue;
      }
      // Record the arrival's exact count delta against the shard so the
      // per-shard vectors stay mergeable: Σ_s delta_s == counts.
      MotifCounts delta = engine_.counts();
      delta -= before;
      shard.delta += delta;
      ++applied;
    }
    shard.draining.clear();
  }
  return applied;
}

size_t ShardedStreamingEngine::Drain() {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  return DrainLocked();
}

MotifCounts ShardedStreamingEngine::Counts() {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  DrainLocked();
  return engine_.counts();
}

MotifCounts ShardedStreamingEngine::ShardDelta(size_t shard) {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  DrainLocked();
  MOCHY_DCHECK(shard < shards_.size());
  if (shard >= shards_.size()) return MotifCounts();
  return shards_[shard].delta;
}

StreamingStats ShardedStreamingEngine::Stats() {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  DrainLocked();
  return engine_.stats();
}

Result<Hypergraph> ShardedStreamingEngine::Snapshot() {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  DrainLocked();
  return engine_.graph().Snapshot();
}

uint64_t ShardedStreamingEngine::dropped_submissions() {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  DrainLocked();
  return dropped_;
}

}  // namespace mochy
