// MoCHy-E: exact h-motif counting (paper Algorithm 2).
//
// For every hyperedge e_i and every unordered pair {e_j, e_k} of its
// projected-graph neighbors, the triple {e_i, e_j, e_k} is an h-motif
// instance. Open instances (e_j ∩ e_k = ∅) are visited exactly once (at
// their unique "hub"); closed instances are visited three times, so they
// are counted only when i < min(j, k). Complexity
// O(Σ_e |e| · |N_e|²) (Theorem 1).
//
// The hot loop runs on epoch-stamped scratch arrays (motif/stamp_kernels.h,
// docs/ARCHITECTURE.md "Counting kernels"): per-pair weights come from a
// dense scatter of N(e_j) instead of hash probes, triple intersections from
// stamped node marks, and hubs are claimed in Σd²-balanced chunks. The
// pre-stamp implementation is retained in motif/reference.h as the
// differential-test oracle and bench baseline.
#ifndef MOCHY_MOTIF_MOCHY_E_H_
#define MOCHY_MOTIF_MOCHY_E_H_

#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

/// Exactly counts every h-motif's instances. `num_threads` parallelizes
/// over hub hyperedges (Section 3.4); 0 means DefaultThreadCount(). The
/// result is identical for any thread count.
MotifCounts CountMotifsExact(const Hypergraph& graph,
                             const ProjectedGraph& projection,
                             size_t num_threads = 1);

/// Convenience overload that builds the projection internally.
MotifCounts CountMotifsExact(const Hypergraph& graph,
                             size_t num_threads = 1);

}  // namespace mochy

#endif  // MOCHY_MOTIF_MOCHY_E_H_
