/// \file
/// Retained pre-stamp-array counting kernels (the hash-probe baselines).
///
/// These are the MoCHy-E/A/A+ implementations as they stood before the
/// stamp-array rewrite: the exact counter probes `ProjectedGraph::Weight`
/// (an open-addressing hash table) once per candidate pair and computes
/// triple intersections with Lemma-2 binary searches; the samplers clear
/// their |E|-sized scratch explicitly after every sample. They are kept,
/// verbatim, for two purposes:
///
///  - **differential testing**: the production kernels must stay
///    bit-identical to these on every graph, seed and thread count
///    (tests/kernel_diff_test.cc);
///  - **a measured baseline**: bench/bench_report runs them next to the
///    production kernels so every BENCH_*.json records the speedup of the
///    stamp-array design against the design it replaced.
///
/// They accept the same options structs as the production entry points and
/// follow the same num_threads contract (0 = DefaultThreadCount()).
#ifndef MOCHY_MOTIF_REFERENCE_H_
#define MOCHY_MOTIF_REFERENCE_H_

#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"

namespace mochy::reference {

/// MoCHy-E with per-pair hash probes and one atomic claim per hub.
MotifCounts CountMotifsExact(const Hypergraph& graph,
                             const ProjectedGraph& projection,
                             size_t num_threads = 1);

/// MoCHy-A with explicitly cleared scratch and per-pair hash probes.
MotifCounts CountMotifsEdgeSample(const Hypergraph& graph,
                                  const ProjectedGraph& projection,
                                  const MochyAOptions& options);

/// MoCHy-A+ with explicitly cleared scratch arrays.
MotifCounts CountMotifsWedgeSample(const Hypergraph& graph,
                                   const ProjectedGraph& projection,
                                   const MochyAPlusOptions& options);

}  // namespace mochy::reference

#endif  // MOCHY_MOTIF_REFERENCE_H_
