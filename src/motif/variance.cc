#include "motif/variance.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "motif/enumerate.h"

namespace mochy {

namespace {

/// The hyperwedges (unordered adjacent edge pairs) of an instance, as
/// packed pair keys. Open instances have 2, closed have 3.
void InstanceWedges(const ProjectedGraph& projection,
                    const MotifInstance& inst, std::vector<uint64_t>* out) {
  out->clear();
  const EdgeId e[3] = {inst.i, inst.j, inst.k};
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      if (projection.Weight(e[a], e[b]) > 0) {
        out->push_back(PackPair(e[a], e[b]));
      }
    }
  }
}

}  // namespace

VarianceTerms ComputeVarianceTerms(const Hypergraph& graph,
                                   const ProjectedGraph& projection) {
  VarianceTerms terms;
  // Bucket instances per motif.
  std::array<std::vector<MotifInstance>, kNumHMotifs> instances;
  EnumerateInstances(graph, projection, [&](const MotifInstance& inst) {
    instances[inst.motif - 1].push_back(inst);
    terms.counts[inst.motif] += 1.0;
  });

  std::vector<uint64_t> wedges_a, wedges_b;
  for (int t = 0; t < kNumHMotifs; ++t) {
    const auto& list = instances[t];
    for (size_t a = 0; a < list.size(); ++a) {
      EdgeId ea[3] = {list[a].i, list[a].j, list[a].k};
      std::sort(ea, ea + 3);
      InstanceWedges(projection, list[a], &wedges_a);
      for (size_t b = a + 1; b < list.size(); ++b) {
        EdgeId eb[3] = {list[b].i, list[b].j, list[b].k};
        std::sort(eb, eb + 3);
        // Shared hyperedges.
        int shared_edges = 0;
        for (EdgeId x : ea) {
          for (EdgeId y : eb) {
            if (x == y) ++shared_edges;
          }
        }
        MOCHY_DCHECK(shared_edges <= 2) << "distinct instances share <= 2";
        // Shared hyperwedges.
        InstanceWedges(projection, list[b], &wedges_b);
        int shared_wedges = 0;
        for (uint64_t wa : wedges_a) {
          for (uint64_t wb : wedges_b) {
            if (wa == wb) ++shared_wedges;
          }
        }
        MOCHY_DCHECK(shared_wedges <= 1);
        // Ordered pairs: each unordered pair counts twice.
        terms.p[t][static_cast<size_t>(shared_edges)] += 2.0;
        terms.q[t][static_cast<size_t>(shared_wedges)] += 2.0;
      }
    }
  }
  return terms;
}

double MochyAVariance(const VarianceTerms& terms, int motif, uint64_t s,
                      uint64_t num_edges) {
  MOCHY_CHECK(motif >= 1 && motif <= kNumHMotifs);
  MOCHY_CHECK(s > 0);
  const double m = terms.counts[motif];
  const double e = static_cast<double>(num_edges);
  const double samples = static_cast<double>(s);
  double variance = m * (e - 3.0) / (3.0 * samples);
  for (int l = 0; l <= 2; ++l) {
    variance += terms.p[motif - 1][static_cast<size_t>(l)] *
                (static_cast<double>(l) * e - 9.0) / (9.0 * samples);
  }
  return variance;
}

double MochyAPlusVariance(const VarianceTerms& terms, int motif, uint64_t r,
                          uint64_t num_wedges) {
  MOCHY_CHECK(motif >= 1 && motif <= kNumHMotifs);
  MOCHY_CHECK(r > 0);
  const double m = terms.counts[motif];
  const double wedges = static_cast<double>(num_wedges);
  const double samples = static_cast<double>(r);
  // w[t] = wedges per instance: 2 for open, 3 for closed motifs.
  const double w = IsOpenMotif(motif) ? 2.0 : 3.0;
  double variance = m * (wedges - w) / (w * samples);
  for (int n = 0; n <= 1; ++n) {
    variance += terms.q[motif - 1][static_cast<size_t>(n)] *
                (static_cast<double>(n) * wedges - w * w) /
                (w * w * samples);
  }
  return variance;
}

}  // namespace mochy
