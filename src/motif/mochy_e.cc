#include "motif/mochy_e.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/scratch_arena.h"
#include "motif/stamp_kernels.h"

namespace mochy {

namespace {

// Scattering N(e_j) costs |N_j| writes and is amortized over the pairs
// still to come in the hub's pair loop. When the tail of the pair loop is
// short and N(e_j) is huge, fall back to per-pair hash probes for this
// e_j: identical counts, better constant.
inline bool WorthScattering(size_t neighborhood, size_t remaining_pairs) {
  return neighborhood <= 16 + 4 * remaining_pairs;
}

// Counts every instance hubbed at e_i into `local`. The arena must be
// sized for the graph; `size_of` is the hoisted edge-size array.
void CountHub(const Hypergraph& graph, const ProjectedGraph& projection,
              EdgeId ei, const uint32_t* size_of, ScratchArena& arena,
              MotifCounts& local) {
  const auto nbrs = projection.neighbors(ei);
  if (nbrs.size() < 2) return;
  const uint64_t size_i = size_of[ei];
  internal::StampHubNodes(graph, ei, arena);

  for (size_t a = 0; a + 1 < nbrs.size(); ++a) {
    const EdgeId ej = nbrs[a].edge;
    const uint64_t w_ij = nbrs[a].weight;
    const uint64_t size_j = size_of[ej];
    const size_t remaining = nbrs.size() - a - 1;

    const auto nbrs_j = projection.neighbors(ej);
    const bool scattered = WorthScattering(nbrs_j.size(), remaining);
    if (scattered) {
      arena.edge_weight.NewEpoch();
      for (const Neighbor& n : nbrs_j) arena.edge_weight.Set(n.edge, n.weight);
    }
    // e_i ∩ e_j is scattered lazily: only hubs whose pair loop actually
    // reaches a closed triple pay for it.
    bool pair_ready = false;

    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      const EdgeId ek = nbrs[b].edge;
      const uint64_t w_jk =
          scattered ? arena.edge_weight.Get(ek) : projection.Weight(ej, ek);
      // Count open instances at their unique hub; closed instances only
      // from the smallest hub id (Algorithm 2, line 4).
      if (w_jk != 0 && ei >= std::min(ej, ek)) continue;
      const uint64_t w_ik = nbrs[b].weight;
      const uint64_t size_k = size_of[ek];
      uint64_t w_ijk = 0;
      if (w_jk != 0) {
        if (!pair_ready) {
          internal::StampPairNodes(graph, ej, arena);
          pair_ready = true;
        }
        w_ijk = internal::StampedTripleIntersection(graph, ek, arena);
      }
      // Triples containing duplicated hyperedges correspond to no h-motif
      // (paper Figure 4) and yield id 0: skip them. They can occur when
      // duplicate removal is disabled (e.g. null models).
      const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij, w_jk,
                                         w_ik, w_ijk);
      if (id != 0) local[id] += 1.0;
    }
  }
}

}  // namespace

MotifCounts CountMotifsExact(const Hypergraph& graph,
                             const ProjectedGraph& projection,
                             size_t num_threads) {
  const size_t m = graph.num_edges();
  MOCHY_CHECK(projection.num_edges() == m)
      << "projection does not match hypergraph";
  if (num_threads == 0) num_threads = DefaultThreadCount();

  const std::vector<uint32_t> size_of = internal::HoistEdgeSizes(graph);

  // Per-hub work is ~|N_e|² and projected degrees are heavy-tailed, so
  // static blocks balance poorly and one atomic claim per hub wastes the
  // cheap hubs. Chunk hubs by the Σd² work estimate instead: workers claim
  // whole chunks of near-equal estimated work with a single atomic each.
  const std::vector<uint64_t> cost = internal::HubWorkEstimate(projection);
  std::vector<MotifCounts> partial(num_threads);
  ParallelWorkChunks(cost, num_threads,
                     [&](size_t thread, size_t begin, size_t end) {
    ScratchArena& arena = LocalScratchArena();
    arena.EnsureEdges(m);
    arena.EnsureNodes(graph.num_nodes());
    MotifCounts& local = partial[thread];
    for (size_t i = begin; i < end; ++i) {
      CountHub(graph, projection, static_cast<EdgeId>(i), size_of.data(),
               arena, local);
    }
  });

  MotifCounts total;
  for (const MotifCounts& part : partial) total += part;
  return total;
}

MotifCounts CountMotifsExact(const Hypergraph& graph, size_t num_threads) {
  auto projection = ProjectedGraph::Build(graph, num_threads);
  MOCHY_CHECK(projection.ok()) << projection.status().ToString();
  return CountMotifsExact(graph, projection.value(), num_threads);
}

}  // namespace mochy
