#include "motif/mochy_e.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"

namespace mochy {

MotifCounts CountMotifsExact(const Hypergraph& graph,
                             const ProjectedGraph& projection,
                             size_t num_threads) {
  const size_t m = graph.num_edges();
  MOCHY_CHECK(projection.num_edges() == m)
      << "projection does not match hypergraph";
  if (num_threads == 0) num_threads = 1;

  std::vector<MotifCounts> partial(num_threads);
  // Work stealing over hubs: per-hub work is |N_e|^2 and projected degrees
  // are heavy-tailed, so static blocks would balance poorly.
  std::atomic<size_t> next_hub{0};
  auto worker = [&](size_t thread) {
    MotifCounts& local = partial[thread];
    while (true) {
      const size_t i = next_hub.fetch_add(1, std::memory_order_relaxed);
      if (i >= m) return;
      const EdgeId ei = static_cast<EdgeId>(i);
      const auto nbrs = projection.neighbors(ei);
      const uint64_t size_i = graph.edge_size(ei);
      for (size_t a = 0; a < nbrs.size(); ++a) {
        const EdgeId ej = nbrs[a].edge;
        const uint64_t w_ij = nbrs[a].weight;
        const uint64_t size_j = graph.edge_size(ej);
        for (size_t b = a + 1; b < nbrs.size(); ++b) {
          const EdgeId ek = nbrs[b].edge;
          const uint64_t w_jk = projection.Weight(ej, ek);
          // Count open instances at their unique hub; closed instances
          // only from the smallest hub id (Algorithm 2, line 4).
          if (w_jk != 0 && ei >= std::min(ej, ek)) continue;
          const uint64_t w_ik = nbrs[b].weight;
          const uint64_t size_k = graph.edge_size(ek);
          const uint64_t w_ijk =
              w_jk == 0 ? 0 : graph.TripleIntersectionSize(ei, ej, ek);
          // Triples containing duplicated hyperedges correspond to no
          // h-motif (paper Figure 4) and yield id 0: skip them. They can
          // occur when duplicate removal is disabled (e.g. null models).
          const int id = ClassifyMotifOrZero(size_i, size_j, size_k, w_ij,
                                             w_jk, w_ik, w_ijk);
          if (id != 0) local[id] += 1.0;
        }
      }
    }
  };
  ParallelWorkers(num_threads, worker);

  MotifCounts total;
  for (const MotifCounts& part : partial) total += part;
  return total;
}

MotifCounts CountMotifsExact(const Hypergraph& graph, size_t num_threads) {
  auto projection = ProjectedGraph::Build(graph, num_threads);
  MOCHY_CHECK(projection.ok()) << projection.status().ToString();
  return CountMotifsExact(graph, projection.value(), num_threads);
}

}  // namespace mochy
