#include "motif/streaming_wal.h"

#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"

namespace mochy {

namespace {

// On-disk record: [u32 payload_len][u32 checksum][payload], all
// little-endian. Payload type tags:
constexpr uint8_t kRecordAdd = 1;     // u8 tag, u32 n, n * u32 node ids
constexpr uint8_t kRecordRemove = 2;  // u8 tag, u64 edge id
// A record far above any real edge is treated as corruption, so a
// garbage length prefix cannot allocate unbounded memory during replay.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

constexpr uint32_t kCheckpointMagic = 0x504b434d;  // "MCKP" little-endian
constexpr uint32_t kCheckpointVersion = 1;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// FNV-1a over raw bytes, folded to 32 bits for record headers.
uint64_t Fnv64(const char* data, size_t size, uint64_t h = 0xcbf29ce484222325ULL) {
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint32_t Checksum32(const char* data, size_t size) {
  const uint64_t h = Fnv64(data, size);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

void AppendU32(std::string& out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff),
                   static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff),
                   static_cast<char>((v >> 24) & 0xff)};
  out.append(bytes, sizeof(bytes));
}

void AppendU64(std::string& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

/// Bounds-checked little-endian reader over a parsed buffer.
struct Reader {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool ReadU8(uint8_t* v) {
    if (pos + 1 > size) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos + 4 > size) return false;
    const unsigned char* p = reinterpret_cast<const unsigned char*>(data + pos);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
};

/// One parsed WAL record.
struct WalOp {
  uint8_t type = 0;
  std::vector<NodeId> nodes;  // kRecordAdd
  EdgeId edge = 0;            // kRecordRemove
};

/// Parses the longest valid record prefix of `buffer` into `ops`;
/// returns the byte length of that prefix (everything after it is a
/// torn or corrupt tail the caller truncates away).
size_t ParseWal(const std::string& buffer, std::vector<WalOp>* ops) {
  size_t offset = 0;
  while (true) {
    Reader header{buffer.data(), buffer.size(), offset};
    uint32_t payload_len = 0, checksum = 0;
    if (!header.ReadU32(&payload_len) || !header.ReadU32(&checksum)) break;
    if (payload_len > kMaxRecordBytes) break;
    if (header.pos + payload_len > buffer.size()) break;
    const char* payload = buffer.data() + header.pos;
    if (Checksum32(payload, payload_len) != checksum) break;

    Reader body{payload, payload_len};
    WalOp op;
    if (!body.ReadU8(&op.type)) break;
    bool valid = false;
    if (op.type == kRecordAdd) {
      uint32_t n = 0;
      if (body.ReadU32(&n) && body.pos + 4ull * n <= body.size) {
        op.nodes.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          uint32_t node = 0;
          body.ReadU32(&node);
          op.nodes[i] = node;
        }
        valid = body.pos == body.size;
      }
    } else if (op.type == kRecordRemove) {
      uint64_t edge = 0;
      if (body.ReadU64(&edge)) {
        op.edge = static_cast<EdgeId>(edge);
        valid = body.pos == body.size;
      }
    }
    if (!valid) break;
    ops->push_back(std::move(op));
    offset = header.pos + payload_len;
  }
  return offset;
}

/// Everything a checkpoint captures.
struct CheckpointData {
  uint64_t records_applied = 0;
  uint64_t arrivals = 0;
  uint64_t removals = 0;
  MotifCounts counts;
  std::vector<std::vector<NodeId>> edges;
  std::vector<uint8_t> live;
};

std::string EncodeCheckpoint(const CheckpointData& data) {
  std::string out;
  AppendU32(out, kCheckpointMagic);
  AppendU32(out, kCheckpointVersion);
  AppendU64(out, data.records_applied);
  AppendU64(out, data.arrivals);
  AppendU64(out, data.removals);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    // Raw double bits: the restored counts must be the exact values,
    // not a decimal round-trip.
    uint64_t bits = 0;
    const double value = data.counts[t];
    std::memcpy(&bits, &value, sizeof(bits));
    AppendU64(out, bits);
  }
  AppendU64(out, data.edges.size());
  for (size_t e = 0; e < data.edges.size(); ++e) {
    out.push_back(static_cast<char>(data.live[e]));
    AppendU32(out, static_cast<uint32_t>(data.edges[e].size()));
    for (const NodeId v : data.edges[e]) AppendU32(out, v);
  }
  AppendU64(out, Fnv64(out.data(), out.size()));
  return out;
}

std::optional<CheckpointData> DecodeCheckpoint(const std::string& buffer) {
  if (buffer.size() < 8 + 8) return std::nullopt;
  const size_t body = buffer.size() - 8;
  Reader tail{buffer.data(), buffer.size(), body};
  uint64_t checksum = 0;
  tail.ReadU64(&checksum);
  if (Fnv64(buffer.data(), body) != checksum) return std::nullopt;

  Reader r{buffer.data(), body};
  uint32_t magic = 0, version = 0;
  if (!r.ReadU32(&magic) || magic != kCheckpointMagic) return std::nullopt;
  if (!r.ReadU32(&version) || version != kCheckpointVersion) {
    return std::nullopt;
  }
  CheckpointData data;
  if (!r.ReadU64(&data.records_applied) || !r.ReadU64(&data.arrivals) ||
      !r.ReadU64(&data.removals)) {
    return std::nullopt;
  }
  for (int t = 1; t <= kNumHMotifs; ++t) {
    uint64_t bits = 0;
    if (!r.ReadU64(&bits)) return std::nullopt;
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    data.counts[t] = value;
  }
  uint64_t num_edges = 0;
  if (!r.ReadU64(&num_edges)) return std::nullopt;
  data.edges.reserve(num_edges);
  data.live.reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint8_t live = 0;
    uint32_t n = 0;
    if (!r.ReadU8(&live) || !r.ReadU32(&n)) return std::nullopt;
    if (r.pos + 4ull * n > r.size) return std::nullopt;
    std::vector<NodeId> nodes(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t node = 0;
      r.ReadU32(&node);
      nodes[i] = node;
    }
    data.edges.push_back(std::move(nodes));
    data.live.push_back(live);
  }
  if (r.pos != r.size) return std::nullopt;
  return data;
}

Status WriteAllAt(int fd, const char* data, size_t size, uint64_t offset) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::pwrite(fd, data + written, size - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(int fd) {
  std::string buffer;
  char chunk[1 << 16];
  uint64_t offset = 0;
  while (true) {
    const ssize_t n = ::pread(fd, chunk, sizeof(chunk),
                              static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread");
    }
    if (n == 0) return buffer;
    buffer.append(chunk, static_cast<size_t>(n));
    offset += static_cast<uint64_t>(n);
  }
}

/// fsync of the directory containing `path`, so a just-renamed
/// checkpoint survives a crash of the directory entry itself.
void SyncParentDir(const std::string& path) {
  std::string copy = path;
  const char* dir = ::dirname(copy.data());
  const int fd = ::open(dir, O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

PersistentStreamingEngine::PersistentStreamingEngine(const WalOptions& options,
                                                     int wal_fd)
    : options_(options), engine_(options.streaming), wal_fd_(wal_fd) {}

PersistentStreamingEngine::~PersistentStreamingEngine() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

Result<std::unique_ptr<PersistentStreamingEngine>>
PersistentStreamingEngine::Open(const WalOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("WAL path must not be empty");
  }
  const int fd = ::open(options.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) return Errno("open " + options.path);

  auto buffer = ReadWholeFile(fd);
  if (!buffer.ok()) {
    ::close(fd);
    return buffer.status();
  }
  std::vector<WalOp> ops;
  const size_t valid_bytes = ParseWal(buffer.value(), &ops);

  std::unique_ptr<PersistentStreamingEngine> engine(
      new PersistentStreamingEngine(options, fd));
  if (valid_bytes < buffer.value().size()) {
    // Torn or corrupt tail — a crash mid-append. Everything before it
    // is checksummed and complete; drop the rest so appends resume at
    // a clean boundary.
    engine->recovery_.truncated_bytes = buffer.value().size() - valid_bytes;
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) < 0) {
      return Errno("ftruncate " + options.path);
    }
    MOCHY_LOG(Warning) << "WAL " << options.path << ": dropped "
                       << engine->recovery_.truncated_bytes
                       << " torn tail bytes";
  }
  engine->wal_size_ = valid_bytes;

  // Restore the newest valid checkpoint, if any. An unreadable or
  // version-mismatched checkpoint is not fatal: the WAL alone rebuilds
  // the same state, just more slowly.
  size_t start = 0;
  const std::string ckpt_path = options.path + ".ckpt";
  const int ckpt_fd = ::open(ckpt_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (ckpt_fd >= 0) {
    auto ckpt_buffer = ReadWholeFile(ckpt_fd);
    ::close(ckpt_fd);
    std::optional<CheckpointData> ckpt;
    if (ckpt_buffer.ok()) ckpt = DecodeCheckpoint(ckpt_buffer.value());
    if (ckpt.has_value() && ckpt->records_applied <= ops.size()) {
      MOCHY_RETURN_IF_ERROR(engine->engine_.Restore(
          ckpt->edges, ckpt->live, ckpt->counts, ckpt->arrivals,
          ckpt->removals));
      start = static_cast<size_t>(ckpt->records_applied);
      engine->recovery_.checkpoint_records = ckpt->records_applied;
    } else {
      MOCHY_LOG(Warning) << "WAL checkpoint " << ckpt_path
                         << (ckpt.has_value()
                                 ? " covers records the log does not have"
                                 : " is unreadable")
                         << "; replaying the full log instead";
    }
  }

  // Replay the tail through the normal delta passes: the restored graph
  // and counts are exactly the state the original run had at the
  // checkpoint, so every replayed update lands bit-identically.
  for (size_t i = start; i < ops.size(); ++i) {
    const WalOp& op = ops[i];
    if (op.type == kRecordAdd) {
      auto added = engine->engine_.AddEdge(op.nodes);
      if (!added.ok()) {
        return Status::Internal("WAL replay: record " + std::to_string(i) +
                                " rejected: " + added.status().message());
      }
    } else {
      MOCHY_RETURN_IF_ERROR(engine->engine_.RemoveEdge(op.edge));
    }
  }
  engine->recovery_.replayed_records = ops.size() - start;
  engine->records_ = ops.size();
  engine->records_since_checkpoint_ = ops.size() - start;
  return engine;
}

Status PersistentStreamingEngine::AppendRecord(std::string_view payload) {
  std::string record;
  record.reserve(payload.size() + 8);
  AppendU32(record, static_cast<uint32_t>(payload.size()));
  AppendU32(record, Checksum32(payload.data(), payload.size()));
  record.append(payload);

  auto undo = [this]() {
    // The record is not acknowledged; leave no trace of it, so the
    // in-memory engine and the durable log never disagree.
    ::ftruncate(wal_fd_, static_cast<off_t>(wal_size_));
  };

  const FaultAction write_fault = MOCHY_FAULT_POINT("wal.append");
  if (write_fault.kind == FaultAction::Kind::kError) {
    return Status::IOError("wal append: injected fault: " +
                           std::string(std::strerror(write_fault.fault_errno)));
  }
  size_t write_bytes = record.size();
  if (write_fault.kind == FaultAction::Kind::kShortIo) {
    write_bytes = std::min(write_bytes, write_fault.max_bytes);
  }
  Status written = WriteAllAt(wal_fd_, record.data(), write_bytes, wal_size_);
  if (written.ok() && write_bytes < record.size()) {
    written = Status::IOError("wal append: injected torn write (" +
                              std::to_string(write_bytes) + " of " +
                              std::to_string(record.size()) + " bytes)");
  }
  if (!written.ok()) {
    undo();
    return written;
  }
  if (options_.sync_every_record) {
    const FaultAction sync_fault = MOCHY_FAULT_POINT("wal.fsync");
    if (sync_fault.kind == FaultAction::Kind::kError) {
      undo();
      return Status::IOError(
          "wal fsync: injected fault: " +
          std::string(std::strerror(sync_fault.fault_errno)));
    }
    if (::fdatasync(wal_fd_) < 0) {
      undo();
      return Errno("fdatasync " + options_.path);
    }
  }
  wal_size_ += record.size();
  ++records_;
  ++records_since_checkpoint_;
  return Status::OK();
}

Status PersistentStreamingEngine::MaybeAutoCheckpoint() {
  if (options_.checkpoint_interval == 0 ||
      records_since_checkpoint_ < options_.checkpoint_interval) {
    return Status::OK();
  }
  // A failed auto-checkpoint costs replay time, not correctness (the
  // WAL has everything); warn and retry at the next interval.
  if (Status s = Checkpoint(); !s.ok()) {
    MOCHY_LOG(Warning) << "auto-checkpoint failed: " << s.ToString();
  }
  return Status::OK();
}

Result<EdgeId> PersistentStreamingEngine::AddEdge(
    std::span<const NodeId> nodes) {
  if (nodes.empty()) {
    // Pre-validate what the engine would reject: a rejected update must
    // not reach the durable log.
    return Status::InvalidArgument("hyperedge needs at least one node");
  }
  std::string payload;
  payload.push_back(static_cast<char>(kRecordAdd));
  AppendU32(payload, static_cast<uint32_t>(nodes.size()));
  for (const NodeId v : nodes) AppendU32(payload, v);
  MOCHY_RETURN_IF_ERROR(AppendRecord(payload));
  auto added = engine_.AddEdge(nodes);
  if (!added.ok()) {
    return Status::Internal("engine rejected a logged arrival: " +
                            added.status().message());
  }
  MOCHY_RETURN_IF_ERROR(MaybeAutoCheckpoint());
  return added;
}

Result<EdgeId> PersistentStreamingEngine::AddEdge(
    std::initializer_list<NodeId> nodes) {
  return AddEdge(std::span<const NodeId>(nodes.begin(), nodes.size()));
}

Status PersistentStreamingEngine::RemoveEdge(EdgeId e) {
  if (e >= engine_.graph().num_edges() || !engine_.graph().is_live(e)) {
    return Status::InvalidArgument("edge id not live");
  }
  std::string payload;
  payload.push_back(static_cast<char>(kRecordRemove));
  AppendU64(payload, e);
  MOCHY_RETURN_IF_ERROR(AppendRecord(payload));
  Status removed = engine_.RemoveEdge(e);
  if (!removed.ok()) {
    return Status::Internal("engine rejected a logged removal: " +
                            removed.message());
  }
  MOCHY_RETURN_IF_ERROR(MaybeAutoCheckpoint());
  return Status::OK();
}

Status PersistentStreamingEngine::Checkpoint() {
  CheckpointData data;
  data.records_applied = records_;
  data.arrivals = engine_.stats().arrivals;
  data.removals = engine_.stats().removals;
  data.counts = engine_.counts();
  const DynamicHypergraph& graph = engine_.graph();
  data.edges.reserve(graph.num_edges());
  data.live.reserve(graph.num_edges());
  for (size_t e = 0; e < graph.num_edges(); ++e) {
    const auto span = graph.edge(static_cast<EdgeId>(e));
    data.edges.emplace_back(span.begin(), span.end());
    data.live.push_back(graph.is_live(static_cast<EdgeId>(e)) ? 1 : 0);
  }
  const std::string encoded = EncodeCheckpoint(data);

  const std::string ckpt_path = options_.path + ".ckpt";
  const std::string tmp_path = ckpt_path + ".tmp";
  const FaultAction write_fault = MOCHY_FAULT_POINT("wal.checkpoint.write");
  if (write_fault.kind == FaultAction::Kind::kError) {
    return Status::IOError("checkpoint write: injected fault: " +
                           std::string(std::strerror(write_fault.fault_errno)));
  }
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + tmp_path);
  Status written = WriteAllAt(fd, encoded.data(), encoded.size(), 0);
  if (written.ok() && ::fsync(fd) < 0) written = Errno("fsync " + tmp_path);
  ::close(fd);
  if (!written.ok()) {
    ::unlink(tmp_path.c_str());
    return written;
  }
  const FaultAction rename_fault = MOCHY_FAULT_POINT("wal.checkpoint.rename");
  if (rename_fault.kind == FaultAction::Kind::kError) {
    ::unlink(tmp_path.c_str());
    return Status::IOError(
        "checkpoint rename: injected fault: " +
        std::string(std::strerror(rename_fault.fault_errno)));
  }
  // rename is atomic: recovery sees either the old checkpoint or the
  // new one, never a half-written file.
  if (::rename(tmp_path.c_str(), ckpt_path.c_str()) < 0) {
    const Status status = Errno("rename " + tmp_path);
    ::unlink(tmp_path.c_str());
    return status;
  }
  SyncParentDir(ckpt_path);
  records_since_checkpoint_ = 0;
  return Status::OK();
}

}  // namespace mochy
