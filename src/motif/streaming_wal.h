/// \file
/// Crash-safe streaming: a write-ahead log + checkpoints around
/// StreamingEngine.
///
/// A StreamingEngine keeps its exact counts in memory only — kill the
/// process and every arrival since startup is gone. The
/// `PersistentStreamingEngine` wrapper makes the stream durable with
/// the classic WAL discipline:
///
///  - every accepted update is appended to a **length-prefixed,
///    checksummed log record** (add: the member list; remove: the edge
///    id) and — by default — fsync'd *before* the in-memory engine
///    applies it, so an update the caller saw succeed is on disk;
///  - every `checkpoint_interval` records (or on demand) a **checkpoint
///    file** captures the full engine state: the DynamicHypergraph edge
///    log *including tombstoned ids* (WAL-tail removals refer to
///    original ids, so the id space must survive) plus the exact count
///    vector as raw double bits. The checkpoint is written to a temp
///    file, fsync'd, and renamed into place — atomic under POSIX, so a
///    crash mid-checkpoint leaves the previous one intact.
///
/// `Open()` is the `Recover()` path: restore the newest valid
/// checkpoint via StreamingEngine::Restore (structural rebuild, no
/// recount), replay the WAL tail through the normal O(Δ) delta passes,
/// and truncate any torn final record (a crash mid-append). Because the
/// restored graph and counts are bit-identical to the moment the
/// checkpoint was taken, and tail replay runs the same arithmetic as
/// the original run, **recovered counts are bit-identical to an
/// uninterrupted run over the durable prefix** — verified by a test
/// that SIGKILLs a child mid-stream (tests/streaming_wal_test.cc) and
/// by reference::CountMotifsExact on the recovered snapshot. Format
/// details and the recovery contract are documented in
/// docs/OPERATIONS.md.
///
/// Single-writer, like the engine it wraps.
#ifndef MOCHY_MOTIF_STREAMING_WAL_H_
#define MOCHY_MOTIF_STREAMING_WAL_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "motif/streaming.h"

namespace mochy {

/// Durability knobs; the CLI's `--wal` flag maps onto `path`.
struct WalOptions {
  /// WAL file path; the checkpoint lives beside it at `path + ".ckpt"`.
  std::string path;
  /// Auto-checkpoint after this many records since the last checkpoint
  /// (bounds replay work after a crash). 0 = only explicit Checkpoint().
  uint64_t checkpoint_interval = 4096;
  /// fsync the log before an update is applied (the durability
  /// guarantee). Off trades the tail of the stream for syscall cost —
  /// a crash may lose records the OS had not flushed.
  bool sync_every_record = true;
  /// Engine knobs for the wrapped StreamingEngine.
  StreamingOptions streaming;
};

/// What Open() found and did; exposed for operators and tests.
struct WalRecoveryInfo {
  uint64_t checkpoint_records = 0;  ///< records covered by the checkpoint
  uint64_t replayed_records = 0;    ///< WAL-tail records replayed
  uint64_t truncated_bytes = 0;     ///< torn/corrupt tail bytes dropped
};

/// StreamingEngine with WAL + checkpoint durability; see file comment.
class PersistentStreamingEngine {
 public:
  /// Opens (creating if absent) the WAL at `options.path`, recovers any
  /// existing state, and returns the ready engine. kIOError when the
  /// file cannot be opened or the log is unreadable.
  static Result<std::unique_ptr<PersistentStreamingEngine>> Open(
      const WalOptions& options);

  ~PersistentStreamingEngine();

  PersistentStreamingEngine(const PersistentStreamingEngine&) = delete;
  PersistentStreamingEngine& operator=(const PersistentStreamingEngine&) =
      delete;

  /// Logs then applies one arrival (StreamingEngine::AddEdge rules).
  /// The record is durable before the engine state changes; on a log
  /// failure the update is NOT applied and the error is returned.
  Result<EdgeId> AddEdge(std::span<const NodeId> nodes);
  /// Convenience overload of AddEdge for brace-list members.
  Result<EdgeId> AddEdge(std::initializer_list<NodeId> nodes);

  /// Logs then applies one removal (StreamingEngine::RemoveEdge rules).
  Status RemoveEdge(EdgeId e);

  /// Writes a checkpoint of the current state (temp + fsync + atomic
  /// rename). After it lands, recovery replays only records appended
  /// after this call.
  Status Checkpoint();

  /// Exact counts of the current graph (bit-identical to an
  /// uninterrupted StreamingEngine fed the same updates).
  const MotifCounts& counts() const { return engine_.counts(); }

  /// The wrapped engine (graph, stats; read-only).
  const StreamingEngine& engine() const { return engine_; }

  /// Total records represented by the durable state (checkpointed +
  /// replayed + appended since).
  uint64_t records() const { return records_; }

  /// What recovery found when this engine was opened.
  const WalRecoveryInfo& recovery() const { return recovery_; }

 private:
  PersistentStreamingEngine(const WalOptions& options, int wal_fd);

  Status AppendRecord(std::string_view payload);
  Status MaybeAutoCheckpoint();

  WalOptions options_;
  StreamingEngine engine_;
  int wal_fd_ = -1;
  uint64_t wal_size_ = 0;  ///< durable byte length of the log file
  uint64_t records_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  WalRecoveryInfo recovery_;
};

}  // namespace mochy

#endif  // MOCHY_MOTIF_STREAMING_WAL_H_
