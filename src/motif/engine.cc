#include "motif/engine.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "motif/variance.h"

namespace mochy {

namespace {

// kAuto switches from MoCHy-E to MoCHy-A+ once the exact work estimate
// Σ_e |N_e|² (Theorem 1, dominating term) exceeds this many region
// evaluations — roughly a second of single-threaded counting.
constexpr uint64_t kAutoExactCostLimit = 50'000'000;

uint64_t ResolveSamples(const EngineOptions& options, uint64_t population) {
  if (options.num_samples > 0) return options.num_samples;
  const double derived =
      options.sampling_ratio * static_cast<double>(population);
  return derived < 1.0 ? 1 : static_cast<uint64_t>(derived);
}

/// Mean over motifs with a non-zero exact count of Var[est] / count².
double MeanRelativeVariance(const VarianceTerms& terms, Algorithm algorithm,
                            uint64_t samples, uint64_t num_edges,
                            uint64_t num_wedges) {
  double sum = 0.0;
  int nonzero = 0;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double count = terms.counts[t];
    if (count <= 0.0) continue;
    const double var =
        algorithm == Algorithm::kEdgeSample
            ? MochyAVariance(terms, t, samples, num_edges)
            : MochyAPlusVariance(terms, t, samples, num_wedges);
    sum += var / (count * count);
    ++nonzero;
  }
  return nonzero == 0 ? 0.0 : sum / nonzero;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kExact:
      return "exact";
    case Algorithm::kEdgeSample:
      return "edge-sample";
    case Algorithm::kLinkSample:
      return "link-sample";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(std::string_view name) {
  if (name == "exact" || name == "mochy-e") return Algorithm::kExact;
  if (name == "edge-sample" || name == "mochy-a") return Algorithm::kEdgeSample;
  if (name == "link-sample" || name == "mochy-a+") {
    return Algorithm::kLinkSample;
  }
  if (name == "auto") return Algorithm::kAuto;
  return Status::InvalidArgument("unknown algorithm '" + std::string(name) +
                                 "' (want exact|edge-sample|link-sample|auto)");
}

std::string EngineStats::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "algorithm=%s threads=%zu samples=%llu wedges=%llu "
                "elapsed=%.3fs",
                AlgorithmName(algorithm), num_threads,
                static_cast<unsigned long long>(samples_used),
                static_cast<unsigned long long>(num_wedges), elapsed_seconds);
  return buffer;
}

Result<MotifEngine> MotifEngine::Create(const Hypergraph& graph,
                                        size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  auto projection = ProjectedGraph::Build(graph, num_threads);
  if (!projection.ok()) return projection.status();
  return MotifEngine(graph, std::move(projection).value());
}

MotifEngine::MotifEngine(const Hypergraph& graph, ProjectedGraph projection)
    : graph_(&graph), projection_(std::move(projection)) {
  MOCHY_CHECK(projection_.num_edges() == graph.num_edges())
      << "projection does not match hypergraph";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const uint64_t degree = projection_.degree(e);
    exact_cost_ += degree * degree;
  }
}

Algorithm MotifEngine::ResolveAuto(const EngineOptions& options) const {
  if (options.algorithm != Algorithm::kAuto) return options.algorithm;
  if (projection_.num_wedges() == 0) return Algorithm::kExact;
  return exact_cost_ <= kAutoExactCostLimit ? Algorithm::kExact
                                            : Algorithm::kLinkSample;
}

Result<EngineResult> MotifEngine::Count(const EngineOptions& options) const {
  const Algorithm algorithm = ResolveAuto(options);
  // The ratio only matters when a sampling strategy actually derives its
  // sample count from it; exact counting ignores both knobs.
  if (algorithm != Algorithm::kExact && options.num_samples == 0 &&
      (!(options.sampling_ratio > 0.0) ||
       !std::isfinite(options.sampling_ratio))) {
    return Status::InvalidArgument(
        "sampling_ratio must be positive and finite when num_samples is 0");
  }
  const size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;

  EngineResult result;
  result.stats.algorithm = algorithm;
  result.stats.num_threads = num_threads;
  result.stats.num_wedges = projection_.num_wedges();
  result.stats.relative_variance = std::numeric_limits<double>::quiet_NaN();

  Timer timer;
  switch (algorithm) {
    case Algorithm::kExact: {
      result.counts = CountMotifsExact(*graph_, projection_, num_threads);
      result.stats.relative_variance = 0.0;
      break;
    }
    case Algorithm::kEdgeSample: {
      MochyAOptions sampler;
      sampler.num_samples = ResolveSamples(options, graph_->num_edges());
      sampler.seed = options.seed;
      sampler.num_threads = num_threads;
      result.counts = CountMotifsEdgeSample(*graph_, projection_, sampler);
      result.stats.samples_used = sampler.num_samples;
      break;
    }
    case Algorithm::kLinkSample: {
      MochyAPlusOptions sampler;
      sampler.num_samples = ResolveSamples(options, projection_.num_wedges());
      sampler.seed = options.seed;
      sampler.num_threads = num_threads;
      result.counts = CountMotifsWedgeSample(*graph_, projection_, sampler);
      result.stats.samples_used = sampler.num_samples;
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("kAuto survived ResolveAuto");
  }
  result.stats.elapsed_seconds = timer.Seconds();

  if (options.estimate_variance && algorithm != Algorithm::kExact &&
      result.stats.samples_used > 0) {
    const VarianceTerms terms = ComputeVarianceTerms(*graph_, projection_);
    result.stats.relative_variance = MeanRelativeVariance(
        terms, algorithm, result.stats.samples_used, graph_->num_edges(),
        projection_.num_wedges());
  }
  return result;
}

}  // namespace mochy
