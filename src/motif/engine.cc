#include "motif/engine.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "motif/enumerate.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "motif/mochy_weighted.h"
#include "motif/variance.h"

namespace mochy {

namespace {

// kAuto switches from MoCHy-E to MoCHy-A+ once the exact work estimate
// Σ_e |N_e|² (Theorem 1, dominating term) exceeds this many region
// evaluations — roughly a second of single-threaded counting.
constexpr uint64_t kAutoExactCostLimit = 50'000'000;

uint64_t ResolveSamples(const EngineOptions& options, uint64_t population) {
  if (options.num_samples > 0) return options.num_samples;
  const double derived =
      options.sampling_ratio * static_cast<double>(population);
  return derived < 1.0 ? 1 : static_cast<uint64_t>(derived);
}

/// Mean over motifs with a non-zero exact count of Var[est] / count².
double MeanRelativeVariance(const VarianceTerms& terms, Algorithm algorithm,
                            uint64_t samples, uint64_t num_edges,
                            uint64_t num_wedges) {
  double sum = 0.0;
  int nonzero = 0;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double count = terms.counts[t];
    if (count <= 0.0) continue;
    const double var =
        algorithm == Algorithm::kEdgeSample
            ? MochyAVariance(terms, t, samples, num_edges)
            : MochyAPlusVariance(terms, t, samples, num_wedges);
    sum += var / (count * count);
    ++nonzero;
  }
  return nonzero == 0 ? 0.0 : sum / nonzero;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kExact:
      return "exact";
    case Algorithm::kEdgeSample:
      return "edge-sample";
    case Algorithm::kLinkSample:
      return "link-sample";
    case Algorithm::kWeighted:
      return "weighted";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(std::string_view name) {
  if (name == "exact" || name == "mochy-e") return Algorithm::kExact;
  if (name == "edge-sample" || name == "mochy-a") return Algorithm::kEdgeSample;
  if (name == "link-sample" || name == "mochy-a+") {
    return Algorithm::kLinkSample;
  }
  if (name == "weighted" || name == "mochy-a+w") return Algorithm::kWeighted;
  if (name == "auto") return Algorithm::kAuto;
  return Status::InvalidArgument(
      "unknown algorithm '" + std::string(name) +
      "' (want exact|edge-sample|link-sample|weighted|auto)");
}

const char* ProjectionPolicyName(ProjectionPolicy policy) {
  switch (policy) {
    case ProjectionPolicy::kMaterialized:
      return "materialized";
    case ProjectionPolicy::kLazy:
      return "lazy";
    case ProjectionPolicy::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<ProjectionPolicy> ParseProjectionPolicy(std::string_view name) {
  if (name == "materialized" || name == "eager") {
    return ProjectionPolicy::kMaterialized;
  }
  if (name == "lazy") return ProjectionPolicy::kLazy;
  if (name == "auto") return ProjectionPolicy::kAuto;
  return Status::InvalidArgument("unknown projection policy '" +
                                 std::string(name) +
                                 "' (want materialized|lazy|auto)");
}

Result<uint64_t> ParseMemoryBudget(std::string_view text) {
  const auto fail = [&] {
    return Status::InvalidArgument(
        "cannot parse memory budget '" + std::string(text) +
        "' (want bytes with an optional K/M/G suffix, e.g. 256M)");
  };
  if (text.empty()) return fail();
  uint64_t value = 0;
  size_t i = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') break;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return fail();  // overflow
    value = value * 10 + digit;
  }
  if (i == 0) return fail();  // no digits
  uint64_t shift = 0;
  if (i < text.size()) {
    switch (text[i]) {
      case 'k':
      case 'K':
        shift = 10;
        break;
      case 'm':
      case 'M':
        shift = 20;
        break;
      case 'g':
      case 'G':
        shift = 30;
        break;
      default:
        return fail();
    }
    ++i;
    if (i < text.size() && (text[i] == 'b' || text[i] == 'B')) ++i;
  }
  if (i != text.size()) return fail();  // trailing junk
  if (shift > 0 && value > (UINT64_MAX >> shift)) return fail();
  return value << shift;
}

std::string EngineStats::ToString() const {
  char buffer[256];
  int written = std::snprintf(
      buffer, sizeof(buffer),
      "algorithm=%s threads=%zu samples=%llu wedges=%llu elapsed=%.3fs",
      AlgorithmName(algorithm), num_threads,
      static_cast<unsigned long long>(samples_used),
      static_cast<unsigned long long>(num_wedges), elapsed_seconds);
  std::string text = buffer;
  if (projection_policy == ProjectionPolicy::kLazy) {
    std::snprintf(buffer, sizeof(buffer),
                  " projection=lazy hit-rate=%.2f recomputes=%llu "
                  "resident=%.1fMB",
                  lazy_hit_rate,
                  static_cast<unsigned long long>(lazy_recomputes),
                  static_cast<double>(projection_bytes) / 1048576.0);
    text += buffer;
    if (lazy_spills > 0 || lazy_spill_readmits > 0 ||
        lazy_spill_fallbacks > 0) {
      std::snprintf(buffer, sizeof(buffer),
                    " spills=%llu readmits=%llu spill-fallbacks=%llu",
                    static_cast<unsigned long long>(lazy_spills),
                    static_cast<unsigned long long>(lazy_spill_readmits),
                    static_cast<unsigned long long>(lazy_spill_fallbacks));
      text += buffer;
    }
  }
  return text;
}

Result<MotifEngine> MotifEngine::Create(const Hypergraph& graph,
                                        size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  auto projection = ProjectedGraph::Build(graph, num_threads);
  if (!projection.ok()) return projection.status();
  return MotifEngine(graph, std::move(projection).value());
}

Result<MotifEngine> MotifEngine::Create(const Hypergraph& graph,
                                        const EngineOptions& options) {
  const size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  // kAuto with no budget always materializes, so only the remaining
  // cases pay for the wedge-index pass below.
  if (options.projection == ProjectionPolicy::kMaterialized ||
      (options.projection == ProjectionPolicy::kAuto &&
       options.memory_budget == 0)) {
    return Create(graph, num_threads);
  }

  // The lazy-vs-materialized decision needs only the wedge index — an
  // O(|E|)-memory pass that also yields the Theorem-1 exact-cost
  // estimate for kAuto algorithm resolution.
  ProjectedDegrees degrees = ComputeProjectedDegrees(graph, num_threads);
  uint64_t exact_cost = 0;
  for (uint32_t d : degrees.degree) {
    exact_cost += static_cast<uint64_t>(d) * d;
  }
  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    algorithm = (degrees.num_wedges == 0 || exact_cost <= kAutoExactCostLimit)
                    ? Algorithm::kExact
                    : Algorithm::kLinkSample;
  }

  // Exact counting (MoCHy-E) runs on the materialized structure only.
  // kAuto falls back to it (the documented resolution, docs/MEMORY.md);
  // an *explicit* kLazy request must not silently materialize behind the
  // caller's memory budget, so it errors instead — consistently with
  // Count()'s rejection of kExact on a lazy engine.
  if (algorithm == Algorithm::kExact) {
    if (options.projection == ProjectionPolicy::kLazy) {
      return Status::InvalidArgument(
          "ProjectionPolicy::kLazy cannot serve exact counting (MoCHy-E "
          "needs the materialized projection, which would ignore the "
          "memory budget); pick a sampling algorithm, or use kAuto / "
          "kMaterialized");
    }
    return Create(graph, num_threads);
  }

  const uint64_t estimate = EstimateProjectionBytes(degrees);
  const bool lazy =
      options.projection == ProjectionPolicy::kLazy ||
      (options.memory_budget > 0 && estimate > options.memory_budget);
  if (!lazy) return Create(graph, num_threads);

  MotifEngine engine(graph);
  engine.materialized_ = false;
  engine.exact_cost_ = exact_cost;
  engine.materialized_bytes_ = estimate;
  engine.degrees_ = std::make_unique<ProjectedDegrees>(std::move(degrees));
  LazyProjectionOptions lazy_options;
  lazy_options.memory_budget_bytes =
      options.memory_budget == 0 ? UINT64_MAX : options.memory_budget;
  lazy_options.spill_dir = options.spill_dir;
  auto memo = ConcurrentLazyProjection::Create(graph, *engine.degrees_,
                                               lazy_options);
  if (!memo.ok()) return memo.status();
  engine.lazy_ = std::move(memo).value();
  return engine;
}

MotifEngine::MotifEngine(const Hypergraph& graph) : graph_(&graph) {}

MotifEngine::MotifEngine(const Hypergraph& graph, ProjectedGraph projection)
    : graph_(&graph), projection_(std::move(projection)) {
  MOCHY_CHECK(projection_.num_edges() == graph.num_edges())
      << "projection does not match hypergraph";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const uint64_t degree = projection_.degree(e);
    exact_cost_ += degree * degree;
  }
  materialized_bytes_ = projection_.MemoryBytes();
}

const ProjectedGraph& MotifEngine::projection() const {
  MOCHY_CHECK(materialized_)
      << "projection() called on a lazy engine (no materialized projection)";
  return projection_;
}

uint64_t MotifEngine::num_wedges() const {
  return materialized_ ? projection_.num_wedges() : degrees_->num_wedges;
}

Algorithm MotifEngine::ResolveAuto(const EngineOptions& options) const {
  if (options.algorithm != Algorithm::kAuto) return options.algorithm;
  if (num_wedges() == 0) return Algorithm::kExact;
  return exact_cost_ <= kAutoExactCostLimit ? Algorithm::kExact
                                            : Algorithm::kLinkSample;
}

EngineOptions MotifEngine::Canonicalize(const EngineOptions& options) const {
  EngineOptions canonical;
  canonical.algorithm = ResolveAuto(options);
  canonical.num_threads = 0;
  canonical.projection = ProjectionPolicy::kAuto;
  canonical.memory_budget = 0;
  canonical.spill_dir.clear();  // disk tier never affects counts
  canonical.sampling_ratio = 0.0;
  if (canonical.algorithm == Algorithm::kExact) {
    // Exact counting ignores the sampling knobs, and its closed-form
    // relative variance is identically 0 — none of these can change what
    // Count() returns.
    canonical.num_samples = 0;
    canonical.seed = 0;
    canonical.estimate_variance = false;
  } else {
    const uint64_t population = canonical.algorithm == Algorithm::kEdgeSample
                                    ? graph_->num_edges()
                                    : num_wedges();
    canonical.num_samples = ResolveSamples(options, population);
    canonical.seed = options.seed;
    // kWeighted has no closed-form variance (Count() rejects the flag),
    // so the canonical form pins it to the only value Count() accepts.
    canonical.estimate_variance = canonical.algorithm == Algorithm::kWeighted
                                      ? false
                                      : options.estimate_variance;
  }
  return canonical;
}

std::string EngineOptionsCacheKey(const EngineOptions& options) {
  char buffer[128];
  if (options.algorithm == Algorithm::kExact) {
    std::snprintf(buffer, sizeof(buffer), "alg=exact");
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "alg=%s samples=%llu seed=%llu variance=%d",
                  AlgorithmName(options.algorithm),
                  static_cast<unsigned long long>(options.num_samples),
                  static_cast<unsigned long long>(options.seed),
                  options.estimate_variance ? 1 : 0);
  }
  return buffer;
}

Result<EngineResult> MotifEngine::Count(const EngineOptions& options) const {
  const Algorithm algorithm = ResolveAuto(options);
  // The ratio only matters when a sampling strategy actually derives its
  // sample count from it; exact counting ignores both knobs.
  if (algorithm != Algorithm::kExact && options.num_samples == 0 &&
      (!(options.sampling_ratio > 0.0) ||
       !std::isfinite(options.sampling_ratio))) {
    return Status::InvalidArgument(
        "sampling_ratio must be positive and finite when num_samples is 0");
  }
  if (!materialized_ && algorithm == Algorithm::kExact) {
    return Status::InvalidArgument(
        "exact counting (MoCHy-E) needs a materialized projection, but this "
        "engine was created with ProjectionPolicy::kLazy; recreate it with "
        "kMaterialized (or kAuto, which falls back for exact counting)");
  }
  if (!materialized_ && options.estimate_variance) {
    return Status::InvalidArgument(
        "estimate_variance enumerates all instances over the materialized "
        "projection; not available on a lazy engine");
  }
  if (algorithm == Algorithm::kWeighted && options.estimate_variance) {
    return Status::InvalidArgument(
        "estimate_variance covers the MoCHy-A/A+ closed forms (Theorems 2 "
        "and 4); the weighted estimator has none — drop the flag");
  }
  const size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;

  EngineResult result;
  result.stats.algorithm = algorithm;
  result.stats.num_threads = num_threads;
  result.stats.num_wedges = num_wedges();
  result.stats.relative_variance = std::numeric_limits<double>::quiet_NaN();
  result.stats.projection_policy = projection_policy();

  LazyProjection::Stats lazy_stats;
  Timer timer;
  switch (algorithm) {
    case Algorithm::kExact: {
      result.counts = CountMotifsExact(*graph_, projection_, num_threads);
      result.stats.relative_variance = 0.0;
      break;
    }
    case Algorithm::kEdgeSample: {
      MochyAOptions sampler;
      sampler.num_samples = ResolveSamples(options, graph_->num_edges());
      sampler.seed = options.seed;
      sampler.num_threads = num_threads;
      if (materialized_) {
        result.counts = CountMotifsEdgeSample(*graph_, projection_, sampler);
      } else {
        auto counts =
            CountMotifsEdgeSampleLazy(*graph_, *lazy_, sampler, &lazy_stats);
        if (!counts.ok()) return counts.status();
        result.counts = std::move(counts).value();
      }
      result.stats.samples_used = sampler.num_samples;
      break;
    }
    case Algorithm::kLinkSample: {
      MochyAPlusOptions sampler;
      sampler.num_samples = ResolveSamples(options, num_wedges());
      sampler.seed = options.seed;
      sampler.num_threads = num_threads;
      if (materialized_) {
        result.counts = CountMotifsWedgeSample(*graph_, projection_, sampler);
      } else {
        auto counts = CountMotifsWedgeSampleLazy(*graph_, *degrees_, *lazy_,
                                                 sampler, &lazy_stats);
        if (!counts.ok()) return counts.status();
        result.counts = std::move(counts).value();
      }
      result.stats.samples_used = sampler.num_samples;
      break;
    }
    case Algorithm::kWeighted: {
      // Projection-free (runs on lazy engines too) and single-threaded
      // by design; thread-count invariance is trivial, so stats report
      // the one worker that actually ran.
      MochyWeightedOptions sampler;
      sampler.num_samples = ResolveSamples(options, num_wedges());
      sampler.seed = options.seed;
      result.stats.num_threads = 1;
      result.stats.samples_used = sampler.num_samples;
      if (num_wedges() > 0) {
        auto weighted = CountMotifsWeightedWedge(*graph_, sampler);
        if (!weighted.ok()) return weighted.status();
        result.counts = weighted.value().counts;
      }
      // No hyperwedges means no instances: the zero vector is exact, the
      // same answer every other strategy returns on such inputs.
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("kAuto survived ResolveAuto");
  }
  result.stats.elapsed_seconds = timer.Seconds();

  if (materialized_) {
    result.stats.projection_bytes = materialized_bytes_;
    result.stats.projection_peak_bytes = materialized_bytes_;
  } else {
    const uint64_t index_bytes = degrees_->MemoryBytes();
    result.stats.projection_bytes = lazy_stats.bytes_used + index_bytes;
    result.stats.projection_peak_bytes = lazy_stats.peak_bytes + index_bytes;
    result.stats.lazy_memo_hits = lazy_stats.memo_hits;
    result.stats.lazy_recomputes = lazy_stats.computations;
    result.stats.lazy_evictions = lazy_stats.evictions;
    result.stats.lazy_hit_rate = lazy_stats.HitRate();
    result.stats.lazy_spills = lazy_stats.spills;
    result.stats.lazy_spill_readmits = lazy_stats.spill_readmits;
    result.stats.lazy_spill_fallbacks = lazy_stats.spill_fallbacks;
  }

  if (options.estimate_variance && algorithm != Algorithm::kExact &&
      result.stats.samples_used > 0) {
    const VarianceTerms terms = ComputeVarianceTerms(*graph_, projection_);
    result.stats.relative_variance = MeanRelativeVariance(
        terms, algorithm, result.stats.samples_used, graph_->num_edges(),
        projection_.num_wedges());
  }
  return result;
}

Result<PerEdgeResult> MotifEngine::CountPerEdge(
    const EngineOptions& options) const {
  if (!materialized_) {
    return Status::InvalidArgument(
        "per-edge counts enumerate all instances over the materialized "
        "projection, but this engine was created with "
        "ProjectionPolicy::kLazy; recreate it with kMaterialized (or kAuto)");
  }
  const size_t num_threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;

  PerEdgeResult result;
  result.stats.algorithm = Algorithm::kExact;
  result.stats.num_threads = num_threads;
  result.stats.num_wedges = num_wedges();
  result.stats.relative_variance = 0.0;
  result.stats.projection_policy = ProjectionPolicy::kMaterialized;

  Timer timer;
  const size_t num_edges = graph_->num_edges();
  // One row block per enumeration thread; each instance credits its
  // three member edges. The increments are integers (exactly
  // representable in doubles), so the merge below is bit-identical in
  // any order and at any thread count.
  std::vector<PerEdgeCounts> partial(
      num_threads, PerEdgeCounts(num_edges, std::array<double, kNumHMotifs>{}));
  EnumerateInstancesParallel(
      *graph_, projection_, num_threads,
      [&partial](size_t thread, const MotifInstance& instance) {
        PerEdgeCounts& rows = partial[thread];
        rows[instance.i][instance.motif - 1] += 1.0;
        rows[instance.j][instance.motif - 1] += 1.0;
        rows[instance.k][instance.motif - 1] += 1.0;
      });
  result.rows = std::move(partial[0]);
  for (size_t t = 1; t < num_threads; ++t) {
    for (size_t e = 0; e < num_edges; ++e) {
      for (int m = 0; m < kNumHMotifs; ++m) {
        result.rows[e][m] += partial[t][e][m];
      }
    }
  }
  result.stats.elapsed_seconds = timer.Seconds();
  result.stats.projection_bytes = materialized_bytes_;
  result.stats.projection_peak_bytes = materialized_bytes_;
  return result;
}

}  // namespace mochy
