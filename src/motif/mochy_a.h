// MoCHy-A: approximate h-motif counting via hyperedge sampling
// (paper Algorithm 4).
//
// Samples s hyperedges uniformly with replacement; for each sample e_i it
// visits every instance containing e_i (via 1-hop and 2-hop projected
// neighbors) and finally rescales by |E| / (3s), which makes every
// per-motif estimate unbiased (Theorem 2).
#ifndef MOCHY_MOTIF_MOCHY_A_H_
#define MOCHY_MOTIF_MOCHY_A_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

struct MochyAOptions {
  uint64_t num_samples = 1000;  ///< s — hyperedge samples (with replacement)
  uint64_t seed = 1;            ///< RNG seed; same seed => same estimate
  /// Samples are processed in parallel; 0 means DefaultThreadCount(). The
  /// estimate is bit-identical for any thread count.
  size_t num_threads = 1;
};

/// Unbiased estimates of all 26 motif counts via hyperedge sampling.
MotifCounts CountMotifsEdgeSample(const Hypergraph& graph,
                                  const ProjectedGraph& projection,
                                  const MochyAOptions& options);

}  // namespace mochy

#endif  // MOCHY_MOTIF_MOCHY_A_H_
