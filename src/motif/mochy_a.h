// MoCHy-A: approximate h-motif counting via hyperedge sampling
// (paper Algorithm 4).
//
// Samples s hyperedges uniformly with replacement; for each sample e_i it
// visits every instance containing e_i (via 1-hop and 2-hop projected
// neighbors) and finally rescales by |E| / (3s), which makes every
// per-motif estimate unbiased (Theorem 2).
#ifndef MOCHY_MOTIF_MOCHY_A_H_
#define MOCHY_MOTIF_MOCHY_A_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "hypergraph/lazy_projection.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

struct MochyAOptions {
  uint64_t num_samples = 1000;  ///< s — hyperedge samples (with replacement)
  uint64_t seed = 1;            ///< RNG seed; same seed => same estimate
  /// Samples are processed in parallel; 0 means DefaultThreadCount(). The
  /// estimate is bit-identical for any thread count.
  size_t num_threads = 1;
};

/// Unbiased estimates of all 26 motif counts via hyperedge sampling over
/// a materialized projection.
MotifCounts CountMotifsEdgeSample(const Hypergraph& graph,
                                  const ProjectedGraph& projection,
                                  const MochyAOptions& options);

/// Memory-bounded MoCHy-A — the engine's ProjectionPolicy::kLazy path.
/// No materialized projection: the sampled hyperedge's neighborhood and
/// every 2-hop neighborhood are fetched through the sharded `lazy` memo,
/// in parallel. Estimates are bit-identical to CountMotifsEdgeSample over
/// the materialized projection of the same graph, for the same seed,
/// sample count, and any thread count. `stats_out`, when set, receives
/// the per-worker hit/recompute counters merged with the memo-side
/// byte/eviction counters.
Result<MotifCounts> CountMotifsEdgeSampleLazy(
    const Hypergraph& graph, ConcurrentLazyProjection& lazy,
    const MochyAOptions& options,
    LazyProjection::Stats* stats_out = nullptr);

}  // namespace mochy

#endif  // MOCHY_MOTIF_MOCHY_A_H_
