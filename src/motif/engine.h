/// \file
/// MotifEngine: the single entry point for h-motif counting.
///
/// The paper ships three counting algorithms — MoCHy-E (exact,
/// Algorithm 2), MoCHy-A (hyperedge sampling, Algorithm 4) and MoCHy-A+
/// (hyperwedge sampling, Algorithm 5) — and this repo adds MoCHy-A+W
/// (projection-free weighted hyperwedge sampling, motif/mochy_weighted.h).
/// The engine wraps all of them behind one strategy selector so callers
/// (CLI, examples, experiment drivers, services) choose an algorithm with
/// an option instead of a code path, and get uniform run statistics back.
/// Besides the 26 global counts, the engine exposes a second result mode:
/// CountPerEdge() returns the exact per-hyperedge participation rows
/// (Table 4's HM26 features) from the same enumeration kernels.
///
/// \par Engine lifecycle
/// For a single graph, the projection structure is set up once — at
/// engine construction — and reused across any number of Count() calls.
/// What that structure is depends on the ProjectionPolicy: a fully
/// materialized ProjectedGraph (the default), or, for memory-bounded
/// sampling on huge graphs, just the O(|E|) wedge index plus a budgeted
/// lazy-neighborhood memo (see docs/MEMORY.md). When
/// many graphs are counted in one go (batch mode, motif/batch.h), a
/// BatchRunner instead constructs one short-lived engine per item on a
/// worker of the shared pool, so each item's projection lives only while
/// that item is being counted and builds overlap with other items'
/// counting. For a graph that *grows* — a stream of hyperedge
/// arrivals — the sibling StreamingEngine (motif/streaming.h) maintains
/// the same MotifCounts incrementally, O(Δ) per arrival, instead of
/// rebuilding the projection and recounting.
///
/// \par Thread safety
/// A fully constructed MotifEngine is immutable: Count() never mutates
/// engine state, so concurrent Count() calls on one engine are safe. All
/// parallel execution is routed through the shared thread pool
/// (common/parallel); no call here spawns raw threads. The counting
/// kernels draw their scratch (epoch-stamped weight arrays and node sets,
/// common/scratch_arena.h) from each worker's persistent thread-local
/// arena, so repeated Count() calls and batch items reuse grown-to-fit
/// allocations instead of reallocating per run.
///
/// \par Determinism
/// For a fixed (algorithm, seed, sample count), results are bit-identical
/// regardless of num_threads and of whether the run happened alone or
/// inside a batch: exact counting accumulates integers (exactly
/// representable in doubles, so merge order cannot change the sum), and
/// the samplers derive sample n's RNG stream from the seed and n alone,
/// never from the executing worker.
#ifndef MOCHY_MOTIF_ENGINE_H_
#define MOCHY_MOTIF_ENGINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/lazy_projection.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

/// Counting strategy.
enum class Algorithm {
  kExact,       ///< MoCHy-E: exact counts
  kEdgeSample,  ///< MoCHy-A: hyperedge sampling (unbiased estimates)
  kLinkSample,  ///< MoCHy-A+: hyperwedge sampling (lower variance than A)
  kWeighted,    ///< MoCHy-A+W: projection-free weighted hyperwedge sampling
  kAuto,        ///< exact on small inputs, MoCHy-A+ beyond a cost budget
};

/// Short stable name used in flags and reports: "exact", "edge-sample",
/// "link-sample", "weighted", "auto".
const char* AlgorithmName(Algorithm algorithm);

/// Inverse of AlgorithmName; also accepts the paper aliases "mochy-e",
/// "mochy-a", "mochy-a+", "mochy-a+w". Errors on anything else.
Result<Algorithm> ParseAlgorithm(std::string_view name);

/// How the engine provides hyperedge neighborhoods to the counting
/// kernels — the memory/speed trade-off of paper Section 3.4. The full
/// memory contract is docs/MEMORY.md.
enum class ProjectionPolicy {
  /// Build the full ProjectedGraph at Create() time: O(|E| + Σ|N_e|)
  /// memory, fastest counting, required by kExact (MoCHy-E).
  kMaterialized,
  /// Never materialize: only the O(|E|) wedge index is precomputed, and
  /// the sampling kernels fetch neighborhoods on demand through a
  /// budgeted, sharded memo (ConcurrentLazyProjection). Estimates are
  /// bit-identical to kMaterialized for the same seed; only statistics
  /// differ. Exact counting is rejected — at Create() when the requested
  /// algorithm resolves to kExact, and at Count() on a lazy engine —
  /// never silently materialized behind the budget.
  kLazy,
  /// Materialize unless the estimated materialized footprint
  /// (EstimateProjectionBytes) exceeds EngineOptions::memory_budget (and
  /// the resolved algorithm is a sampler) — then go lazy. With no budget
  /// (0 = unbounded), always materializes.
  kAuto,
};

/// Short stable name used in flags and reports: "materialized", "lazy",
/// "auto".
const char* ProjectionPolicyName(ProjectionPolicy policy);

/// Inverse of ProjectionPolicyName; also accepts the alias "eager" for
/// kMaterialized. Errors on anything else.
Result<ProjectionPolicy> ParseProjectionPolicy(std::string_view name);

/// Parses a byte count with an optional K/M/G (binary, case-insensitive,
/// optional trailing B) suffix: "268435456", "256M", "1g", "64KB".
/// Errors on anything else; plain "0" is legal (= unbounded budget).
Result<uint64_t> ParseMemoryBudget(std::string_view text);

/// Per-run knobs for MotifEngine::Count.
struct EngineOptions {
  /// Counting strategy; kAuto resolves per input (see ResolveAuto()).
  Algorithm algorithm = Algorithm::kAuto;

  /// Logical workers for counting (and projection building in Create()).
  /// 0 means DefaultThreadCount().
  size_t num_threads = 1;

  /// Sample count for the sampling algorithms (s for MoCHy-A, r for
  /// MoCHy-A+). 0 derives it as sampling_ratio * population, where the
  /// population is |E| (edge sampling) or |∧| (link sampling). Ignored by
  /// kExact.
  uint64_t num_samples = 0;

  /// Used only when num_samples == 0; must then be positive and finite.
  /// Values above 1 oversample the population, which is legal — both
  /// samplers draw with replacement — and lowers estimator variance.
  double sampling_ratio = 0.1;

  /// RNG seed for the sampling algorithms; same seed, sample count and
  /// algorithm => bit-identical estimates, regardless of num_threads
  /// (sample n forks its RNG stream from (seed, n), never from the worker
  /// that happens to process it).
  uint64_t seed = 1;

  /// When true, also evaluates the closed-form estimator variance
  /// (motif/variance, Theorems 2 and 4) and reports the mean relative
  /// variance in EngineStats. Requires enumerating all instances — O(I^2)
  /// pair terms — so this is for small graphs / tests only. Requires a
  /// materialized projection.
  bool estimate_variance = false;

  /// Projection construction policy, read by Create(graph, options):
  /// materialize the projected graph, serve neighborhoods lazily within
  /// `memory_budget`, or pick automatically from the estimated footprint.
  /// Estimates are bit-identical across policies for the same seed;
  /// see docs/MEMORY.md for the contract.
  ProjectionPolicy projection = ProjectionPolicy::kAuto;

  /// Byte budget for projection structure (the unit ParseMemoryBudget
  /// parses). 0 means unbounded: kAuto then always materializes, and
  /// kLazy memoizes without evicting. When positive, kAuto goes lazy as
  /// soon as the estimated materialized footprint exceeds the budget, and
  /// the lazy memo keeps its resident bytes within the budget via the
  /// wedge-admission policy (hypergraph/lazy_projection.h).
  uint64_t memory_budget = 0;

  /// Lazy path only: when non-empty, attaches the disk tier — evicted or
  /// never-admitted neighborhoods are appended to per-shard spill logs
  /// under this directory and re-admitted on touch instead of recomputed
  /// (hypergraph/spill_log.h, docs/STORAGE.md). Counts stay bit-identical
  /// at any budget; only speed and the spill statistics change. Ignored
  /// by materialized engines. Canonicalize() zeroes it like the other
  /// non-result-affecting fields.
  std::string spill_dir;
};

/// Uniform run statistics, filled for every algorithm.
struct EngineStats {
  Algorithm algorithm = Algorithm::kExact;  ///< strategy actually executed
  double elapsed_seconds = 0.0;             ///< counting time (not Create())
  uint64_t samples_used = 0;                ///< 0 for exact counting
  size_t num_threads = 1;                   ///< resolved worker count
  uint64_t num_wedges = 0;                  ///< |∧| of the input
  /// Mean over motifs with a non-zero exact count of
  /// Var[estimate_t] / count_t^2; 0 for exact counting, NaN when
  /// estimate_variance was not requested.
  double relative_variance = 0.0;

  /// Projection policy the engine actually ran with (kAuto resolved).
  ProjectionPolicy projection_policy = ProjectionPolicy::kMaterialized;
  /// Bytes of projection structure resident when the run finished:
  /// the full materialized footprint, or (lazy) memoized neighborhoods
  /// plus the wedge index.
  uint64_t projection_bytes = 0;
  /// High-water projection footprint over the engine's lifetime. Equals
  /// projection_bytes for materialized engines; for lazy engines it is
  /// the summed per-shard memo peak plus the wedge index, which never
  /// exceeds memory_budget + index.
  uint64_t projection_peak_bytes = 0;
  /// Lazy path only: neighborhoods served from the memo during this run.
  uint64_t lazy_memo_hits = 0;
  /// Lazy path only: neighborhoods recomputed from the hypergraph.
  uint64_t lazy_recomputes = 0;
  /// Lazy path only: memoized entries dropped (cumulative over the
  /// engine's lifetime — the memo persists across Count() calls).
  uint64_t lazy_evictions = 0;
  /// lazy_memo_hits / (lazy_memo_hits + lazy_recomputes); 0 when the run
  /// was materialized or touched no neighborhoods. Not deterministic
  /// under concurrency (counts are; see docs/MEMORY.md).
  double lazy_hit_rate = 0.0;
  /// Disk tier only (EngineOptions::spill_dir): neighborhoods appended
  /// to the spill logs, cumulative over the engine's lifetime.
  uint64_t lazy_spills = 0;
  /// Disk tier only: neighborhoods served this run by re-admitting a
  /// spilled record instead of recomputing.
  uint64_t lazy_spill_readmits = 0;
  /// Disk tier only: spill-log reads that failed verification (torn or
  /// corrupt records, injected faults) and fell back to recomputing.
  /// Fallbacks never affect counts — only this counter and speed.
  uint64_t lazy_spill_fallbacks = 0;

  std::string ToString() const;
};

/// Serializes a CANONICALIZED EngineOptions (MotifEngine::Canonicalize)
/// into a short stable text key holding exactly the count-relevant
/// fields — "alg=exact", or "alg=link-sample samples=5000 seed=7
/// variance=0". The serve-layer result cache prepends the query kind and
/// graph fingerprint to form its full key. Passing a non-canonical
/// options struct defeats the cache-sharing guarantee (two equivalent
/// requests would key differently) but is otherwise harmless.
std::string EngineOptionsCacheKey(const EngineOptions& options);

/// Counts plus the statistics of the run that produced them.
struct EngineResult {
  /// Counts (exact) or unbiased estimates (sampling) per h-motif.
  MotifCounts counts;
  /// Uniform run statistics.
  EngineStats stats;
};

/// Per-hyperedge participation counts: rows[e][t-1] = number of
/// h-motif-t instances containing hyperedge e. These are the HM26
/// feature rows of the paper's Table-4 hyperedge-prediction task.
using PerEdgeCounts = std::vector<std::array<double, kNumHMotifs>>;

/// Per-edge rows plus the statistics of the enumeration that produced
/// them.
struct PerEdgeResult {
  /// rows[e][t-1] = instances of motif t containing hyperedge e. Every
  /// instance credits its three member edges, so each column sums to
  /// exactly 3x the global count of that motif.
  PerEdgeCounts rows;
  /// Uniform run statistics (algorithm is always kExact: the rows come
  /// from the exact enumeration).
  EngineStats stats;
};

/// Facade over the MoCHy counting stack: owns the projected graph of one
/// hypergraph and executes any strategy against it. For counting many
/// graphs in one call, see BatchRunner in motif/batch.h.
class MotifEngine {
 public:
  /// Builds the full projected graph of `graph` with `num_threads`
  /// workers (0 = DefaultThreadCount()) and wraps both — i.e. always
  /// ProjectionPolicy::kMaterialized. `graph` must outlive the engine;
  /// Count() never mutates it, so one engine can serve many calls.
  static Result<MotifEngine> Create(const Hypergraph& graph,
                                    size_t num_threads = 0);

  /// Policy-aware construction: resolves `options.projection` against
  /// `options.memory_budget` and `options.algorithm`. Exact counting
  /// needs the materialized projection, so kAuto falls back to it; an
  /// *explicit* kLazy request combined with a (resolved) kExact
  /// algorithm is rejected with InvalidArgument rather than silently
  /// materializing behind the caller's budget. A lazy engine precomputes
  /// only the O(|E|) wedge index and serves neighborhoods through a
  /// sharded, budgeted memo. Count() calls that later demand what the
  /// resolved policy cannot provide (exact counting or variance
  /// estimation on a lazy engine) are rejected with InvalidArgument.
  ///
  /// Cost note: kAuto with a budget (and kLazy) pays one wedge-index
  /// sweep — the same incidence pass a projection build runs, without
  /// materializing — to make the decision; when kAuto then materializes
  /// anyway, setup costs roughly one extra such sweep over plain
  /// kMaterialized. Pass kMaterialized when you already know it fits.
  static Result<MotifEngine> Create(const Hypergraph& graph,
                                    const EngineOptions& options);

  /// Wraps an already-built projection (must match `graph`).
  MotifEngine(const Hypergraph& graph, ProjectedGraph projection);

  /// Movable (the projection is heavy; copying is deliberately disabled).
  MotifEngine(MotifEngine&&) = default;
  /// Move-assignable.
  MotifEngine& operator=(MotifEngine&&) = default;

  /// Counts (kExact) or estimates (sampling strategies) all 26 h-motif
  /// instance counts. Thread-safe: concurrent Count() calls on one engine
  /// are fine — the engine state is read-only except the lazy memo, which
  /// is internally synchronized (and never affects counts, only stats).
  Result<EngineResult> Count(const EngineOptions& options = {}) const;

  /// The per-edge result mode: exact per-hyperedge participation rows
  /// from one parallel pass over the same stamped-arena enumeration the
  /// exact counter runs on (motif/enumerate.h). Only
  /// `options.num_threads` is read — the rows are exact, so there is
  /// nothing to sample or seed — and results are bit-identical at every
  /// thread count (rows accumulate integers; merge order cannot change
  /// the sums). Requires a materialized projection: rejected with
  /// InvalidArgument on a lazy engine. Thread-safe like Count().
  Result<PerEdgeResult> CountPerEdge(const EngineOptions& options = {}) const;

  /// The wrapped hypergraph.
  const Hypergraph& graph() const { return *graph_; }
  /// The materialized projection. Must not be called on a lazy engine
  /// (check materialized() first); a lazy engine has none by design.
  const ProjectedGraph& projection() const;
  /// Whether this engine holds a full ProjectedGraph (true) or serves
  /// neighborhoods lazily (false).
  bool materialized() const { return materialized_; }
  /// The projection policy this engine resolved to at Create() time.
  ProjectionPolicy projection_policy() const {
    return materialized_ ? ProjectionPolicy::kMaterialized
                         : ProjectionPolicy::kLazy;
  }
  /// |∧| of the input, regardless of policy.
  uint64_t num_wedges() const;

  /// The strategy kAuto resolves to for this input under `options`.
  Algorithm ResolveAuto(const EngineOptions& options) const;

  /// Normalizes `options` to the canonical form two calls share exactly
  /// when Count() is guaranteed to return bit-identical counts for them
  /// on this engine's graph — the equivalence the serve-layer result
  /// cache is keyed by (EngineOptionsCacheKey serializes the result).
  /// Resolves kAuto to the concrete strategy and a zero num_samples to
  /// the derived sample count, then zeroes every field that cannot
  /// affect results: num_threads (counting is thread-count-invariant),
  /// projection policy and memory_budget (estimates are bit-identical
  /// across policies), sampling_ratio (subsumed by the resolved sample
  /// count), and — for exact counting — seed, samples and
  /// estimate_variance too. The canonical form is itself a valid
  /// argument to Count().
  EngineOptions Canonicalize(const EngineOptions& options) const;

 private:
  explicit MotifEngine(const Hypergraph& graph);

  const Hypergraph* graph_;  // not owned
  ProjectedGraph projection_;  // empty on lazy engines
  // Lazy-engine state: the wedge index (address-stable across engine
  // moves — the memo shards point into it) and the sharded memo.
  std::unique_ptr<ProjectedDegrees> degrees_;
  std::unique_ptr<ConcurrentLazyProjection> lazy_;
  bool materialized_ = true;
  uint64_t exact_cost_ = 0;  // Σ_e |N_e|² — MoCHy-E work estimate (Thm 1)
  uint64_t materialized_bytes_ = 0;  // actual, or (lazy) the estimate
};

}  // namespace mochy

#endif  // MOCHY_MOTIF_ENGINE_H_
