/// \file
/// MotifEngine: the single entry point for h-motif counting.
///
/// The paper ships three counting algorithms — MoCHy-E (exact,
/// Algorithm 2), MoCHy-A (hyperedge sampling, Algorithm 4) and MoCHy-A+
/// (hyperwedge sampling, Algorithm 5). The engine wraps all of them
/// behind one strategy selector so callers (CLI, examples, experiment
/// drivers, services) choose an algorithm with an option instead of a
/// code path, and get uniform run statistics back.
///
/// \par Engine lifecycle
/// For a single graph, the projected graph is built once — at engine
/// construction — and reused across any number of Count() calls. When
/// many graphs are counted in one go (batch mode, motif/batch.h), a
/// BatchRunner instead constructs one short-lived engine per item on a
/// worker of the shared pool, so each item's projection lives only while
/// that item is being counted and builds overlap with other items'
/// counting. For a graph that *grows* — a stream of hyperedge
/// arrivals — the sibling StreamingEngine (motif/streaming.h) maintains
/// the same MotifCounts incrementally, O(Δ) per arrival, instead of
/// rebuilding the projection and recounting.
///
/// \par Thread safety
/// A fully constructed MotifEngine is immutable: Count() never mutates
/// engine state, so concurrent Count() calls on one engine are safe. All
/// parallel execution is routed through the shared thread pool
/// (common/parallel); no call here spawns raw threads. The counting
/// kernels draw their scratch (epoch-stamped weight arrays and node sets,
/// common/scratch_arena.h) from each worker's persistent thread-local
/// arena, so repeated Count() calls and batch items reuse grown-to-fit
/// allocations instead of reallocating per run.
///
/// \par Determinism
/// For a fixed (algorithm, seed, sample count), results are bit-identical
/// regardless of num_threads and of whether the run happened alone or
/// inside a batch: exact counting accumulates integers (exactly
/// representable in doubles, so merge order cannot change the sum), and
/// the samplers derive sample n's RNG stream from the seed and n alone,
/// never from the executing worker.
#ifndef MOCHY_MOTIF_ENGINE_H_
#define MOCHY_MOTIF_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

/// Counting strategy.
enum class Algorithm {
  kExact,       ///< MoCHy-E: exact counts
  kEdgeSample,  ///< MoCHy-A: hyperedge sampling (unbiased estimates)
  kLinkSample,  ///< MoCHy-A+: hyperwedge sampling (lower variance than A)
  kAuto,        ///< exact on small inputs, MoCHy-A+ beyond a cost budget
};

/// Short stable name used in flags and reports: "exact", "edge-sample",
/// "link-sample", "auto".
const char* AlgorithmName(Algorithm algorithm);

/// Inverse of AlgorithmName; also accepts the paper aliases "mochy-e",
/// "mochy-a", "mochy-a+". Errors on anything else.
Result<Algorithm> ParseAlgorithm(std::string_view name);

/// Per-run knobs for MotifEngine::Count.
struct EngineOptions {
  /// Counting strategy; kAuto resolves per input (see ResolveAuto()).
  Algorithm algorithm = Algorithm::kAuto;

  /// Logical workers for counting (and projection building in Create()).
  /// 0 means DefaultThreadCount().
  size_t num_threads = 1;

  /// Sample count for the sampling algorithms (s for MoCHy-A, r for
  /// MoCHy-A+). 0 derives it as sampling_ratio * population, where the
  /// population is |E| (edge sampling) or |∧| (link sampling). Ignored by
  /// kExact.
  uint64_t num_samples = 0;

  /// Used only when num_samples == 0; must then be positive and finite.
  /// Values above 1 oversample the population, which is legal — both
  /// samplers draw with replacement — and lowers estimator variance.
  double sampling_ratio = 0.1;

  /// RNG seed for the sampling algorithms; same seed, sample count and
  /// algorithm => bit-identical estimates, regardless of num_threads
  /// (sample n forks its RNG stream from (seed, n), never from the worker
  /// that happens to process it).
  uint64_t seed = 1;

  /// When true, also evaluates the closed-form estimator variance
  /// (motif/variance, Theorems 2 and 4) and reports the mean relative
  /// variance in EngineStats. Requires enumerating all instances — O(I^2)
  /// pair terms — so this is for small graphs / tests only.
  bool estimate_variance = false;
};

/// Uniform run statistics, filled for every algorithm.
struct EngineStats {
  Algorithm algorithm = Algorithm::kExact;  ///< strategy actually executed
  double elapsed_seconds = 0.0;             ///< counting time (not Create())
  uint64_t samples_used = 0;                ///< 0 for exact counting
  size_t num_threads = 1;                   ///< resolved worker count
  uint64_t num_wedges = 0;                  ///< |∧| of the input
  /// Mean over motifs with a non-zero exact count of
  /// Var[estimate_t] / count_t^2; 0 for exact counting, NaN when
  /// estimate_variance was not requested.
  double relative_variance = 0.0;

  std::string ToString() const;
};

/// Counts plus the statistics of the run that produced them.
struct EngineResult {
  /// Counts (exact) or unbiased estimates (sampling) per h-motif.
  MotifCounts counts;
  /// Uniform run statistics.
  EngineStats stats;
};

/// Facade over the MoCHy counting stack: owns the projected graph of one
/// hypergraph and executes any strategy against it. For counting many
/// graphs in one call, see BatchRunner in motif/batch.h.
class MotifEngine {
 public:
  /// Builds the projected graph of `graph` with `num_threads` workers
  /// (0 = DefaultThreadCount()) and wraps both. `graph` must outlive the
  /// engine; Count() never mutates it, so one engine can serve many calls.
  static Result<MotifEngine> Create(const Hypergraph& graph,
                                    size_t num_threads = 0);

  /// Wraps an already-built projection (must match `graph`).
  MotifEngine(const Hypergraph& graph, ProjectedGraph projection);

  /// Movable (the projection is heavy; copying is deliberately disabled).
  MotifEngine(MotifEngine&&) = default;
  /// Move-assignable.
  MotifEngine& operator=(MotifEngine&&) = default;

  /// Counts (kExact) or estimates (sampling strategies) all 26 h-motif
  /// instance counts. Thread-safe: concurrent Count() calls on one engine
  /// are fine, the engine state is read-only.
  Result<EngineResult> Count(const EngineOptions& options = {}) const;

  /// The wrapped hypergraph.
  const Hypergraph& graph() const { return *graph_; }
  /// The projection built for (or handed to) this engine.
  const ProjectedGraph& projection() const { return projection_; }

  /// The strategy kAuto resolves to for this input under `options`.
  Algorithm ResolveAuto(const EngineOptions& options) const;

 private:
  const Hypergraph* graph_;  // not owned
  ProjectedGraph projection_;
  uint64_t exact_cost_ = 0;  // Σ_e |N_e|² — MoCHy-E work estimate (Thm 1)
};

}  // namespace mochy

#endif  // MOCHY_MOTIF_ENGINE_H_
