// Theoretical estimator variances of MoCHy-A (Theorem 2, Eq. 5) and
// MoCHy-A+ (Theorem 4, Eqs. 7-8), plus the instance-overlap terms p_l[t]
// and q_n[t] they depend on.
//
// These are exact formulas evaluated from the enumerated instance set, so
// they are only meant for small graphs: tests use them to validate that
// the samplers' empirical variance matches theory, and the analysis in
// Section 3.3 (Var[A+] <= Var[A] at matched sampling ratio) can be checked
// numerically on any dataset.
#ifndef MOCHY_MOTIF_VARIANCE_H_
#define MOCHY_MOTIF_VARIANCE_H_

#include <array>

#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/counts.h"

namespace mochy {

struct VarianceTerms {
  /// p[t-1][l] = number of ordered pairs (distinct instances) of h-motif t
  /// sharing exactly l hyperedges, l in {0, 1, 2}.
  std::array<std::array<double, 3>, kNumHMotifs> p{};
  /// q[t-1][n] = number of ordered pairs of h-motif t's instances sharing
  /// exactly n hyperwedges, n in {0, 1}.
  std::array<std::array<double, 2>, kNumHMotifs> q{};
  /// Exact counts M[t], for convenience.
  MotifCounts counts;
};

/// Enumerates all instances and computes the overlap terms. O(I^2) over
/// the per-motif instance lists — small graphs only.
VarianceTerms ComputeVarianceTerms(const Hypergraph& graph,
                                   const ProjectedGraph& projection);

/// Var[M-bar[t]] of MoCHy-A with s hyperedge samples (Eq. 5).
double MochyAVariance(const VarianceTerms& terms, int motif, uint64_t s,
                      uint64_t num_edges);

/// Var[M-hat[t]] of MoCHy-A+ with r hyperwedge samples (Eq. 7 for closed,
/// Eq. 8 for open motifs).
double MochyAPlusVariance(const VarianceTerms& terms, int motif, uint64_t r,
                          uint64_t num_wedges);

}  // namespace mochy

#endif  // MOCHY_MOTIF_VARIANCE_H_
