// Shared stamp-array helpers for the MoCHy counting hot paths.
//
// The three counters (mochy_e, mochy_a, mochy_aplus) walk the same basic
// shape — fix e_i (a hub or a sample), pick e_j from N(e_i), then resolve
// every e_k — and they share three dense-scratch tricks:
//
//  - hoisted edge sizes: |e| for all hyperedges in one contiguous
//    uint32_t array, so the innermost loop reads 4 bytes instead of
//    differencing two uint64 CSR offsets;
//  - stamped pair weights: e_j's projected neighborhood scattered into an
//    epoch-stamped array turns the per-pair w_jk hash probe into one load;
//  - stamped triple intersections: e_i is scattered into a node set once
//    per hub, e_i ∩ e_j once per pair (lazily, first closed triple only),
//    after which |e_i ∩ e_j ∩ e_k| is a marked-count scan of e_k alone —
//    Lemma 2 with the two inner membership tests amortized to O(1).
//
// Everything here is bit-count-neutral: the kernels built on these produce
// exactly the counts of the motif/reference.h baselines.
#ifndef MOCHY_MOTIF_STAMP_KERNELS_H_
#define MOCHY_MOTIF_STAMP_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/scratch_arena.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"

namespace mochy::internal {

/// Per-hub work estimate |N_e|² (Theorem 1's dominating term), the cost
/// vector the hub loops hand to ParallelWorkChunks.
inline std::vector<uint64_t> HubWorkEstimate(const ProjectedGraph& projection) {
  const size_t m = projection.num_edges();
  std::vector<uint64_t> cost(m);
  for (size_t e = 0; e < m; ++e) {
    const uint64_t degree = projection.degree(static_cast<EdgeId>(e));
    cost[e] = degree * degree;
  }
  return cost;
}

/// |e| for every hyperedge, hoisted into one contiguous array the inner
/// loops index directly.
inline std::vector<uint32_t> HoistEdgeSizes(const Hypergraph& graph) {
  const size_t m = graph.num_edges();
  std::vector<uint32_t> sizes(m);
  for (size_t e = 0; e < m; ++e) {
    sizes[e] = static_cast<uint32_t>(graph.edge_size(static_cast<EdgeId>(e)));
  }
  return sizes;
}

/// Scatters e_i's members into arena.node_hub (fresh epoch).
inline void StampHubNodes(const Hypergraph& graph, EdgeId ei,
                          ScratchArena& arena) {
  arena.node_hub.NewEpoch();
  for (NodeId v : graph.edge(ei)) arena.node_hub.Insert(v);
}

/// Scatters e_i ∩ e_j into arena.node_pair (fresh epoch); node_hub must
/// hold e_i (StampHubNodes).
inline void StampPairNodes(const Hypergraph& graph, EdgeId ej,
                           ScratchArena& arena) {
  arena.node_pair.NewEpoch();
  for (NodeId v : graph.edge(ej)) {
    if (arena.node_hub.Test(v)) arena.node_pair.Insert(v);
  }
}

/// |e_i ∩ e_j ∩ e_k| as a marked-count scan of e_k; node_pair must hold
/// e_i ∩ e_j (StampPairNodes).
inline uint64_t StampedTripleIntersection(const Hypergraph& graph, EdgeId ek,
                                          const ScratchArena& arena) {
  uint64_t count = 0;
  for (NodeId v : graph.edge(ek)) {
    count += arena.node_pair.Test(v) ? 1 : 0;
  }
  return count;
}

}  // namespace mochy::internal

#endif  // MOCHY_MOTIF_STAMP_KERNELS_H_
