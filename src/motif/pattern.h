// Hypergraph motifs (h-motifs), paper Section 2.2.
//
// The connectivity pattern of three connected hyperedges (a, b, c) is the
// emptiness of the 7 Venn regions:
//   d_a = a\b\c,  d_b = b\c\a,  d_c = c\a\b,
//   p_ab = a∩b\c, p_bc = b∩c\a, p_ca = c∩a\b,  t = a∩b∩c.
// We encode it as 7 bits (bit layout below), canonicalize over the 6
// permutations of (a, b, c), and exclude patterns that imply duplicate or
// empty hyperedges or a disconnected triple. Exactly 26 classes remain;
// they are numbered so that every structural constraint stated in the
// paper holds (see DESIGN.md Section 3):
//   ids  1-16 : closed motifs with t = 1 (non-empty common core),
//   ids 17-22 : open motifs (one disjoint pair; 17/18 are the
//               "hyperedge plus two disjoint subsets" patterns),
//   ids 23-26 : closed motifs with t = 0 (triangle of pairwise overlaps).
#ifndef MOCHY_MOTIF_PATTERN_H_
#define MOCHY_MOTIF_PATTERN_H_

#include <cstdint>
#include <string>

namespace mochy {

/// Number of h-motifs on three hyperedges.
inline constexpr int kNumHMotifs = 26;

/// 7-bit emptiness pattern. Bit i set means the region is NON-empty.
/// Layout: bit0=d_a, bit1=d_b, bit2=d_c, bit3=p_ab, bit4=p_bc, bit5=p_ca,
/// bit6=t.
using PatternBits = uint8_t;

inline constexpr PatternBits kPatternDa = 1 << 0;
inline constexpr PatternBits kPatternDb = 1 << 1;
inline constexpr PatternBits kPatternDc = 1 << 2;
inline constexpr PatternBits kPatternPab = 1 << 3;
inline constexpr PatternBits kPatternPbc = 1 << 4;
inline constexpr PatternBits kPatternPca = 1 << 5;
inline constexpr PatternBits kPatternT = 1 << 6;

/// Applies a role permutation to a pattern: `perm[x]` is the original edge
/// (0=a,1=b,2=c) that plays role x afterwards.
PatternBits PermutePattern(PatternBits bits, const int perm[3]);

/// Lexicographically smallest encoding over the 6 role permutations.
PatternBits CanonicalPattern(PatternBits bits);

/// Whether the pattern can be realized by three connected, pairwise
/// distinct, non-empty hyperedges.
bool IsValidPattern(PatternBits bits);

/// Motif id in [1, 26] for any valid pattern (canonical or not);
/// 0 for invalid patterns.
int MotifIdFromPattern(PatternBits bits);

/// Canonical representative pattern of motif `id` (1-based).
PatternBits MotifPattern(int id);

/// Open motifs have two non-adjacent hyperedges; ids 17..22.
bool IsOpenMotif(int id);
inline bool IsClosedMotif(int id) { return !IsOpenMotif(id); }

/// Classifies an instance from its region cardinalities, computed via the
/// inclusion-exclusion of Lemma 2 from sizes |a|,|b|,|c|, pairwise
/// intersections w_ab, w_bc, w_ca and the triple intersection w_abc.
/// Returns the motif id in [1, 26]. The inputs must describe three
/// distinct, connected hyperedges.
int ClassifyMotif(uint64_t size_a, uint64_t size_b, uint64_t size_c,
                  uint64_t w_ab, uint64_t w_bc, uint64_t w_ca,
                  uint64_t w_abc);

/// Like ClassifyMotif but returns 0 instead of asserting when the
/// cardinalities do not describe a valid instance (duplicate edges, a
/// disconnected triple, or inconsistent intersection sizes).
int ClassifyMotifOrZero(uint64_t size_a, uint64_t size_b, uint64_t size_c,
                        uint64_t w_ab, uint64_t w_bc, uint64_t w_ca,
                        uint64_t w_abc);

/// Human-readable pattern of a motif id, e.g. "d=110 p=100 t=1".
std::string MotifToString(int id);

}  // namespace mochy

#endif  // MOCHY_MOTIF_PATTERN_H_
