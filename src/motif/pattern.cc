#include "motif/pattern.h"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "common/logging.h"

namespace mochy {

namespace {

// The 6 permutations of the roles (a, b, c); perm[x] = original edge that
// plays role x.
constexpr int kPermutations[6][3] = {
    {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
};

// Index of the unordered-pair region for roles (x, y):
// (0,1)->p_ab, (1,2)->p_bc, (2,0)->p_ca.
constexpr int kPairIndex[3][3] = {
    {-1, 0, 2},
    {0, -1, 1},
    {2, 1, -1},
};

inline bool Bit(PatternBits bits, int i) { return (bits >> i) & 1; }

// Emptiness helpers in role space.
inline bool EdgeNonEmpty(PatternBits bits, int x) {
  // Edge x = d_x ∪ p_xy ∪ p_xz ∪ t for the two other roles y, z.
  const int y = (x + 1) % 3, z = (x + 2) % 3;
  return Bit(bits, x) || Bit(bits, 3 + kPairIndex[x][y]) ||
         Bit(bits, 3 + kPairIndex[x][z]) || Bit(bits, 6);
}

inline bool EdgesEqual(PatternBits bits, int x, int y) {
  // x == y iff x\y = ∅ and y\x = ∅, where x\y = d_x ∪ p_xz (z the third).
  const int z = 3 - x - y;
  const bool x_minus_y = Bit(bits, x) || Bit(bits, 3 + kPairIndex[x][z]);
  const bool y_minus_x = Bit(bits, y) || Bit(bits, 3 + kPairIndex[y][z]);
  return !x_minus_y && !y_minus_x;
}

inline bool PairAdjacent(PatternBits bits, int x, int y) {
  // x ∩ y ≠ ∅ iff p_xy or t is non-empty.
  return Bit(bits, 3 + kPairIndex[x][y]) || Bit(bits, 6);
}

struct MotifTable {
  // id_of[bits] in [1,26] for valid patterns, else 0.
  std::array<int, 128> id_of{};
  // representative[id-1] = canonical pattern of the motif.
  std::array<PatternBits, kNumHMotifs> representative{};
};

MotifTable BuildTable() {
  MotifTable table;
  std::vector<PatternBits> canon_t1, canon_open, canon_triangle;
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    if (!IsValidPattern(bits)) continue;
    const PatternBits canon = CanonicalPattern(bits);
    if (canon != bits) continue;  // collect each class once
    int adjacent_pairs = 0;
    for (int x = 0; x < 3; ++x) {
      for (int y = x + 1; y < 3; ++y) {
        if (PairAdjacent(bits, x, y)) ++adjacent_pairs;
      }
    }
    if (Bit(bits, 6)) {
      canon_t1.push_back(bits);
    } else if (adjacent_pairs == 2) {
      canon_open.push_back(bits);
    } else {
      canon_triangle.push_back(bits);
    }
  }
  MOCHY_CHECK(canon_t1.size() == 16) << "expected 16 t=1 closed motifs, got "
                                     << canon_t1.size();
  MOCHY_CHECK(canon_open.size() == 6)
      << "expected 6 open motifs, got " << canon_open.size();
  MOCHY_CHECK(canon_triangle.size() == 4)
      << "expected 4 t=0 closed motifs, got " << canon_triangle.size();

  // ids 1-16: closed with common core, ordered by (#non-empty regions,
  // canonical code); this puts the all-regions-non-empty motif at 16.
  std::sort(canon_t1.begin(), canon_t1.end(),
            [](PatternBits lhs, PatternBits rhs) {
              const int pl = std::popcount(static_cast<unsigned>(lhs));
              const int pr = std::popcount(static_cast<unsigned>(rhs));
              if (pl != pr) return pl < pr;
              return lhs < rhs;
            });

  // ids 17-22: open motifs ordered by (#private regions of the two
  // disjoint edges, then hub private region), so "hyperedge plus two
  // disjoint subsets" come first (17, 18) and the generic open motif is 22.
  auto open_key = [](PatternBits bits) {
    int hub = -1;
    for (int x = 0; x < 3; ++x) {
      const int y = (x + 1) % 3, z = (x + 2) % 3;
      if (PairAdjacent(bits, x, y) && PairAdjacent(bits, x, z)) hub = x;
    }
    MOCHY_CHECK(hub >= 0);
    const int y = (hub + 1) % 3, z = (hub + 2) % 3;
    const int leaf_private = (Bit(bits, y) ? 1 : 0) + (Bit(bits, z) ? 1 : 0);
    const int hub_private = Bit(bits, hub) ? 1 : 0;
    return leaf_private * 2 + hub_private;
  };
  std::sort(canon_open.begin(), canon_open.end(),
            [&](PatternBits lhs, PatternBits rhs) {
              return open_key(lhs) < open_key(rhs);
            });

  // ids 23-26: triangles without a core, ordered by #private regions.
  std::sort(canon_triangle.begin(), canon_triangle.end(),
            [](PatternBits lhs, PatternBits rhs) {
              const int dl = std::popcount(static_cast<unsigned>(lhs & 7));
              const int dr = std::popcount(static_cast<unsigned>(rhs & 7));
              if (dl != dr) return dl < dr;
              return lhs < rhs;
            });

  int id = 1;
  auto assign = [&](const std::vector<PatternBits>& group) {
    for (PatternBits canon : group) {
      table.representative[id - 1] = canon;
      ++id;
    }
  };
  assign(canon_t1);
  assign(canon_open);
  assign(canon_triangle);
  MOCHY_CHECK(id == kNumHMotifs + 1);

  // Fill the id lookup for all (valid) raw patterns.
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    if (!IsValidPattern(bits)) {
      table.id_of[raw] = 0;
      continue;
    }
    const PatternBits canon = CanonicalPattern(bits);
    for (int i = 0; i < kNumHMotifs; ++i) {
      if (table.representative[i] == canon) {
        table.id_of[raw] = i + 1;
        break;
      }
    }
    MOCHY_CHECK(table.id_of[raw] != 0);
  }
  return table;
}

const MotifTable& GetTable() {
  static const MotifTable table = BuildTable();
  return table;
}

}  // namespace

PatternBits PermutePattern(PatternBits bits, const int perm[3]) {
  PatternBits out = 0;
  for (int x = 0; x < 3; ++x) {
    if (Bit(bits, perm[x])) out |= static_cast<PatternBits>(1 << x);
  }
  for (int x = 0; x < 3; ++x) {
    for (int y = x + 1; y < 3; ++y) {
      const int original = kPairIndex[perm[x]][perm[y]];
      if (Bit(bits, 3 + original)) {
        out |= static_cast<PatternBits>(1 << (3 + kPairIndex[x][y]));
      }
    }
  }
  if (Bit(bits, 6)) out |= kPatternT;
  return out;
}

PatternBits CanonicalPattern(PatternBits bits) {
  PatternBits best = PermutePattern(bits, kPermutations[0]);
  for (int p = 1; p < 6; ++p) {
    best = std::min(best, PermutePattern(bits, kPermutations[p]));
  }
  return best;
}

bool IsValidPattern(PatternBits bits) {
  if (bits >= 128) return false;
  for (int x = 0; x < 3; ++x) {
    if (!EdgeNonEmpty(bits, x)) return false;
  }
  for (int x = 0; x < 3; ++x) {
    for (int y = x + 1; y < 3; ++y) {
      if (EdgesEqual(bits, x, y)) return false;
    }
  }
  int adjacent_pairs = 0;
  for (int x = 0; x < 3; ++x) {
    for (int y = x + 1; y < 3; ++y) {
      if (PairAdjacent(bits, x, y)) ++adjacent_pairs;
    }
  }
  return adjacent_pairs >= 2;
}

int MotifIdFromPattern(PatternBits bits) {
  if (bits >= 128) return 0;
  return GetTable().id_of[bits];
}

PatternBits MotifPattern(int id) {
  MOCHY_CHECK(id >= 1 && id <= kNumHMotifs);
  return GetTable().representative[id - 1];
}

bool IsOpenMotif(int id) { return id >= 17 && id <= 22; }

int ClassifyMotifOrZero(uint64_t size_a, uint64_t size_b, uint64_t size_c,
                        uint64_t w_ab, uint64_t w_bc, uint64_t w_ca,
                        uint64_t w_abc) {
  // Region cardinalities via inclusion-exclusion (Lemma 2). Guard against
  // inconsistent inputs (would underflow the unsigned subtraction).
  if (w_abc > w_ab || w_abc > w_bc || w_abc > w_ca) return 0;
  if (size_a + w_abc < w_ab + w_ca || size_b + w_abc < w_ab + w_bc ||
      size_c + w_abc < w_ca + w_bc) {
    return 0;
  }
  const uint64_t d_a = size_a - w_ab - w_ca + w_abc;
  const uint64_t d_b = size_b - w_ab - w_bc + w_abc;
  const uint64_t d_c = size_c - w_ca - w_bc + w_abc;
  const uint64_t p_ab = w_ab - w_abc;
  const uint64_t p_bc = w_bc - w_abc;
  const uint64_t p_ca = w_ca - w_abc;
  PatternBits bits = 0;
  if (d_a > 0) bits |= kPatternDa;
  if (d_b > 0) bits |= kPatternDb;
  if (d_c > 0) bits |= kPatternDc;
  if (p_ab > 0) bits |= kPatternPab;
  if (p_bc > 0) bits |= kPatternPbc;
  if (p_ca > 0) bits |= kPatternPca;
  if (w_abc > 0) bits |= kPatternT;
  return MotifIdFromPattern(bits);
}

int ClassifyMotif(uint64_t size_a, uint64_t size_b, uint64_t size_c,
                  uint64_t w_ab, uint64_t w_bc, uint64_t w_ca,
                  uint64_t w_abc) {
  const int id =
      ClassifyMotifOrZero(size_a, size_b, size_c, w_ab, w_bc, w_ca, w_abc);
  MOCHY_DCHECK(id != 0) << "invalid instance cardinalities";
  return id;
}

std::string MotifToString(int id) {
  const PatternBits bits = MotifPattern(id);
  std::string out = "d=";
  for (int i = 0; i < 3; ++i) out.push_back(Bit(bits, i) ? '1' : '0');
  out += " p=";
  for (int i = 3; i < 6; ++i) out.push_back(Bit(bits, i) ? '1' : '0');
  out += " t=";
  out.push_back(Bit(bits, 6) ? '1' : '0');
  out += IsOpenMotif(id) ? " (open)" : " (closed)";
  return out;
}

}  // namespace mochy
