// Container for per-motif instance counts / estimates.
#ifndef MOCHY_MOTIF_COUNTS_H_
#define MOCHY_MOTIF_COUNTS_H_

#include <array>
#include <string>
#include <vector>

#include "motif/pattern.h"

namespace mochy {

/// Counts (exact) or estimates (approximate) of instances per h-motif.
/// Values are doubles: exact counts stay integral far beyond any dataset
/// here (2^53), estimates are inherently fractional after rescaling.
class MotifCounts {
 public:
  MotifCounts() { counts_.fill(0.0); }

  /// Count of motif `id` in [1, 26].
  double operator[](int id) const { return counts_[Check(id)]; }
  double& operator[](int id) { return counts_[Check(id)]; }

  /// Sum of all 26 counts.
  double Total() const;

  /// Sum over open (17-22) or closed motifs only.
  double TotalOpen() const;
  double TotalClosed() const;

  MotifCounts& operator+=(const MotifCounts& other);
  /// Element-wise subtraction: the decremental-streaming merge (exact for
  /// integral counts, the only values the streaming paths subtract).
  MotifCounts& operator-=(const MotifCounts& other);
  MotifCounts& operator*=(double factor);

  /// Element-wise average of several count vectors.
  static MotifCounts Mean(const std::vector<MotifCounts>& many);

  /// Relative error sum_t |a[t]-b[t]| / sum_t b[t] with `b` the reference
  /// (the accuracy measure of paper Section 4.5). Returns 0 when the
  /// reference is all-zero and `a` is too; infinity if only `a` differs.
  double RelativeError(const MotifCounts& reference) const;

  /// One line per motif: "h-motif  7: 123456".
  std::string ToString() const;

 private:
  static int Check(int id);
  std::array<double, kNumHMotifs> counts_;
};

}  // namespace mochy

#endif  // MOCHY_MOTIF_COUNTS_H_
