#!/usr/bin/env python3
"""Build and run the MoCHy perf harness, writing a BENCH_*.json report.

Thin driver around bench/bench_report: configures + builds the `release`
CMake preset when needed, runs the harness, and (for CI) compares the
fresh report against a checked-in baseline, failing on wall-time
regressions beyond a threshold.

Typical uses:

  # Full report (5 example graphs, stamped + reference kernels):
  tools/run_bench.py --out BENCH_pr3.json --tag pr3

  # CI perf smoke: one small graph, fail on >25% regression:
  tools/run_bench.py --smoke --out BENCH_smoke.json \
      --baseline bench/baselines/BENCH_smoke_baseline.json --check
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    subprocess.run(cmd, check=True, **kwargs)


def ensure_built(build_dir: pathlib.Path, preset: str) -> pathlib.Path:
    """Configures + builds bench_report in `build_dir`; returns its path."""
    if not (build_dir / "CMakeCache.txt").exists():
        if build_dir == REPO / f"build-{preset}":
            # The preset's own binaryDir: configure through the preset.
            run(["cmake", "--preset", preset], cwd=REPO)
        else:
            # A custom --build-dir: the preset would configure its own
            # directory instead, so configure the requested one directly.
            run(["cmake", "-B", str(build_dir), "-S", ".",
                 "-DCMAKE_BUILD_TYPE=Release"], cwd=REPO)
    run(["cmake", "--build", str(build_dir), "-j", "--target", "bench_report"],
        cwd=REPO)
    binary = build_dir / "bench" / "bench_report"
    if not binary.exists():
        sys.exit(f"error: {binary} was not produced by the build")
    return binary


def kernel_walls(report: dict) -> dict:
    """Flattens a report into {(graph, kernel): wall_s}."""
    walls = {}
    for graph in report.get("graphs", []):
        for kernel in graph.get("kernels", []):
            walls[(graph["name"], kernel["kernel"])] = kernel["wall_s"]
    return walls


def calibration_factor(fresh_walls: dict, base_walls: dict) -> float:
    """Machine-speed ratio between the two runs, estimated from the
    frozen reference kernels (motif/reference.h): their code never
    changes, so any wall-time shift on them is the machine, not the PR.
    Returns the median now/base ratio over reference kernels, or 1.0."""
    ratios = []
    for key, base in base_walls.items():
        if not key[1].endswith("/reference") or base <= 0:
            continue
        now = fresh_walls.get(key)
        if now is not None and now > 0:
            ratios.append(now / base)
    if not ratios:
        return 1.0
    ratios.sort()
    return ratios[len(ratios) // 2]


def check_regressions(fresh: dict, baseline: dict, max_regression: float) -> int:
    """Returns the number of kernels regressing past the threshold.
    Wall times are normalized by the reference-kernel calibration factor
    so the gate compares code, not the baseline machine vs this one."""
    fresh_walls = kernel_walls(fresh)
    base_walls = kernel_walls(baseline)
    calibration = calibration_factor(fresh_walls, base_walls)
    print(f"machine calibration (reference kernels): {calibration:.2f}x")
    failures = 0
    for key, base in sorted(base_walls.items()):
        now = fresh_walls.get(key)
        if now is None:
            print(f"REGRESSION: {key} in baseline but missing from the "
                  f"fresh report")
            failures += 1
            continue
        if base <= 0:
            continue
        ratio = now / (base * calibration)
        status = "ok"
        if ratio > 1.0 + max_regression:
            status = "REGRESSION"
            failures += 1
        print(f"  {key[0]:<14} {key[1]:<20} base={base * 1e3:8.3f}ms "
              f"now={now * 1e3:8.3f}ms calibrated-ratio={ratio:5.2f}  "
              f"{status}")
    # A kernel present in the fresh report but absent from the baseline
    # is ungated: nothing would catch it regressing. Fail so the baseline
    # gets regenerated alongside the code that added the kernel.
    for key in sorted(set(fresh_walls) - set(base_walls)):
        print(f"REGRESSION: {key} in the fresh report but missing from the "
              f"baseline (regenerate the baseline to gate it)")
        failures += 1
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="release",
                        help="CMake configure preset to build (default: release)")
    parser.add_argument("--build-dir", default=None,
                        help="build directory (default: build-<preset>)")
    parser.add_argument("--out", default="BENCH_report.json",
                        help="output JSON path")
    parser.add_argument("--tag", default=None, help="report tag")
    parser.add_argument("--scale", type=float, default=None,
                        help="graph scale (full mode)")
    parser.add_argument("--threads", type=int, default=None,
                        help="counting threads (default: harness default, 1)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="repeats per kernel; wall time is the minimum")
    parser.add_argument("--smoke", action="store_true",
                        help="one small graph, quick repeats (CI payload)")
    parser.add_argument("--baseline", default=None,
                        help="baseline BENCH_*.json to compare against")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a kernel regresses past "
                             "--max-regression vs the baseline")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional wall-time regression "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir) if args.build_dir \
        else REPO / f"build-{args.preset}"
    binary = ensure_built(build_dir, args.preset)

    out_path = pathlib.Path(args.out)
    cmd = [str(binary), "--out", str(out_path)]
    if args.smoke:
        cmd.append("--smoke")
    if args.tag is not None:
        cmd += ["--tag", args.tag]
    if args.scale is not None:
        cmd += ["--scale", str(args.scale)]
    if args.threads is not None:
        cmd += ["--threads", str(args.threads)]
    if args.repeat is not None:
        cmd += ["--repeat", str(args.repeat)]
    try:
        run(cmd)
    except subprocess.CalledProcessError as error:
        # The harness writes its JSON only at the end, so a FATAL
        # mid-scenario (e.g. a bit-identity check tripping) would leave
        # no artifact for CI to upload. Flush a marker report instead so
        # the uploaded file says which invocation died and how.
        out_path.write_text(json.dumps({
            "schema": "mochy-bench-v1",
            "failed": True,
            "exit_code": error.returncode,
            "command": [str(c) for c in error.cmd],
        }, indent=2) + "\n")
        print(f"error: bench_report exited with {error.returncode}; "
              f"wrote failure marker to {out_path}")
        return error.returncode or 1

    fresh = json.loads(out_path.read_text())
    for graph in fresh.get("graphs", []):
        speedup = graph.get("exact_speedup_vs_reference", 0.0)
        print(f"{graph['name']}: exact stamped speedup {speedup:.2f}x "
              f"vs reference")
        stream = graph.get("streaming")
        if stream:
            print(f"{graph['name']}: streaming {stream['arrivals_per_s']:.0f} "
                  f"arrivals/s ({stream['mean_arrival_us']:.1f}us/arrival), "
                  f"per-arrival speedup vs recount "
                  f"{stream['per_arrival_speedup_vs_recount']:.0f}x")
            if stream.get("removals"):
                print(f"{graph['name']}: decremental "
                      f"{stream['removals_per_s']:.0f} removals/s "
                      f"({stream['mean_removal_us']:.1f}us/removal, drained "
                      f"{stream['removals']} edges back to zero counts)")
        windowed = graph.get("windowed")
        if windowed:
            print(f"{graph['name']}: sliding replay "
                  f"{windowed['windows_per_s']:.0f} windows/s over "
                  f"{windowed['windows']} windows, "
                  f"{windowed['evictions']} evictions")
        ingest = graph.get("ingest")
        if ingest:
            print(f"{graph['name']}: sharded ingest "
                  f"{ingest['edges_per_s']:.0f} edges/s with "
                  f"{ingest['producers']} concurrent producers")
        memory = graph.get("memory")
        if memory:
            mib = 1024 * 1024
            print(f"{graph['name']}: lazy a+ peak "
                  f"{memory['lazy_peak_bytes'] / mib:.2f}MiB vs materialized "
                  f"{memory['materialized_bytes'] / mib:.2f}MiB "
                  f"(budget {memory['budget_bytes'] / mib:.2f}MiB), "
                  f"hit rate {memory['lazy_hit_rate'] * 100:.0f}%, "
                  f"wall {memory['lazy_vs_materialized_wall']:.2f}x "
                  f"of materialized")
        ooc = graph.get("out_of_core")
        if ooc:
            kib = 1024
            print(f"{graph['name']}: out-of-core a+ from a "
                  f"{ooc['file_bytes'] / kib:.0f}KiB .mhg at budget "
                  f"{ooc['budget_bytes'] / kib:.0f}KiB: {ooc['spills']} "
                  f"spills, disk hit rate {ooc['disk_hit_rate'] * 100:.0f}% "
                  f"({ooc['readmits']} readmits, {ooc['fallbacks']} "
                  f"fallbacks), wall "
                  f"{ooc['spill_vs_materialized_wall']:.2f}x of "
                  f"materialized, peak RSS {ooc['peak_rss_kb'] / kib:.1f}MiB")
        serving = graph.get("serving")
        if serving:
            print(f"{graph['name']}: serving {serving['queries_per_s']:.0f} "
                  f"queries/s over {serving['queries']} mixed queries, "
                  f"cache hit rate {serving['hit_rate'] * 100:.0f}%, "
                  f"latency p50 {serving['p50_us']:.0f}us / "
                  f"p99 {serving['p99_us']:.0f}us")
        faults = graph.get("serving_faults")
        if faults:
            print(f"{graph['name']}: socket serving with "
                  f"{faults['fault_rate'] * 100:.0f}% injected frame faults: "
                  f"{faults['clean_qps']:.0f} -> {faults['faulty_qps']:.0f} "
                  f"queries/s, p99 {faults['clean_p99_us']:.0f}us -> "
                  f"{faults['faulty_p99_us']:.0f}us "
                  f"({faults['faults_fired']} faults fired, "
                  f"{faults['connections_dropped']} connections dropped, "
                  f"answers bit-identical)")

    if args.baseline:
        baseline = json.loads(pathlib.Path(args.baseline).read_text())
        print(f"comparing against {args.baseline} "
              f"(threshold +{args.max_regression * 100:.0f}%)")
        failures = check_regressions(fresh, baseline, args.max_regression)
        if failures and args.check:
            print(f"error: {failures} kernel(s) regressed "
                  f"past {args.max_regression * 100:.0f}%")
            return 1
        if not failures:
            print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
