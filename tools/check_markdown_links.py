#!/usr/bin/env python3
"""Checks that relative markdown links point at files that exist.

Usage: check_markdown_links.py FILE.md [FILE.md ...]

External links (http/https/mailto) are not fetched — CI must not depend
on network reachability — but every relative target, with any #anchor
stripped, must resolve against the linking file's directory. Exits 1
listing each broken link.
"""
import re
import sys
from pathlib import Path

# [text](target) — ignores images' leading ! since the path rule is the
# same, and skips in-page anchors like (#section).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            errors.append(f"{path}:{line}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"checked {len(argv) - 1} file(s): all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
