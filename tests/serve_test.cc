// Tests for the serving layer: cache-key canonicalization (the
// correctness heart of the result cache — options that cannot change
// counts must share an entry, options that can must not), the
// byte-budgeted LRU itself, protocol framing/encoding round-trips, the
// request dispatcher (cold vs cached responses bit-identical to direct
// engine runs), and a full socket round-trip against a live server.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/lru_cache.h"
#include "gtest/gtest.h"
#include "hypergraph/fingerprint.h"
#include "motif/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/render.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph TestGraph(uint64_t seed = 17) {
  return testing::RandomHypergraph(30, 60, 1, 5, seed);
}

// ---------------------------------------------------------------- keys --

TEST(CacheKeyTest, SchedulingKnobsCanonicalizeAway) {
  const Hypergraph g = TestGraph();
  const MotifEngine engine = MotifEngine::Create(g).value();

  EngineOptions defaults;  // exact, default threads, auto projection
  EngineOptions tuned;
  tuned.num_threads = 2;  // explicit thread count
  tuned.projection = ProjectionPolicy::kLazy;
  tuned.memory_budget = ParseMemoryBudget("1M").value();
  EXPECT_EQ(EngineOptionsCacheKey(engine.Canonicalize(defaults)),
            EngineOptionsCacheKey(engine.Canonicalize(tuned)));

  // Memory-budget suffix variants parse to the same bytes and (either
  // way) cannot affect counts, so they land on the same entry.
  EngineOptions suffixed = tuned;
  suffixed.memory_budget = ParseMemoryBudget("1048576").value();
  EXPECT_EQ(ParseMemoryBudget("1M").value(),
            ParseMemoryBudget("1048576").value());
  EXPECT_EQ(EngineOptionsCacheKey(engine.Canonicalize(tuned)),
            EngineOptionsCacheKey(engine.Canonicalize(suffixed)));
}

TEST(CacheKeyTest, ExactIgnoresSamplingFields) {
  const Hypergraph g = TestGraph();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions a;  // exact by default
  a.seed = 1;
  EngineOptions b;
  b.seed = 99;  // seed cannot affect an exact count
  b.num_samples = 1234;
  b.sampling_ratio = 0.5;
  EXPECT_EQ(EngineOptionsCacheKey(engine.Canonicalize(a)),
            EngineOptionsCacheKey(engine.Canonicalize(b)));
}

TEST(CacheKeyTest, SamplerSeedAndAlgorithmMatter) {
  const Hypergraph g = TestGraph();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions base;
  base.algorithm = Algorithm::kLinkSample;
  base.num_samples = 500;
  base.seed = 1;

  EngineOptions other_seed = base;
  other_seed.seed = 2;
  EXPECT_NE(EngineOptionsCacheKey(engine.Canonicalize(base)),
            EngineOptionsCacheKey(engine.Canonicalize(other_seed)));

  EngineOptions other_algorithm = base;
  other_algorithm.algorithm = Algorithm::kEdgeSample;
  EXPECT_NE(EngineOptionsCacheKey(engine.Canonicalize(base)),
            EngineOptionsCacheKey(engine.Canonicalize(other_algorithm)));

  EngineOptions other_samples = base;
  other_samples.num_samples = 501;
  EXPECT_NE(EngineOptionsCacheKey(engine.Canonicalize(base)),
            EngineOptionsCacheKey(engine.Canonicalize(other_samples)));
}

TEST(CacheKeyTest, DerivedAndExplicitSampleCountsUnify) {
  const Hypergraph g = TestGraph();
  const MotifEngine engine = MotifEngine::Create(g).value();
  // kAuto resolves to a concrete algorithm and ratio-derived samples
  // resolve to a concrete count, so "the same run spelled differently"
  // shares an entry.
  EngineOptions by_ratio;
  by_ratio.algorithm = Algorithm::kLinkSample;
  by_ratio.sampling_ratio = 0.1;
  by_ratio.seed = 3;
  const EngineOptions canonical = engine.Canonicalize(by_ratio);
  ASSERT_GT(canonical.num_samples, 0u);

  EngineOptions by_count;
  by_count.algorithm = Algorithm::kLinkSample;
  by_count.num_samples = canonical.num_samples;
  by_count.seed = 3;
  EXPECT_EQ(EngineOptionsCacheKey(canonical),
            EngineOptionsCacheKey(engine.Canonicalize(by_count)));
}

// -------------------------------------------------------------- LRU --

TEST(BudgetedLruCacheTest, HitsMissesAndRecency) {
  BudgetedLruCache cache(1024);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Put("a", "1"));
  EXPECT_EQ(cache.Get("a").value(), "1");
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes,
            1 + 1 + BudgetedLruCache::kEntryOverheadBytes);
}

TEST(BudgetedLruCacheTest, EvictsLeastRecentlyUsed) {
  // Budget fits exactly two single-byte entries.
  const uint64_t entry = 1 + 1 + BudgetedLruCache::kEntryOverheadBytes;
  BudgetedLruCache cache(2 * entry);
  EXPECT_TRUE(cache.Put("a", "1"));
  EXPECT_TRUE(cache.Put("b", "2"));
  EXPECT_TRUE(cache.Get("a").has_value());  // refresh a: b becomes LRU
  EXPECT_TRUE(cache.Put("c", "3"));         // evicts b
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(BudgetedLruCacheTest, RejectsOversizedEntries) {
  BudgetedLruCache cache(128);
  EXPECT_TRUE(cache.Put("small", "x"));
  // An entry bigger than the whole budget must not flush the cache.
  EXPECT_FALSE(cache.Put("big", std::string(1024, 'y')));
  EXPECT_TRUE(cache.Get("small").has_value());
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  // Zero budget disables caching entirely.
  BudgetedLruCache disabled(0);
  EXPECT_FALSE(disabled.Put("k", "v"));
  EXPECT_FALSE(disabled.Get("k").has_value());
}

TEST(BudgetedLruCacheTest, PutReplacesExistingKey) {
  BudgetedLruCache cache(1024);
  EXPECT_TRUE(cache.Put("k", "old"));
  EXPECT_TRUE(cache.Put("k", "new"));
  EXPECT_EQ(cache.Get("k").value(), "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

// -------------------------------------------------------- protocol --

TEST(ProtocolTest, FramesRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrame(fds[0], "hello frames").ok());
  ASSERT_TRUE(WriteFrame(fds[0], "").ok());  // empty payload is legal
  auto first = ReadFrame(fds[1]);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().eof);
  EXPECT_EQ(first.value().payload, "hello frames");
  auto second = ReadFrame(fds[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().payload, "");
  // Clean close at a frame boundary reads as eof, not an error.
  ::close(fds[0]);
  auto third = ReadFrame(fds[1]);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.value().eof);
  ::close(fds[1]);
}

TEST(ProtocolTest, OversizedPayloadIsRejectedBeforeWriting) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(WriteFrame(fds[0], huge).code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, DoublesRoundTripExactly) {
  for (const double value : {0.0, 1.0, -1.0, 0.1, 1e-300, 12345.6789,
                             2621.000000000001}) {
    EXPECT_EQ(DecodeDouble(EncodeDouble(value)).value(), value);
  }
  MotifCounts counts;
  for (int t = 1; t <= kNumHMotifs; ++t) counts[t] = t * 0.1 + 1e9;
  const auto decoded = DecodeCounts(EncodeCounts(counts));
  ASSERT_TRUE(decoded.ok());
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(decoded.value()[t], counts[t]);
  }
  EXPECT_FALSE(DecodeCounts("0x1p+0 0x1p+0").ok());  // wrong arity
}

// ----------------------------------------------------- fingerprint --

TEST(FingerprintTest, IdentifiesContentNotIdentity) {
  const Hypergraph a = TestGraph(17);
  const Hypergraph b = TestGraph(17);
  const Hypergraph c = TestGraph(18);
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(c));
}

// -------------------------------------------------------- dispatch --

TEST(MotifServerTest, ColdAndCachedCountsAreBitIdentical) {
  const Hypergraph g = TestGraph();
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", g).ok());

  const std::string request = "count g algorithm=link-sample samples=400 seed=5";
  const std::string cold = server.HandleRequest(request);
  const std::string warm = server.HandleRequest(request);
  ASSERT_EQ(cold.rfind("ok kind=count", 0), 0u) << cold;
  EXPECT_NE(cold.find("cached=0"), std::string::npos);
  EXPECT_NE(warm.find("cached=1"), std::string::npos);
  // Identical payloads apart from the cached flag in the header line.
  EXPECT_EQ(cold.substr(cold.find('\n')), warm.substr(warm.find('\n')));

  // The served counts decode to exactly what a direct engine run yields.
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.num_samples = 400;
  options.seed = 5;
  const MotifCounts direct =
      MotifEngine::Create(g, options).value().Count(options).value().counts;
  MotifCounts served;
  bool decoded = false;
  for (const std::string_view line : SplitLines(warm)) {
    if (line.rfind("counts ", 0) == 0) {
      served = DecodeCounts(line.substr(7)).value();
      decoded = true;
    }
  }
  ASSERT_TRUE(decoded);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(served[t], direct[t]) << "motif " << t;
  }
}

TEST(MotifServerTest, EquivalentRequestsShareOneCacheEntry) {
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", TestGraph()).ok());
  // Thread count is a scheduling knob; exact counting ignores seeds.
  EXPECT_NE(server.HandleRequest("count g algorithm=exact seed=1")
                .find("cached=0"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("count g algorithm=exact seed=9 threads=2")
                .find("cached=1"),
            std::string::npos);
  // A different sampler seed is a different result: must miss.
  EXPECT_NE(server.HandleRequest("count g algorithm=link-sample seed=1")
                .find("cached=0"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("count g algorithm=link-sample seed=2")
                .find("cached=0"),
            std::string::npos);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.count_queries, 4u);
  EXPECT_EQ(stats.cache.insertions, 3u);
}

TEST(MotifServerTest, ProfileAndSimilarityShareCachedBodies) {
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g1", TestGraph(17)).ok());
  ASSERT_TRUE(server.LoadGraph("g2", TestGraph(23)).ok());
  const std::string profile =
      server.HandleRequest("profile g1 random=2 seed=3 ratio=0.2");
  ASSERT_EQ(profile.rfind("ok kind=profile", 0), 0u) << profile;
  EXPECT_NE(profile.find("cached=0"), std::string::npos);
  // similarity reuses g1's cached profile body; g2's is cold.
  const std::string cold =
      server.HandleRequest("similarity g1 g2 random=2 seed=3 ratio=0.2");
  ASSERT_EQ(cold.rfind("ok kind=similarity", 0), 0u) << cold;
  EXPECT_NE(cold.find("cached=0"), std::string::npos);
  const std::string warm =
      server.HandleRequest("similarity g1 g2 random=2 seed=3 ratio=0.2");
  EXPECT_NE(warm.find("cached=1"), std::string::npos);
  // Bit-identical pearson line across cold and warm.
  EXPECT_EQ(cold.substr(cold.find('\n')), warm.substr(warm.find('\n')));
}

TEST(MotifServerTest, PerEdgeColdAndCachedMatchOfflineByteForByte) {
  // The determinism contract for the new workload: a served per-edge
  // body — cold or cached — is byte-identical to what the offline path
  // (engine.CountPerEdge + RenderPerEdgeBody, exactly what `mochy_cli
  // per-edge` prints) produces for the same graph.
  const Hypergraph g = TestGraph();
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", g).ok());

  const std::string cold = server.HandleRequest("per-edge g");
  const std::string warm = server.HandleRequest("per-edge g");
  ASSERT_EQ(cold.rfind("ok kind=per-edge", 0), 0u) << cold;
  EXPECT_NE(cold.find("cached=0"), std::string::npos);
  EXPECT_NE(warm.find("cached=1"), std::string::npos);

  EngineOptions materialized;
  materialized.projection = ProjectionPolicy::kMaterialized;
  const MotifEngine engine = MotifEngine::Create(g, materialized).value();
  const std::string offline =
      RenderPerEdgeBody(engine.CountPerEdge().value().rows);
  EXPECT_EQ(cold.substr(cold.find('\n') + 1), offline);
  EXPECT_EQ(warm.substr(warm.find('\n') + 1), offline);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.per_edge_queries, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(MotifServerTest, PerEdgeCacheKeyIgnoresThreadsButNotContent) {
  // Per-edge rows are exact and thread-count-invariant, so the thread
  // knob must canonicalize away; a different graph (even under a name
  // that merely *sounds* the same) must miss.
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", TestGraph(17)).ok());
  ASSERT_TRUE(server.LoadGraph("g_copy", TestGraph(17)).ok());
  ASSERT_TRUE(server.LoadGraph("other", TestGraph(18)).ok());
  EXPECT_NE(server.HandleRequest("per-edge g threads=1").find("cached=0"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("per-edge g threads=2").find("cached=1"),
            std::string::npos);
  // Same content under another name: the fingerprint-keyed entry hits.
  EXPECT_NE(server.HandleRequest("per-edge g_copy").find("cached=1"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("per-edge other").find("cached=0"),
            std::string::npos);
  EXPECT_EQ(server.stats().cache.insertions, 2u);
}

TEST(MotifServerTest, PredictColdAndCachedMatchOfflineByteForByte) {
  const Hypergraph history = TestGraph(17);
  const Hypergraph candidates =
      testing::RandomHypergraph(30, 12, 2, 5, 23);
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("hist", history).ok());
  ASSERT_TRUE(server.LoadGraph("cand", candidates).ok());

  const std::string request = "predict hist cand replace=0.5 seed=3";
  const std::string cold = server.HandleRequest(request);
  const std::string warm = server.HandleRequest(request);
  ASSERT_EQ(cold.rfind("ok kind=predict", 0), 0u) << cold;
  EXPECT_NE(cold.find("cached=0"), std::string::npos);
  EXPECT_NE(warm.find("cached=1"), std::string::npos);

  // Offline reference: the exact renderer `mochy_cli predict` prints.
  PredictRequestOptions options;
  options.replace_fraction = 0.5;
  options.seed = 3;
  const std::string offline =
      RenderPredictBody(history, candidates, options).value();
  EXPECT_EQ(cold.substr(cold.find('\n') + 1), offline);
  EXPECT_EQ(warm.substr(warm.find('\n') + 1), offline);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.predict_queries, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(MotifServerTest, PredictCacheKeyCanonicalizesSpellings) {
  // replace= travels as a double and is keyed via EncodeDouble, so
  // every spelling of the same value shares one entry; threads is a
  // scheduling knob and must not split entries. Different seeds (and
  // different replace fractions) are different fabrications: miss.
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("h", TestGraph(17)).ok());
  ASSERT_TRUE(server.LoadGraph("c", testing::RandomHypergraph(30, 8, 2, 4, 29))
                  .ok());
  EXPECT_NE(server.HandleRequest("predict h c replace=0.5 seed=1")
                .find("cached=0"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("predict h c replace=0x1p-1 seed=1 threads=2")
                .find("cached=1"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("predict h c replace=0.50 seed=1")
                .find("cached=1"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("predict h c replace=0.5 seed=2")
                .find("cached=0"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("predict h c replace=0.25 seed=1")
                .find("cached=0"),
            std::string::npos);
  EXPECT_EQ(server.stats().cache.insertions, 3u);
}

TEST(MotifServerTest, PerEdgeAndPredictRejectMalformedRequests) {
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", TestGraph(17)).ok());
  ASSERT_TRUE(server.LoadGraph("c", testing::RandomHypergraph(30, 8, 2, 4, 29))
                  .ok());
  EXPECT_EQ(server.HandleRequest("per-edge")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.HandleRequest("per-edge missing")
                .rfind("error code=NotFound", 0), 0u);
  // Per-edge counts are always exact: algorithm knobs are rejected, not
  // silently ignored (a cached entry must never masquerade as the
  // result of an option it did not honor).
  EXPECT_EQ(server.HandleRequest("per-edge g algorithm=link-sample")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.HandleRequest("per-edge g threads=junk")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.HandleRequest("predict g")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.HandleRequest("predict g missing")
                .rfind("error code=NotFound", 0), 0u);
  EXPECT_EQ(server.HandleRequest("predict g c replace=0")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.HandleRequest("predict g c replace=1.5")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.HandleRequest("predict g c ratio=0.5")
                .rfind("error code=InvalidArgument", 0), 0u);
  EXPECT_EQ(server.stats().errors, 9u);
  EXPECT_EQ(server.stats().cache.insertions, 0u);
}

TEST(MotifServerTest, ManyConcurrentClientsGetBitIdenticalResponses) {
  // The many-clients-one-graph hammer: 8 client threads fire the same
  // mix of count and profile queries at one server for several rounds.
  // Whatever the interleaving — cold computes racing cached reads —
  // every response body must be bit-identical for the same request
  // string, and the cache counters must add up afterwards.
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", TestGraph()).ok());
  const std::vector<std::string> requests = {
      "count g algorithm=exact",
      "count g algorithm=link-sample samples=300 seed=7",
      "profile g random=2 seed=3 ratio=0.2",
  };
  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 5;
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &requests, &responses, c] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (const std::string& request : requests) {
          responses[c].push_back(server.HandleRequest(request));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Everything after the header's cached= flag must be identical —
  // except wall-clock metadata lines ("batch items=... elapsed=..."):
  // clients racing a cold cache compute independently and measure
  // different timings around bit-identical count vectors.
  const auto body = [](const std::string& response) {
    std::string out;
    size_t pos = response.find('\n');
    while (pos != std::string::npos) {
      const size_t end = response.find('\n', pos + 1);
      const std::string line = response.substr(
          pos, end == std::string::npos ? std::string::npos : end - pos);
      if (line.find("elapsed=") == std::string::npos) out += line;
      pos = end;
    }
    return out;
  };
  for (size_t q = 0; q < requests.size(); ++q) {
    const std::string want = body(responses[0][q]);
    for (size_t c = 0; c < kClients; ++c) {
      for (size_t r = 0; r < kRounds; ++r) {
        const std::string& got = responses[c][r * requests.size() + q];
        ASSERT_EQ(got.rfind("ok ", 0), 0u) << got;
        EXPECT_EQ(body(got), want)
            << "client " << c << " round " << r << ": " << requests[q];
      }
    }
    // A client's own earlier Put is visible to its later rounds, so the
    // final round is a guaranteed cache hit for every client.
    for (size_t c = 0; c < kClients; ++c) {
      const std::string& last =
          responses[c][(kRounds - 1) * requests.size() + q];
      EXPECT_NE(last.find("cached=1"), std::string::npos)
          << "client " << c << ": " << requests[q];
    }
  }

  // Coherent counters: every query consulted the cache exactly once,
  // nothing errored, and each distinct request missed at least once.
  const ServerStats stats = server.stats();
  const uint64_t total = kClients * kRounds * requests.size();
  EXPECT_EQ(stats.queries, total);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, total);
  EXPECT_GE(stats.cache.misses, requests.size());
  EXPECT_GE(stats.cache.hits, kClients * (kRounds - 1) * requests.size());
  EXPECT_GE(stats.cache.entries, requests.size());
}

TEST(MotifServerTest, MalformedRequestsBecomeErrorResponses) {
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", TestGraph()).ok());
  EXPECT_EQ(server.HandleRequest("bogus").rfind("error code=InvalidArgument", 0),
            0u);
  EXPECT_EQ(server.HandleRequest("count missing").rfind("error code=NotFound", 0),
            0u);
  EXPECT_EQ(server.HandleRequest("count g threads=junk")
                .rfind("error code=InvalidArgument", 0),
            0u);
  EXPECT_EQ(server.HandleRequest("count g seed=-1")
                .rfind("error code=InvalidArgument", 0),
            0u);
  EXPECT_EQ(server.HandleRequest("count g ratio=0")
                .rfind("error code=InvalidArgument", 0),
            0u);
  EXPECT_EQ(server.stats().errors, 5u);
}

TEST(MotifServerTest, LoadIsIdempotentOnIdenticalContentOnly) {
  MotifServer server{ServeOptions{}};
  ASSERT_TRUE(server.LoadGraph("g", TestGraph(17)).ok());
  EXPECT_TRUE(server.LoadGraph("g", TestGraph(17)).ok());  // same content
  const Status clash = server.LoadGraph("g", TestGraph(18));
  EXPECT_EQ(clash.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(server.LoadGraph("bad name!", TestGraph()).ok());
  EXPECT_EQ(server.stats().graphs, 1u);
}

// ---------------------------------------------------------- socket --

TEST(MotifServerTest, ServesQueriesOverAUnixSocket) {
  const std::string socket_path =
      "/tmp/mochy_serve_test_" + std::to_string(::getpid()) + ".sock";
  ServeOptions options;
  options.socket_path = socket_path;
  MotifServer server(options);
  ASSERT_TRUE(server.LoadGraph("g", TestGraph()).ok());

  std::thread serving([&server] { EXPECT_TRUE(server.Serve().ok()); });
  // The listener may not be bound yet; retry briefly.
  MotifClient client(socket_path, 0);
  Status connected = Status::OK();
  for (int attempt = 0; attempt < 50; ++attempt) {
    connected = client.Connect();
    if (connected.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(connected.ok()) << connected.ToString();

  auto cold = client.Request("count g algorithm=exact");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().rfind("ok kind=count", 0), 0u) << cold.value();
  EXPECT_NE(cold.value().find("cached=0"), std::string::npos);
  auto warm = client.Request("count g algorithm=exact threads=2");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm.value().find("cached=1"), std::string::npos);
  EXPECT_EQ(cold.value().substr(cold.value().find('\n')),
            warm.value().substr(warm.value().find('\n')));

  auto stats = client.Request("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rfind("ok kind=stats", 0), 0u);
  EXPECT_NE(stats.value().find("cache hits=1"), std::string::npos);

  auto shutdown = client.Request("shutdown");
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(shutdown.value(), "ok kind=shutdown\n");
  client.Close();
  serving.join();
  // Serve() unlinks the socket path on the way out.
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
}

// ------------------------------------------------------ robustness --

/// A MotifServer bound to a fresh unix socket, serving on its own
/// thread until the test ends. The robustness tests below all need one.
struct LiveServer {
  explicit LiveServer(ServeOptions options_in) : server([&options_in] {
    if (options_in.socket_path.empty()) {
      options_in.socket_path = "/tmp/mochy_robust_test_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(next_id++) + ".sock";
    }
    return options_in;
  }()) {
    path = options_in.socket_path;
    EXPECT_TRUE(server.LoadGraph("g", TestGraph()).ok());
    serving = std::thread([this] { EXPECT_TRUE(server.Serve().ok()); });
    // The probe completes a full request round-trip: a bare connect
    // could sit unaccepted in the listen backlog and later steal a
    // connection slot from the test's own clients.
    MotifClient probe(path, 0);
    for (int attempt = 0; attempt < 250; ++attempt) {
      if (probe.Connect().ok()) {
        EXPECT_TRUE(probe.Request("stats").ok());
        probe.Close();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "server never came up on " << path;
  }

  ~LiveServer() {
    server.RequestStop();  // the accept loop polls stop_ in 200ms slices
    serving.join();
  }

  /// Polls until at least `n` connections were dropped. The peer's side
  /// of a bad exchange finishes before the server even accepts it, so
  /// counter checks have to wait for the handler to catch up.
  bool DroppedAtLeast(uint64_t n, int budget_ms) {
    for (int waited = 0; waited < budget_ms; waited += 20) {
      if (server.stats().dropped_connections >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return server.stats().dropped_connections >= n;
  }

  /// Polls until no connection is active (slots must drain, never leak).
  bool DrainsWithin(int budget_ms) {
    for (int waited = 0; waited < budget_ms; waited += 20) {
      if (server.stats().active_connections == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return server.stats().active_connections == 0;
  }

  static inline int next_id = 0;
  std::string path;
  MotifServer server;
  std::thread serving;
};

/// Raw frame-prefix writer for malformed-peer tests: claims
/// `claimed_len` payload bytes, then sends only `body`.
void SendTruncatedFrame(int fd, uint32_t claimed_len, std::string_view body) {
  const char prefix[4] = {
      static_cast<char>(claimed_len & 0xff),
      static_cast<char>((claimed_len >> 8) & 0xff),
      static_cast<char>((claimed_len >> 16) & 0xff),
      static_cast<char>((claimed_len >> 24) & 0xff)};
  ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
  if (!body.empty()) {
    ASSERT_EQ(::send(fd, body.data(), body.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(body.size()));
  }
}

TEST(ServerRobustnessTest, SurvivesAClientThatDisconnectsMidReply) {
  // SIGPIPE regression: the peer vanishes between request and response,
  // so the server's reply write hits a closed socket. Without
  // MSG_NOSIGNAL that raises SIGPIPE and kills the process.
  LiveServer live{ServeOptions{}};
  for (int round = 0; round < 3; ++round) {
    auto fd = ConnectTo(live.path, 0, 1000);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFrame(fd.value(), "count g algorithm=exact").ok());
    ::close(fd.value());  // gone before the server answers
  }
  // The server is still alive and still correct.
  ASSERT_TRUE(live.DrainsWithin(5000));
  MotifClient client(live.path, 0);
  ASSERT_TRUE(client.Connect().ok());
  auto response = client.Request("count g algorithm=exact");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().rfind("ok kind=count", 0), 0u);
}

TEST(ServerRobustnessTest, DropsATruncatedFrameWithoutDying) {
  LiveServer live{ServeOptions{}};
  auto fd = ConnectTo(live.path, 0, 1000);
  ASSERT_TRUE(fd.ok());
  // The prefix promises 100 bytes; only 7 ever arrive, then EOF.
  SendTruncatedFrame(fd.value(), 100, "count g");
  ::close(fd.value());
  ASSERT_TRUE(live.DrainsWithin(5000));
  EXPECT_TRUE(live.DroppedAtLeast(1, 5000));
  MotifClient client(live.path, 0);
  ASSERT_TRUE(client.Connect().ok());
  auto response = client.Request("stats");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().rfind("ok kind=stats", 0), 0u);
}

TEST(ServerRobustnessTest, RejectsAnOversizedFramePrefix) {
  LiveServer live{ServeOptions{}};
  auto fd = ConnectTo(live.path, 0, 1000);
  ASSERT_TRUE(fd.ok());
  // A prefix past kMaxFrameBytes must be refused outright — not
  // trusted as an allocation size.
  SendTruncatedFrame(fd.value(),
                     static_cast<uint32_t>(kMaxFrameBytes) + 1, "");
  auto reply = ReadFrame(fd.value(), 5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().eof);  // server closed on us
  ::close(fd.value());
  ASSERT_TRUE(live.DrainsWithin(5000));
  MotifClient client(live.path, 0);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Request("stats").ok());
}

TEST(ServerRobustnessTest, CutsOffAMidFrameStallAtTheDeadline) {
  // Slow-loris: a peer starts a frame and stalls. The per-frame
  // deadline (not the much longer idle timeout) must free the worker.
  ServeOptions options;
  options.io_timeout_ms = 300;
  options.idle_timeout_ms = 60'000;
  LiveServer live{options};
  auto fd = ConnectTo(live.path, 0, 1000);
  ASSERT_TRUE(fd.ok());
  SendTruncatedFrame(fd.value(), 100, "count g alg");  // ...and stall
  const auto start = std::chrono::steady_clock::now();
  auto reply = ReadFrame(fd.value(), 10'000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().eof);  // deadline fired, connection closed
  EXPECT_LT(elapsed.count(), 5000) << "idle timeout fired, not the deadline";
  ::close(fd.value());
  ASSERT_TRUE(live.DrainsWithin(5000));
  EXPECT_TRUE(live.DroppedAtLeast(1, 5000));
  MotifClient client(live.path, 0);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Request("count g algorithm=exact").ok());
}

TEST(ServerRobustnessTest, ShedsLoadBeyondMaxConnectionsWithATypedError) {
  ServeOptions options;
  options.max_connections = 1;
  LiveServer live{options};
  // The construction probe held the only slot for an instant; wait for
  // it to drain so A is the one admitted.
  ASSERT_TRUE(live.DrainsWithin(5000));

  // A owns the only slot (a completed request proves it was accepted).
  MotifClient a(live.path, 0);
  ASSERT_TRUE(a.Connect().ok());
  auto held = a.Request("count g algorithm=exact");
  ASSERT_TRUE(held.ok());
  ASSERT_EQ(held.value().rfind("ok kind=count", 0), 0u) << held.value();

  // B is shed with a typed Unavailable frame, not a hang or a RST. The
  // server pushes the frame without reading a request, so B just reads
  // (writing first can race the server's close into an EPIPE).
  auto b = ConnectTo(live.path, 0, 1000);
  ASSERT_TRUE(b.ok());
  auto shed = ReadFrame(b.value(), 5000);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  ASSERT_FALSE(shed.value().eof);
  EXPECT_EQ(shed.value().payload.rfind("error code=Unavailable", 0), 0u)
      << shed.value().payload;
  ::close(b.value());
  EXPECT_GE(live.server.stats().overload_rejections, 1u);

  // The slot is not leaked: once A leaves, the next client gets in.
  a.Close();
  ASSERT_TRUE(live.DrainsWithin(5000));
  MotifClient c(live.path, 0);
  ASSERT_TRUE(c.Connect().ok());
  auto admitted = c.Request("count g algorithm=exact");
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted.value().rfind("ok kind=count", 0), 0u);
}

TEST(ServerRobustnessTest, RetryRidesOutAnOverloadedWindow) {
  ServeOptions options;
  options.max_connections = 1;
  LiveServer live{options};
  ASSERT_TRUE(live.DrainsWithin(5000));  // let the construction probe drain

  MotifClient holder(live.path, 0);
  ASSERT_TRUE(holder.Connect().ok());
  auto held = holder.Request("count g algorithm=exact");
  ASSERT_TRUE(held.ok());
  ASSERT_EQ(held.value().rfind("ok kind=count", 0), 0u) << held.value();

  // The holder leaves 150ms in; B's retry loop (Unavailable is
  // retriable) must land a successful attempt after that.
  std::thread release([&holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    holder.Close();
  });
  ClientOptions retrying;
  retrying.backoff.max_attempts = 10;
  retrying.backoff.initial_delay_ms = 50.0;
  retrying.backoff.seed = 5;
  MotifClient b(live.path, 0, retrying);
  auto response = b.RequestWithRetry("count g algorithm=exact");
  release.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().rfind("ok kind=count", 0), 0u);
}

TEST(ServerRobustnessTest, InjectedWriteFaultDropsTheConnectionNotTheServer) {
  LiveServer live{ServeOptions{}};
  // The request travels via raw sends (no fault points), so the first
  // "protocol.write" hit is the server's reply: it fails with the
  // injected EIO, the server drops the connection and carries on.
  auto fd = ConnectTo(live.path, 0, 1000);
  ASSERT_TRUE(fd.ok());
  // Armed before the request goes out: the reply write must be the
  // first (and only) protocol.write hit.
  FaultPlan plan;
  plan.rules.push_back(
      {"protocol.write", /*nth=*/1, /*every=*/0, FaultError(EIO)});
  FaultInjector::Global().Arm(plan);
  const std::string request = "count g algorithm=exact";
  SendTruncatedFrame(fd.value(), static_cast<uint32_t>(request.size()),
                     request);
  auto reply = ReadFrame(fd.value(), 10'000);
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().eof);  // reply write failed -> closed
  ::close(fd.value());
  ASSERT_TRUE(live.DrainsWithin(5000));
  EXPECT_TRUE(live.DroppedAtLeast(1, 5000));
  EXPECT_GE(FaultInjector::Global().fired("protocol.write"), 1u);
  MotifClient client(live.path, 0);
  ASSERT_TRUE(client.Connect().ok());
  auto ok = client.Request("count g algorithm=exact");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().rfind("ok kind=count", 0), 0u);
}

TEST(ServerRobustnessTest, ChaosScheduleNeverCrashesOrCorruptsAnAnswer) {
  // The chaos oracle: with a seeded background fault rate on every
  // frame-I/O point (both sides of the wire live in this process), a
  // mixed workload of retrying clients must (a) never crash the server,
  // (b) never leak a connection slot, and (c) only ever observe
  // bit-identical payloads or typed transport errors — never a torn or
  // wrong answer.
  LiveServer live{ServeOptions{}};
  ASSERT_TRUE(
      live.server.LoadGraph("c", testing::RandomHypergraph(30, 8, 2, 4, 29))
          .ok());
  const std::vector<std::string> requests = {
      "count g algorithm=exact",
      "count g algorithm=link-sample samples=300 seed=7",
      "profile g random=2 seed=3 ratio=0.2",
      "per-edge g",
      "predict g c replace=0.5 seed=3",
  };
  // Reference bodies come from the in-process dispatcher — the same
  // code path the socket loop frames.
  const auto body = [](const std::string& response) {
    return response.substr(response.find('\n'));
  };
  std::vector<std::string> want;
  for (const std::string& request : requests) {
    const std::string response = live.server.HandleRequest(request);
    ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
    want.push_back(body(response));
  }

  FaultPlan plan;
  plan.seed = 1234;
  plan.rate = 0.02;  // ~2% of frame reads/writes fail with EIO
  FaultInjector::Global().Arm(plan);
  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 12;
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> hard_failures(kClients, 0);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientOptions retrying;
      retrying.backoff.max_attempts = 12;
      retrying.backoff.initial_delay_ms = 2.0;
      retrying.backoff.max_delay_ms = 50.0;
      retrying.backoff.seed = 100 + c;
      MotifClient client(live.path, 0, retrying);
      for (size_t r = 0; r < kRounds; ++r) {
        const size_t q = (c + r) % requests.size();
        auto response = client.RequestWithRetry(requests[q]);
        if (!response.ok()) {
          // A typed transport error after exhausted retries is an
          // acceptable outcome under chaos; a wrong answer is not.
          ++hard_failures[c];
          continue;
        }
        if (response.value().rfind("ok ", 0) != 0 ||
            body(response.value()) != want[q]) {
          ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  FaultInjector::Global().Disarm();

  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c << " saw a corrupt answer";
  }
  // Faults actually fired — the schedule exercised the error paths.
  EXPECT_GT(FaultInjector::Global().total_fired(), 0u);
  // No leaked slots, and the server still answers cleanly.
  ASSERT_TRUE(live.DrainsWithin(10'000));
  MotifClient after(live.path, 0);
  ASSERT_TRUE(after.Connect().ok());
  auto response = after.Request("count g algorithm=exact");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(body(response.value()), want[0]);
  after.Close();
  EXPECT_TRUE(live.DrainsWithin(5000));  // every slot returned
}

}  // namespace
}  // namespace mochy
