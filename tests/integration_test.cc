// End-to-end integration tests across modules: the full paper pipeline at
// miniature scale (generate -> count -> null model -> CP -> similarity),
// sampler convergence, and the paper's Figure 2 worked example.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/generators.h"
#include "hypergraph/builder.h"
#include "motif/enumerate.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "profile/significance.h"
#include "profile/similarity.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

TEST(IntegrationTest, PaperFigure2WorkedExample) {
  // e1={L,K,F}, e2={L,H,K}, e3={B,G,L}, e4={S,R,F}.
  auto g =
      MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  // Figure 2(d): exactly the triples {e1,e2,e3}, {e1,e2,e4}, {e1,e3,e4}
  // are connected ({e2,e3,e4} is not: e4 is disjoint from e2 and e3).
  std::map<std::set<EdgeId>, int> found;
  EnumerateInstances(g, p, [&](const MotifInstance& inst) {
    found[{inst.i, inst.j, inst.k}] = inst.motif;
  });
  ASSERT_EQ(found.size(), 3u);
  const std::set<EdgeId> t123 = {0, 1, 2};
  const std::set<EdgeId> t124 = {0, 1, 3};
  const std::set<EdgeId> t134 = {0, 2, 3};
  ASSERT_TRUE(found.count(t123));
  ASSERT_TRUE(found.count(t124));
  ASSERT_TRUE(found.count(t134));
  // {e1,e2,e3}: all pairwise intersections contain L; triple = {L};
  // each edge has private nodes; p_ab = {K} for (e1,e2) only.
  // Regions: d=(1,1,2 nodes -> 111), p_12={K}, p_13=∅, p_23=∅, t={L}.
  const int expected_123 = ClassifyMotif(3, 3, 3, /*w_ab=*/2, /*w_bc=*/1,
                                         /*w_ca=*/1, /*w_abc=*/1);
  EXPECT_EQ(found[t123], expected_123);
  // {e1,e2,e4}: e2 ∩ e4 = ∅ -> open.
  EXPECT_TRUE(IsOpenMotif(found[t124]));
  // {e1,e3,e4}: e3 ∩ e4 = ∅ -> open; hub e1 has a private node (K),
  // leaves have private nodes -> the generic open motif 22.
  EXPECT_EQ(found[t134], 22);
}

TEST(IntegrationTest, MiniatureDomainSeparationPipeline) {
  // The paper's Q2/Q3 pipeline end to end at tiny scale: CPs of two
  // datasets per domain correlate more within than across domains.
  std::vector<std::vector<double>> profiles;
  std::vector<std::string> domains;
  for (Domain domain : {Domain::kCoauthorship, Domain::kContact,
                        Domain::kTags}) {
    for (uint64_t seed : {1ull, 2ull}) {
      GeneratorConfig config = DefaultConfig(domain, 0.12);
      config.seed = seed;
      const Hypergraph graph = GenerateDomainHypergraph(config).value();
      CharacteristicProfileOptions options;
      options.num_random_graphs = 3;
      options.seed = 5;
      const auto profile =
          ComputeCharacteristicProfile(graph, options).value();
      profiles.emplace_back(profile.cp.begin(), profile.cp.end());
      domains.push_back(DomainName(domain));
    }
  }
  const auto matrix = CorrelationMatrix(profiles).value();
  const auto separation = ComputeDomainSeparation(matrix, domains).value();
  EXPECT_GT(separation.within_mean, separation.across_mean)
      << "CPs must separate domains";
  EXPECT_GT(separation.gap, 0.1);
}

TEST(IntegrationTest, SamplerErrorDecreasesWithSamples) {
  GeneratorConfig config = DefaultConfig(Domain::kEmail, 0.15);
  config.seed = 3;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();
  const ProjectedGraph projection = ProjectedGraph::Build(graph).value();
  const MotifCounts exact = CountMotifsExact(graph, projection);

  // Average error over several seeds at increasing sample counts.
  double previous_error = 1e9;
  for (uint64_t samples : {20ull, 200ull, 2000ull}) {
    double error = 0.0;
    for (int trial = 0; trial < 8; ++trial) {
      MochyAPlusOptions options;
      options.num_samples = samples;
      options.seed = 100 + static_cast<uint64_t>(trial);
      error += CountMotifsWedgeSample(graph, projection, options)
                   .RelativeError(exact) /
               8.0;
    }
    EXPECT_LT(error, previous_error) << samples << " samples";
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.05);
}

TEST(IntegrationTest, NullModelShiftsMotifDistribution) {
  // Chung-Lu randomization must actually change the motif mix of a
  // structured hypergraph (otherwise significances would be all-zero).
  GeneratorConfig config = DefaultConfig(Domain::kTags, 0.15);
  config.seed = 4;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();
  CharacteristicProfileOptions options;
  options.num_random_graphs = 3;
  options.seed = 6;
  const auto profile = ComputeCharacteristicProfile(graph, options).value();
  double magnitude = 0.0;
  for (double d : profile.delta) magnitude += std::abs(d);
  EXPECT_GT(magnitude, 0.5) << "significances unexpectedly flat";
}

}  // namespace
}  // namespace mochy
