// Tests for the network-motif baseline: star expansion, canonical graphlet
// codes, ESU census vs brute force, RAND-ESU unbiasedness, network CPs.
#include <gtest/gtest.h>

#include <set>

#include "baseline/bipartite.h"
#include "baseline/graphlet.h"
#include "baseline/network_cp.h"
#include "hypergraph/builder.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

// Brute-force census: check all node subsets of size k.
std::vector<double> BruteForceCensus(const Graph& g, int k) {
  const GraphletRegistry& registry = GraphletRegistry::Get();
  std::vector<double> counts(registry.NumClasses(k), 0.0);
  const size_t n = g.num_nodes();
  std::vector<uint32_t> subset(static_cast<size_t>(k));
  auto record = [&]() {
    uint32_t mask = 0;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        if (g.HasEdge(subset[static_cast<size_t>(i)],
                      subset[static_cast<size_t>(j)])) {
          mask |= 1u << (j * (j - 1) / 2 + i);
        }
      }
    }
    const int cls = registry.ClassOf(k, CanonicalGraphletCode(k, mask));
    if (cls >= 0) counts[static_cast<size_t>(cls)] += 1.0;
  };
  // Iterate k-subsets.
  std::function<void(size_t, int)> recurse = [&](size_t start, int depth) {
    if (depth == k) {
      record();
      return;
    }
    for (size_t v = start; v < n; ++v) {
      subset[static_cast<size_t>(depth)] = static_cast<uint32_t>(v);
      recurse(v + 1, depth + 1);
    }
  };
  recurse(0, 0);
  return counts;
}

TEST(GraphTest, FromEdgesNormalizes) {
  const Graph g = Graph::FromEdges(4, {{1, 0}, {0, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);  // dedup + self-loop dropped
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(StarExpansionTest, PaperExample) {
  auto h =
      MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
  const Graph g = StarExpansion(h);
  EXPECT_EQ(g.num_nodes(), 8u + 4u);
  EXPECT_EQ(g.num_edges(), h.num_pins());
  // Node L(0) connects to hyperedge-vertices 8, 9, 10 (e1, e2, e3).
  EXPECT_TRUE(g.HasEdge(0, 8));
  EXPECT_TRUE(g.HasEdge(0, 9));
  EXPECT_TRUE(g.HasEdge(0, 10));
  EXPECT_FALSE(g.HasEdge(0, 11));
  // Bipartiteness: no edges inside either side.
  for (uint32_t v = 0; v < 8; ++v) {
    for (uint32_t u : g.neighbors(v)) EXPECT_GE(u, 8u);
  }
}

TEST(GraphletRegistryTest, ClassCountsMatchTheory) {
  const GraphletRegistry& registry = GraphletRegistry::Get();
  EXPECT_EQ(registry.NumClasses(3), 2);   // path, triangle
  EXPECT_EQ(registry.NumClasses(4), 6);
  EXPECT_EQ(registry.NumClasses(5), 21);
}

TEST(GraphletRegistryTest, CodesRoundTrip) {
  const GraphletRegistry& registry = GraphletRegistry::Get();
  for (int k = 3; k <= 5; ++k) {
    for (int c = 0; c < registry.NumClasses(k); ++c) {
      const uint32_t code = registry.CodeOf(k, c);
      EXPECT_EQ(CanonicalGraphletCode(k, code), code);
      EXPECT_EQ(registry.ClassOf(k, code), c);
    }
  }
}

TEST(CanonicalCodeTest, IsomorphicGraphsShareCode) {
  // Path 0-1-2 encoded two ways.
  const uint32_t path_a = (1u << 0) | (1u << 1);  // edges (0,1), (0,2)
  const uint32_t path_b = (1u << 0) | (1u << 2);  // edges (0,1), (1,2)
  EXPECT_EQ(CanonicalGraphletCode(3, path_a), CanonicalGraphletCode(3, path_b));
  const uint32_t triangle = 0b111;
  EXPECT_NE(CanonicalGraphletCode(3, triangle),
            CanonicalGraphletCode(3, path_a));
}

class EsuBruteForceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EsuBruteForceSweep, MatchesBruteForce) {
  const uint64_t seed = GetParam();
  // Small random bipartite-ish graph via a random hypergraph expansion.
  const Hypergraph h = testing::RandomHypergraph(8, 8, 1, 4, seed);
  const Graph g = StarExpansion(h);
  for (int k = 3; k <= 5; ++k) {
    GraphletCensusOptions options;
    options.min_size = k;
    options.max_size = k;
    const GraphletCensus census = CountGraphlets(g, options).value();
    const auto expected = BruteForceCensus(g, k);
    const auto& actual = census.counts[k - 3];
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t c = 0; c < expected.size(); ++c) {
      EXPECT_DOUBLE_EQ(actual[c], expected[c])
          << "k=" << k << " class " << c << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsuBruteForceSweep,
                         ::testing::Range<uint64_t>(0, 6));

TEST(EsuTest, BipartiteGraphHasNoTriangles) {
  const Hypergraph h = testing::RandomHypergraph(15, 15, 1, 4, 9);
  const Graph g = StarExpansion(h);
  GraphletCensusOptions options;
  options.min_size = 3;
  options.max_size = 3;
  const GraphletCensus census = CountGraphlets(g, options).value();
  // Class 1 of size 3 is the triangle (the larger canonical code of the
  // two classes is the denser graph). Identify it via the registry.
  const GraphletRegistry& registry = GraphletRegistry::Get();
  const int triangle_class = registry.ClassOf(3, CanonicalGraphletCode(3, 0b111));
  EXPECT_DOUBLE_EQ(census.counts[0][static_cast<size_t>(triangle_class)], 0.0);
}

TEST(EsuTest, RandEsuIsUnbiased) {
  const Hypergraph h = testing::RandomHypergraph(12, 12, 1, 4, 2);
  const Graph g = StarExpansion(h);
  GraphletCensusOptions exact_options;
  exact_options.min_size = 4;
  exact_options.max_size = 4;
  const auto exact = CountGraphlets(g, exact_options).value().counts[1];

  std::vector<double> mean(exact.size(), 0.0);
  const int kTrials = 150;
  for (int trial = 0; trial < kTrials; ++trial) {
    GraphletCensusOptions options = exact_options;
    options.sample_probability = 0.5;
    options.seed = 100 + trial;
    const auto sampled = CountGraphlets(g, options).value().counts[1];
    for (size_t c = 0; c < mean.size(); ++c) {
      mean[c] += sampled[c] / kTrials;
    }
  }
  double total_exact = 0.0, total_diff = 0.0;
  for (size_t c = 0; c < mean.size(); ++c) {
    total_exact += exact[c];
    total_diff += std::abs(mean[c] - exact[c]);
  }
  ASSERT_GT(total_exact, 0.0);
  EXPECT_LT(total_diff / total_exact, 0.12);
}

TEST(EsuTest, RejectsBadOptions) {
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  GraphletCensusOptions options;
  options.min_size = 2;
  EXPECT_FALSE(CountGraphlets(g, options).ok());
  options.min_size = 4;
  options.max_size = 3;
  EXPECT_FALSE(CountGraphlets(g, options).ok());
  options.min_size = 3;
  options.max_size = 3;
  options.sample_probability = 0.0;
  EXPECT_FALSE(CountGraphlets(g, options).ok());
}

TEST(EsuTest, FlattenConcatenatesSizes) {
  GraphletCensus census;
  census.counts[0] = {1, 2};
  census.counts[1] = {3, 4, 5, 6, 7, 8};
  census.counts[2].assign(21, 0.0);
  EXPECT_EQ(census.Flatten(3, 3), (std::vector<double>{1, 2}));
  EXPECT_EQ(census.Flatten(3, 4).size(), 8u);
  EXPECT_EQ(census.Flatten(3, 5).size(), 29u);
}

TEST(NetworkCpTest, ProducesUnitNormVector) {
  const Hypergraph h = testing::RandomHypergraph(25, 40, 2, 5, 3);
  NetworkCpOptions options;
  options.num_random_graphs = 2;
  options.census.max_size = 4;
  const auto cp = ComputeNetworkMotifCP(h, options).value();
  EXPECT_EQ(cp.size(), 8u);  // 2 + 6 classes
  double norm = 0.0;
  for (double c : cp) norm += c * c;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(NetworkCpTest, DeterministicInSeed) {
  const Hypergraph h = testing::RandomHypergraph(20, 30, 2, 5, 4);
  NetworkCpOptions options;
  options.num_random_graphs = 2;
  options.seed = 10;
  const auto a = ComputeNetworkMotifCP(h, options).value();
  const auto b = ComputeNetworkMotifCP(h, options).value();
  EXPECT_EQ(a, b);
}

TEST(NetworkCpTest, RejectsZeroRandomGraphs) {
  const Hypergraph h = testing::RandomHypergraph(10, 10, 2, 4, 5);
  NetworkCpOptions options;
  options.num_random_graphs = 0;
  EXPECT_FALSE(ComputeNetworkMotifCP(h, options).ok());
}

}  // namespace
}  // namespace mochy
