// Tests for crash-safe streaming (motif/streaming_wal.h): WAL round
// trips, checkpoint-bounded replay, torn-tail truncation, corrupt
// checkpoint fallback, injected append/fsync faults, and the
// kill-recovery oracle — a child process SIGKILLed at an arbitrary
// point mid-stream must recover to counts bit-identical to an
// uninterrupted run of the durable prefix AND to
// reference::CountMotifsExact on the recovered graph, across seeds.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "hypergraph/projection.h"
#include "motif/reference.h"
#include "motif/streaming.h"
#include "motif/streaming_wal.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

// All WAL scratch lives in one ScopedTempDir (tests/test_util.h), so a
// failing test cannot leak /tmp files; the per-call signatures are kept
// so the many call sites read unchanged.
std::string TempWalPath(const std::string& name) {
  // One static fixture, removed at (parent) process exit; the forked
  // kill-recovery children only ever _exit, so they never destroy it.
  static testing::ScopedTempDir dir("mochy_wal");
  return dir.Path(name + ".wal");
}

void RemoveWalFiles(const std::string& path) {
  ::unlink(path.c_str());
  ::unlink((path + ".ckpt").c_str());
  ::unlink((path + ".ckpt.tmp").c_str());
}

void ExpectBitIdentical(const MotifCounts& got, const MotifCounts& want,
                        const std::string& context) {
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(got[t], want[t]) << context << ": motif " << t;
  }
}

MotifCounts OracleCounts(const Hypergraph& graph) {
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  return reference::CountMotifsExact(graph, projection, 1);
}

/// Applies up to `max_records` mutating ops of `schedule` through any
/// engine with AddEdge/RemoveEdge (StreamingEngine or the persistent
/// wrapper). Returns the number applied; `live` tracks the engine ids
/// of live edges in insertion order (the schedule's remove_index
/// contract). Stops early on any failure.
template <typename Engine>
uint64_t ApplySchedulePrefix(Engine& engine,
                             const std::vector<testing::DynamicOp>& schedule,
                             uint64_t max_records,
                             std::vector<EdgeId>* live) {
  uint64_t applied = 0;
  for (const testing::DynamicOp& op : schedule) {
    if (applied >= max_records) break;
    if (op.kind == testing::DynamicOp::Kind::kAdd) {
      auto added = engine.AddEdge(
          std::span<const NodeId>(op.nodes.data(), op.nodes.size()));
      if (!added.ok()) break;
      live->push_back(added.value());
    } else if (op.kind == testing::DynamicOp::Kind::kRemove) {
      if (op.remove_index >= live->size()) break;
      const EdgeId id = (*live)[op.remove_index];
      if (!engine.RemoveEdge(id).ok()) break;
      live->erase(live->begin() + static_cast<ptrdiff_t>(op.remove_index));
    } else {
      continue;  // queries do not mutate and are not logged
    }
    ++applied;
  }
  return applied;
}

std::vector<testing::DynamicOp> TestSchedule(uint64_t seed,
                                             size_t num_ops = 200) {
  return testing::RandomDynamicSchedule(num_ops, /*num_nodes=*/30,
                                        /*max_edge_size=*/5,
                                        /*remove_ratio=*/0.25,
                                        /*query_ratio=*/0.0, seed);
}

TEST(StreamingWalTest, RecoversTheFullStreamAfterACleanClose) {
  const std::string path = TempWalPath("roundtrip");
  RemoveWalFiles(path);
  const auto schedule = TestSchedule(101);

  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 0;  // pure WAL replay
  MotifCounts want;
  uint64_t written = 0;
  {
    auto engine = PersistentStreamingEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    std::vector<EdgeId> live;
    written = ApplySchedulePrefix(*engine.value(), schedule, ~0ull, &live);
    ASSERT_GT(written, 0u);
    want = engine.value()->counts();
  }
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->records(), written);
  EXPECT_EQ(recovered.value()->recovery().replayed_records, written);
  EXPECT_EQ(recovered.value()->recovery().truncated_bytes, 0u);
  ExpectBitIdentical(recovered.value()->counts(), want, "recovered");
  const Hypergraph snapshot =
      recovered.value()->engine().graph().Snapshot().value();
  ExpectBitIdentical(recovered.value()->counts(), OracleCounts(snapshot),
                     "oracle recount");

  // The recovered engine keeps streaming: one more arrival lands
  // bit-identically to the uninterrupted engine fed the same stream.
  ASSERT_TRUE(recovered.value()->AddEdge({1, 2, 3}).ok());
  StreamingEngine uninterrupted;
  std::vector<EdgeId> live;
  ApplySchedulePrefix(uninterrupted, schedule, ~0ull, &live);
  ASSERT_TRUE(uninterrupted.AddEdge({1, 2, 3}).ok());
  ExpectBitIdentical(recovered.value()->counts(), uninterrupted.counts(),
                     "post-recovery arrival");
  RemoveWalFiles(path);
}

TEST(StreamingWalTest, CheckpointBoundsTailReplay) {
  const std::string path = TempWalPath("checkpoint");
  RemoveWalFiles(path);
  const auto schedule = TestSchedule(102);

  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 16;
  MotifCounts want;
  uint64_t written = 0;
  {
    auto engine = PersistentStreamingEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    std::vector<EdgeId> live;
    written = ApplySchedulePrefix(*engine.value(), schedule, ~0ull, &live);
    want = engine.value()->counts();
  }
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Auto-checkpoints ran, so recovery restored one and replayed less
  // than the full log.
  EXPECT_GT(recovered.value()->recovery().checkpoint_records, 0u);
  EXPECT_LT(recovered.value()->recovery().replayed_records, written);
  EXPECT_EQ(recovered.value()->records(), written);
  ExpectBitIdentical(recovered.value()->counts(), want, "ckpt recovery");
  const Hypergraph snapshot =
      recovered.value()->engine().graph().Snapshot().value();
  ExpectBitIdentical(recovered.value()->counts(), OracleCounts(snapshot),
                     "ckpt oracle recount");
  RemoveWalFiles(path);
}

TEST(StreamingWalTest, TornTailIsTruncatedNotFatal) {
  const std::string path = TempWalPath("torn");
  RemoveWalFiles(path);
  const auto schedule = TestSchedule(103, 60);

  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 0;
  MotifCounts want;
  uint64_t written = 0;
  {
    auto engine = PersistentStreamingEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    std::vector<EdgeId> live;
    written = ApplySchedulePrefix(*engine.value(), schedule, ~0ull, &live);
    want = engine.value()->counts();
  }
  // Crash mid-append: half a record header lands at the tail.
  {
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    const char torn[5] = {42, 0, 0, 0, 7};
    ASSERT_EQ(::write(fd, torn, sizeof(torn)), 5);
    ::close(fd);
  }
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery().truncated_bytes, 5u);
  EXPECT_EQ(recovered.value()->records(), written);
  ExpectBitIdentical(recovered.value()->counts(), want, "torn tail");
  // Appending after the truncation produces a clean log again.
  ASSERT_TRUE(recovered.value()->AddEdge({4, 5}).ok());
  RemoveWalFiles(path);
}

TEST(StreamingWalTest, CorruptCheckpointFallsBackToFullReplay) {
  const std::string path = TempWalPath("badckpt");
  RemoveWalFiles(path);
  const auto schedule = TestSchedule(104, 80);

  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 10;
  MotifCounts want;
  uint64_t written = 0;
  {
    auto engine = PersistentStreamingEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    std::vector<EdgeId> live;
    written = ApplySchedulePrefix(*engine.value(), schedule, ~0ull, &live);
    want = engine.value()->counts();
  }
  // Flip a byte in the middle of the checkpoint: its checksum fails and
  // recovery must fall back to replaying the whole WAL.
  {
    const std::string ckpt = path + ".ckpt";
    const int fd = ::open(ckpt.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    char byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, 40), 1);
    byte = static_cast<char>(byte ^ 0x5a);
    ASSERT_EQ(::pwrite(fd, &byte, 1, 40), 1);
    ::close(fd);
  }
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery().checkpoint_records, 0u);
  EXPECT_EQ(recovered.value()->recovery().replayed_records, written);
  ExpectBitIdentical(recovered.value()->counts(), want, "ckpt fallback");
  RemoveWalFiles(path);
}

TEST(StreamingWalTest, InjectedLogFaultsRejectTheUpdateWithoutApplyingIt) {
  const std::string path = TempWalPath("faults");
  RemoveWalFiles(path);
  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 0;
  auto engine = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->AddEdge({1, 2, 3}).ok());
  const MotifCounts before = engine.value()->counts();

  // fsync failure: the record is not durable, so the update must not
  // apply — counts and record count stay put.
  FaultPlan plan;
  plan.rules.push_back({"wal.fsync", /*nth=*/1, /*every=*/0, FaultError(5)});
  FaultInjector::Global().Arm(plan);
  auto failed = engine.value()->AddEdge({2, 3, 4});
  FaultInjector::Global().Disarm();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  ExpectBitIdentical(engine.value()->counts(), before, "after fsync fault");
  EXPECT_EQ(engine.value()->records(), 1u);

  // Torn append: same contract, and the half-written bytes must be
  // scrubbed so the log stays clean for the next append.
  FaultPlan torn;
  torn.rules.push_back({"wal.append", /*nth=*/1, /*every=*/0,
                        FaultShortIo(3)});
  FaultInjector::Global().Arm(torn);
  auto torn_result = engine.value()->AddEdge({3, 4, 5});
  FaultInjector::Global().Disarm();
  ASSERT_FALSE(torn_result.ok());
  EXPECT_EQ(engine.value()->records(), 1u);

  // The engine recovers in-line: the next update goes through, and a
  // reopen sees exactly the two durable records.
  ASSERT_TRUE(engine.value()->AddEdge({4, 5, 6}).ok());
  const MotifCounts want = engine.value()->counts();
  engine.value().reset();
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->records(), 2u);
  EXPECT_EQ(recovered.value()->recovery().truncated_bytes, 0u);
  ExpectBitIdentical(recovered.value()->counts(), want, "after faults");
  RemoveWalFiles(path);
}

TEST(StreamingWalTest, InjectedCheckpointFaultsLeaveThePreviousCheckpoint) {
  const std::string path = TempWalPath("ckptfault");
  RemoveWalFiles(path);
  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 0;
  auto engine = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->AddEdge({1, 2, 3}).ok());
  ASSERT_TRUE(engine.value()->Checkpoint().ok());
  ASSERT_TRUE(engine.value()->AddEdge({2, 3, 4}).ok());

  for (const char* point : {"wal.checkpoint.write", "wal.checkpoint.rename"}) {
    FaultPlan plan;
    plan.rules.push_back({point, /*nth=*/1, /*every=*/0, FaultError(5)});
    FaultInjector::Global().Arm(plan);
    const Status failed = engine.value()->Checkpoint();
    FaultInjector::Global().Disarm();
    EXPECT_EQ(failed.code(), StatusCode::kIOError) << point;
  }
  const MotifCounts want = engine.value()->counts();
  engine.value().reset();
  // The surviving checkpoint is the first one (1 record); the tail
  // replays the second arrival on top of it.
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery().checkpoint_records, 1u);
  EXPECT_EQ(recovered.value()->recovery().replayed_records, 1u);
  ExpectBitIdentical(recovered.value()->counts(), want, "ckpt fault");
  RemoveWalFiles(path);
}

// ------------------------------------------------- kill-recovery --

/// The acceptance oracle: a child streams a seeded schedule through a
/// synced WAL and is SIGKILLed at an arbitrary point; recovery must
/// yield counts bit-identical to (a) an uninterrupted StreamingEngine
/// fed the same durable prefix and (b) reference::CountMotifsExact on
/// the recovered graph.
void RunKillRecoveryTrial(uint64_t seed) {
  const std::string path =
      TempWalPath("kill_" + std::to_string(seed));
  RemoveWalFiles(path);
  const auto schedule = TestSchedule(seed, 400);

  int ack_pipe[2];
  ASSERT_EQ(::pipe(ack_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: stream the schedule, acking each durable update with one
    // byte. No gtest machinery in here — _exit only.
    ::close(ack_pipe[0]);
    WalOptions options;
    options.path = path;
    options.checkpoint_interval = 16;
    options.sync_every_record = true;
    auto engine = PersistentStreamingEngine::Open(options);
    if (!engine.ok()) _exit(2);
    std::vector<EdgeId> live;
    for (const testing::DynamicOp& op : schedule) {
      bool ok = true;
      if (op.kind == testing::DynamicOp::Kind::kAdd) {
        auto added = engine.value()->AddEdge(
            std::span<const NodeId>(op.nodes.data(), op.nodes.size()));
        ok = added.ok();
        if (ok) live.push_back(added.value());
      } else if (op.kind == testing::DynamicOp::Kind::kRemove) {
        if (op.remove_index >= live.size()) _exit(3);
        const EdgeId id = live[op.remove_index];
        ok = engine.value()->RemoveEdge(id).ok();
        if (ok) live.erase(live.begin() +
                           static_cast<ptrdiff_t>(op.remove_index));
      } else {
        continue;
      }
      if (!ok) _exit(4);
      const char ack = 1;
      if (::write(ack_pipe[1], &ack, 1) != 1) _exit(5);
    }
    _exit(0);
  }

  // Parent: pick a seeded kill point, count acks up to it, then kill.
  ::close(ack_pipe[1]);
  Rng rng(seed ^ 0xdeadbeef);
  const uint64_t kill_after = 1 + rng.UniformInt(300);
  uint64_t acked = 0;
  char byte = 0;
  while (acked < kill_after) {
    const ssize_t n = ::read(ack_pipe[0], &byte, 1);
    if (n <= 0) break;  // child finished (or died) before the kill point
    ++acked;
  }
  ::kill(child, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  // Drain any acks that raced the kill: they are durable too.
  while (::read(ack_pipe[0], &byte, 1) > 0) ++acked;
  ::close(ack_pipe[0]);

  WalOptions options;
  options.path = path;
  options.checkpoint_interval = 16;
  auto recovered = PersistentStreamingEngine::Open(options);
  ASSERT_TRUE(recovered.ok())
      << "seed " << seed << ": " << recovered.status().ToString();
  const uint64_t durable = recovered.value()->records();
  // Every acked update was fsync'd before the ack, so recovery has at
  // least those; it may have more (the record that was mid-ack).
  EXPECT_GE(durable, acked) << "seed " << seed;
  EXPECT_LE(durable, acked + 1) << "seed " << seed;

  // Oracle (a): the uninterrupted run over the durable prefix.
  StreamingEngine uninterrupted;
  std::vector<EdgeId> live;
  ASSERT_EQ(ApplySchedulePrefix(uninterrupted, schedule, durable, &live),
            durable)
      << "seed " << seed;
  ExpectBitIdentical(recovered.value()->counts(), uninterrupted.counts(),
                     "seed " + std::to_string(seed) + " vs uninterrupted");

  // Oracle (b): a reference recount of the recovered graph.
  const Hypergraph snapshot =
      recovered.value()->engine().graph().Snapshot().value();
  ExpectBitIdentical(recovered.value()->counts(), OracleCounts(snapshot),
                     "seed " + std::to_string(seed) + " vs reference");
  RemoveWalFiles(path);
}

TEST(KillRecoveryTest, RecoversBitIdenticalAfterSigkillSeed31) {
  RunKillRecoveryTrial(31);
}
TEST(KillRecoveryTest, RecoversBitIdenticalAfterSigkillSeed32) {
  RunKillRecoveryTrial(32);
}
TEST(KillRecoveryTest, RecoversBitIdenticalAfterSigkillSeed33) {
  RunKillRecoveryTrial(33);
}

}  // namespace
}  // namespace mochy
