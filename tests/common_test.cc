// Tests for the common runtime layer: Status/Result, RNG, alias table,
// flat map, thread pool, ParallelFor, hashing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "common/alias_table.h"
#include "common/flat_map.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace mochy {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kOutOfRange,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MOCHY_ASSIGN_OR_RETURN(int h, Half(x));
  MOCHY_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  // Bound 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(11);
  const int kBuckets = 10, kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.UniformInt(kBuckets)];
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(9);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0.0;
    const int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(13);
  const double p = 0.25;
  double sum = 0.0;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Geometric(p);
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.1);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(17);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 50000; ++i) ++histogram[rng.Zipf(10, 1.2)];
  EXPECT_GT(histogram[0], histogram[1]);
  EXPECT_GT(histogram[1], histogram[4]);
  EXPECT_GT(histogram[4], 0);
}

TEST(RngTest, ZipfAlphaZeroIsUniform) {
  Rng rng(19);
  std::vector<int> histogram(5, 0);
  for (int i = 0; i < 50000; ++i) ++histogram[rng.Zipf(5, 0.0)];
  for (int count : histogram) EXPECT_NEAR(count, 10000, 500);
}

TEST(RngTest, SampleDistinctProducesDistinct) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleDistinct(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    const std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (uint64_t v : sample) EXPECT_LT(v, 20u);
  }
  // Full range: a permutation of 0..n-1.
  const auto all = rng.SampleDistinct(6, 6);
  EXPECT_EQ(std::set<uint64_t>(all.begin(), all.end()).size(), 6u);
}

TEST(RngTest, ForkStreamsAreIndependentAndStable) {
  const Rng base(42);
  Rng f0 = base.Fork(0);
  Rng f1 = base.Fork(1);
  Rng f0_again = base.Fork(0);
  EXPECT_EQ(f0(), f0_again());
  EXPECT_NE(f0(), f1());
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(4);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(AliasTableTest, RejectsBadInput) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, -0.5}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
}

TEST(AliasTableTest, MatchesDistribution) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 0.0, 4.0};
  const AliasTable table = AliasTable::Build(weights).value();
  EXPECT_EQ(table.size(), 5u);
  EXPECT_DOUBLE_EQ(table.total_weight(), 10.0);
  Rng rng(33);
  std::vector<int> histogram(5, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++histogram[table.Sample(rng)];
  EXPECT_EQ(histogram[3], 0);
  for (int i : {0, 1, 2, 4}) {
    EXPECT_NEAR(histogram[i], kDraws * weights[i] / 10.0,
                kDraws * 0.01)
        << "category " << i;
  }
}

TEST(AliasTableTest, SingleCategory) {
  const AliasTable table = AliasTable::Build({5.0}).value();
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(FlatMapTest, PutGetContains) {
  FlatMap64<uint32_t> map;
  EXPECT_TRUE(map.empty());
  map.Put(10, 1);
  map.Put(20, 2);
  map.Put(10, 3);  // overwrite
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.GetOr(10, 0), 3u);
  EXPECT_EQ(map.GetOr(20, 0), 2u);
  EXPECT_EQ(map.GetOr(30, 99), 99u);
  EXPECT_TRUE(map.Contains(20));
  EXPECT_FALSE(map.Contains(30));
}

TEST(FlatMapTest, AddAccumulates) {
  FlatMap64<uint64_t> map;
  for (int i = 0; i < 10; ++i) map.Add(7, 2);
  EXPECT_EQ(map.GetOr(7, 0), 20u);
}

TEST(FlatMapTest, GrowsPastInitialCapacity) {
  FlatMap64<uint32_t> map;
  const int kEntries = 10000;
  for (int i = 0; i < kEntries; ++i) {
    map.Put(static_cast<uint64_t>(i) * 2654435761u, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(kEntries));
  for (int i = 0; i < kEntries; ++i) {
    EXPECT_EQ(map.GetOr(static_cast<uint64_t>(i) * 2654435761u, ~0u),
              static_cast<uint32_t>(i));
  }
}

TEST(FlatMapTest, ForEachVisitsAllEntries) {
  FlatMap64<uint32_t> map;
  for (uint64_t i = 1; i <= 100; ++i) map.Put(i, static_cast<uint32_t>(i));
  uint64_t key_sum = 0, value_sum = 0;
  map.ForEach([&](uint64_t k, uint32_t v) {
    key_sum += k;
    value_sum += v;
  });
  EXPECT_EQ(key_sum, 5050u);
  EXPECT_EQ(value_sum, 5050u);
}

TEST(FlatMapTest, ClearResets) {
  FlatMap64<uint32_t> map;
  map.Put(1, 1);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(1));
}

TEST(HashTest, PackPairIsOrderInsensitive) {
  EXPECT_EQ(PackPair(3, 9), PackPair(9, 3));
  EXPECT_NE(PackPair(3, 9), PackPair(3, 10));
  EXPECT_EQ(PairFirst(PackPair(9, 3)), 3u);
  EXPECT_EQ(PairSecond(PackPair(9, 3)), 9u);
}

TEST(HashTest, HashIdSpanDiscriminates) {
  const uint32_t a[] = {1, 2, 3};
  const uint32_t b[] = {1, 2, 4};
  const uint32_t c[] = {1, 2};
  EXPECT_NE(HashIdSpan(a, 3), HashIdSpan(b, 3));
  EXPECT_NE(HashIdSpan(a, 3), HashIdSpan(c, 2));
  EXPECT_EQ(HashIdSpan(a, 3), HashIdSpan(a, 3));
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelTest, BlocksCoverRangeExactly) {
  for (size_t n : {0u, 1u, 7u, 100u}) {
    for (size_t threads : {1u, 2u, 3u, 8u}) {
      std::vector<std::atomic<int>> hits(n == 0 ? 1 : n);
      for (auto& h : hits) h = 0;
      ParallelBlocks(n, threads, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelTest, ForVisitsEachIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(n, 4, [&](size_t i) { hits[i].fetch_add(1); }, 16);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelTest, SingleThreadRunsInline) {
  size_t sum = 0;  // no synchronization: must run on the calling thread
  ParallelFor(100, 1, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

}  // namespace
}  // namespace mochy
