#include "motif/pattern.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "tests/test_util.h"

namespace mochy {
namespace {

TEST(PatternTest, ExactlyTwentySixCanonicalClasses) {
  std::set<PatternBits> classes;
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    if (IsValidPattern(bits)) classes.insert(CanonicalPattern(bits));
  }
  EXPECT_EQ(classes.size(), 26u);
}

TEST(PatternTest, GroupStructureMatchesPaper) {
  // ids 1-16: t=1 (closed); 17-22: open; 23-26: t=0 closed.
  for (int id = 1; id <= 16; ++id) {
    EXPECT_TRUE(MotifPattern(id) & kPatternT) << "id " << id;
    EXPECT_FALSE(IsOpenMotif(id)) << "id " << id;
  }
  for (int id = 17; id <= 22; ++id) {
    EXPECT_FALSE(MotifPattern(id) & kPatternT) << "id " << id;
    EXPECT_TRUE(IsOpenMotif(id)) << "id " << id;
  }
  for (int id = 23; id <= 26; ++id) {
    const PatternBits bits = MotifPattern(id);
    EXPECT_FALSE(bits & kPatternT) << "id " << id;
    EXPECT_FALSE(IsOpenMotif(id)) << "id " << id;
    // all pairwise overlaps present
    EXPECT_TRUE(bits & kPatternPab) << "id " << id;
    EXPECT_TRUE(bits & kPatternPbc) << "id " << id;
    EXPECT_TRUE(bits & kPatternPca) << "id " << id;
  }
}

TEST(PatternTest, Motif16IsAllRegionsNonEmpty) {
  EXPECT_EQ(MotifPattern(16), static_cast<PatternBits>(0x7f));
}

TEST(PatternTest, Motifs17And18AreDisjointSubsetPatterns) {
  // 17: a = b ∪ c with disjoint subsets b, c (no private regions at all).
  // 18: same but a also has private nodes.
  for (int id : {17, 18}) {
    const PatternBits bits = MotifPattern(id);
    // Open: exactly one pairwise region empty, t empty.
    const int p_count = std::popcount(static_cast<unsigned>(bits & 0x38));
    EXPECT_EQ(p_count, 2) << "id " << id;
    // The two leaves have no private region.
    // Count private regions overall: 0 for 17, 1 for 18.
    const int d_count = std::popcount(static_cast<unsigned>(bits & 0x07));
    EXPECT_EQ(d_count, id == 17 ? 0 : 1) << "id " << id;
  }
}

TEST(PatternTest, Motif22IsGenericOpen) {
  const PatternBits bits = MotifPattern(22);
  EXPECT_EQ(std::popcount(static_cast<unsigned>(bits & 0x07)), 3);
  EXPECT_EQ(std::popcount(static_cast<unsigned>(bits & 0x38)), 2);
}

TEST(PatternTest, TriangleGroupOrderedByPrivateRegions) {
  for (int id = 23; id <= 26; ++id) {
    const int d_count =
        std::popcount(static_cast<unsigned>(MotifPattern(id) & 0x07));
    EXPECT_EQ(d_count, id - 23) << "id " << id;
  }
}

TEST(PatternTest, CanonicalIsPermutationInvariant) {
  constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    const PatternBits canon = CanonicalPattern(bits);
    for (const auto& perm : kPerms) {
      EXPECT_EQ(CanonicalPattern(PermutePattern(bits, perm)), canon)
          << "raw " << raw;
    }
  }
}

TEST(PatternTest, PermutationIsGroupAction) {
  // Applying a permutation then its inverse restores the pattern.
  constexpr int kPerm[3] = {1, 2, 0};     // roles (a,b,c) <- edges (b,c,a)
  constexpr int kInverse[3] = {2, 0, 1};  // undoes kPerm
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    EXPECT_EQ(PermutePattern(PermutePattern(bits, kPerm), kInverse), bits);
  }
}

TEST(PatternTest, ValidityIsPermutationInvariant) {
  constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    for (const auto& perm : kPerms) {
      EXPECT_EQ(IsValidPattern(PermutePattern(bits, perm)),
                IsValidPattern(bits))
          << "raw " << raw;
    }
  }
}

TEST(PatternTest, MotifIdAgreesAcrossPermutations) {
  constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int raw = 0; raw < 128; ++raw) {
    const PatternBits bits = static_cast<PatternBits>(raw);
    if (!IsValidPattern(bits)) {
      EXPECT_EQ(MotifIdFromPattern(bits), 0);
      continue;
    }
    const int id = MotifIdFromPattern(bits);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, kNumHMotifs);
    for (const auto& perm : kPerms) {
      EXPECT_EQ(MotifIdFromPattern(PermutePattern(bits, perm)), id);
    }
  }
}

TEST(PatternTest, RepresentativesAreCanonicalAndDistinct) {
  std::set<PatternBits> seen;
  for (int id = 1; id <= kNumHMotifs; ++id) {
    const PatternBits bits = MotifPattern(id);
    EXPECT_TRUE(IsValidPattern(bits)) << "id " << id;
    EXPECT_EQ(CanonicalPattern(bits), bits) << "id " << id;
    EXPECT_TRUE(seen.insert(bits).second) << "duplicate rep for id " << id;
    EXPECT_EQ(MotifIdFromPattern(bits), id);
  }
}

TEST(PatternTest, DuplicateEdgePatternsAreInvalid) {
  // a == b == c == {x}: only t non-empty.
  EXPECT_FALSE(IsValidPattern(kPatternT));
  // a == b ⊃ c: t plus p_ab.
  EXPECT_FALSE(IsValidPattern(kPatternT | kPatternPab));
  // a == b, c with private nodes.
  EXPECT_FALSE(IsValidPattern(kPatternT | kPatternDc));
  EXPECT_FALSE(IsValidPattern(kPatternT | kPatternPab | kPatternDc));
}

TEST(PatternTest, DisconnectedPatternsAreInvalid) {
  // Three pairwise-disjoint edges: only private regions.
  EXPECT_FALSE(IsValidPattern(kPatternDa | kPatternDb | kPatternDc));
  // One isolated edge: c disjoint from both a and b.
  EXPECT_FALSE(
      IsValidPattern(kPatternDa | kPatternDb | kPatternDc | kPatternPab));
}

TEST(PatternTest, EmptyEdgePatternsAreInvalid) {
  // c empty: no region containing c is non-empty.
  EXPECT_FALSE(IsValidPattern(kPatternDa | kPatternDb | kPatternPab));
}

TEST(PatternTest, ClassifyMotifOnKnownTriples) {
  // a={1,2}, b={2,3}, c={3,4}: open chain, hub b; a,c disjoint.
  // Regions: d_a=1 (node1), d_b=0? b={2,3}: 2 in a∩b, 3 in b∩c -> d_b=0.
  // d_c=1 (4), p_ab=1 (2), p_bc=1 (3), p_ca=0, t=0.
  const int chain = ClassifyMotif(2, 2, 2, /*w_ab=*/1, /*w_bc=*/1,
                                  /*w_ca=*/0, /*w_abc=*/0);
  EXPECT_TRUE(IsOpenMotif(chain));
  // Hub (b) has no private region, both leaves have one -> key (2, 0) = 21.
  EXPECT_EQ(chain, 21);

  // Three edges sharing exactly one node, each with a private node:
  // the "star" d=(1,1,1), p=(0,0,0), t=1.
  const int star = ClassifyMotif(2, 2, 2, 1, 1, 1, 1);
  EXPECT_FALSE(IsOpenMotif(star));
  EXPECT_TRUE(MotifPattern(star) & kPatternT);

  // Full pattern: all seven regions non-empty -> motif 16.
  const int full = ClassifyMotif(4, 4, 4, 2, 2, 2, 1);
  EXPECT_EQ(full, 16);

  // Triangle without core: pairwise overlaps but empty common core,
  // all private regions non-empty -> motif 26.
  const int triangle = ClassifyMotif(3, 3, 3, 1, 1, 1, 0);
  EXPECT_EQ(triangle, 26);

  // b and c disjoint subsets of a with a = b ∪ c -> motif 17.
  // a={1,2,3,4}, b={1,2}, c={3,4}.
  const int exact_cover = ClassifyMotif(4, 2, 2, 2, 0, 2, 0);
  EXPECT_EQ(exact_cover, 17);

  // Same but a has a private node -> motif 18. a={1,2,3,4,5}.
  const int cover_plus = ClassifyMotif(5, 2, 2, 2, 0, 2, 0);
  EXPECT_EQ(cover_plus, 18);
}

TEST(PatternTest, ClassifyMotifOrZeroRejectsInvalid) {
  // Duplicate edges: a == b == {1}, c = {1}.
  EXPECT_EQ(ClassifyMotifOrZero(1, 1, 1, 1, 1, 1, 1), 0);
  // Inconsistent: triple intersection bigger than a pairwise one.
  EXPECT_EQ(ClassifyMotifOrZero(3, 3, 3, 1, 1, 1, 2), 0);
  // Disconnected: c shares nothing with a or b.
  EXPECT_EQ(ClassifyMotifOrZero(2, 2, 2, 1, 0, 0, 0), 0);
  // Inconsistent sizes (|a| smaller than its overlap regions).
  EXPECT_EQ(ClassifyMotifOrZero(1, 3, 3, 2, 1, 2, 1), 0);
}

TEST(PatternTest, BruteForceClassifierAgreesWithCardinalities) {
  // Cross-check the arithmetic classifier against direct set algebra on
  // randomized triples of sets.
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    std::set<NodeId> sets[3];
    for (auto& s : sets) {
      const int size = 1 + static_cast<int>(rng.UniformInt(5));
      for (int i = 0; i < size; ++i) {
        s.insert(static_cast<NodeId>(rng.UniformInt(8)));
      }
    }
    const auto regions = testing::ComputeRegions(sets[0], sets[1], sets[2]);
    const uint64_t w_ab = regions.p[0] + regions.t;
    const uint64_t w_bc = regions.p[1] + regions.t;
    const uint64_t w_ca = regions.p[2] + regions.t;
    const uint64_t size_a = regions.d[0] + regions.p[0] + regions.p[2] + regions.t;
    const uint64_t size_b = regions.d[1] + regions.p[0] + regions.p[1] + regions.t;
    const uint64_t size_c = regions.d[2] + regions.p[1] + regions.p[2] + regions.t;
    const int direct = testing::BruteForceClassify(sets[0], sets[1], sets[2]);
    const int arithmetic = ClassifyMotifOrZero(size_a, size_b, size_c, w_ab,
                                               w_bc, w_ca, regions.t);
    EXPECT_EQ(direct, arithmetic) << "trial " << trial;
  }
}

TEST(PatternTest, MotifToStringFormats) {
  EXPECT_EQ(MotifToString(16), "d=111 p=111 t=1 (closed)");
  EXPECT_NE(MotifToString(22).find("(open)"), std::string::npos);
}

class AllMotifIds : public ::testing::TestWithParam<int> {};

TEST_P(AllMotifIds, RoundTripsThroughPatternAndBack) {
  const int id = GetParam();
  EXPECT_EQ(MotifIdFromPattern(MotifPattern(id)), id);
}

TEST_P(AllMotifIds, OpenIffSomePairDisjoint) {
  const int id = GetParam();
  const PatternBits bits = MotifPattern(id);
  const bool t = bits & kPatternT;
  const bool ab = (bits & kPatternPab) || t;
  const bool bc = (bits & kPatternPbc) || t;
  const bool ca = (bits & kPatternPca) || t;
  const bool some_disjoint = !(ab && bc && ca);
  EXPECT_EQ(IsOpenMotif(id), some_disjoint);
}

INSTANTIATE_TEST_SUITE_P(All, AllMotifIds, ::testing::Range(1, 27));

}  // namespace
}  // namespace mochy
