#include "random/chung_lu.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hypergraph/builder.h"
#include "hypergraph/stats.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

TEST(ChungLuTest, PreservesEdgeSizesExactly) {
  const Hypergraph g = testing::RandomHypergraph(50, 80, 1, 8, 1);
  const Hypergraph random = GenerateChungLu(g).value();
  ASSERT_EQ(random.num_edges(), g.num_edges());
  std::vector<size_t> original_sizes, random_sizes;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    original_sizes.push_back(g.edge_size(e));
    random_sizes.push_back(random.edge_size(e));
  }
  EXPECT_EQ(original_sizes, random_sizes);
}

TEST(ChungLuTest, PreservesNodeCountAndPins) {
  const Hypergraph g = testing::RandomHypergraph(40, 60, 2, 6, 2);
  const Hypergraph random = GenerateChungLu(g).value();
  EXPECT_EQ(random.num_nodes(), g.num_nodes());
  EXPECT_EQ(random.num_pins(), g.num_pins());
}

TEST(ChungLuTest, DeterministicForSeed) {
  const Hypergraph g = testing::RandomHypergraph(30, 40, 1, 5, 3);
  ChungLuOptions options;
  options.seed = 55;
  const Hypergraph a = GenerateChungLu(g, options).value();
  const Hypergraph b = GenerateChungLu(g, options).value();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto ea = a.edge(e);
    const auto eb = b.edge(e);
    ASSERT_EQ(ea.size(), eb.size());
    EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin()));
  }
  options.seed = 56;
  const Hypergraph c = GenerateChungLu(g, options).value();
  bool any_different = false;
  for (EdgeId e = 0; e < a.num_edges() && !any_different; ++e) {
    const auto ea = a.edge(e);
    const auto ec = c.edge(e);
    any_different = ea.size() != ec.size() ||
                    !std::equal(ea.begin(), ea.end(), ec.begin());
  }
  EXPECT_TRUE(any_different) << "different seeds should differ";
}

TEST(ChungLuTest, DegreesPreservedInExpectation) {
  // Average node degrees over many samples; they should approach the
  // original degrees (Chung-Lu preserves degree in expectation).
  const Hypergraph g = testing::RandomHypergraph(25, 60, 2, 6, 4);
  const int kSamples = 60;
  std::vector<double> mean_degree(g.num_nodes(), 0.0);
  for (int s = 0; s < kSamples; ++s) {
    ChungLuOptions options;
    options.seed = 100 + s;
    const Hypergraph random = GenerateChungLu(g, options).value();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      mean_degree[v] += static_cast<double>(random.degree(v)) / kSamples;
    }
  }
  // Compare in aggregate: correlation between original and mean sampled
  // degree should be strongly positive, and totals must match.
  double total_original = 0.0, total_sampled = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    total_original += g.degree(v);
    total_sampled += mean_degree[v];
  }
  EXPECT_NEAR(total_sampled, total_original, total_original * 0.01);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 8) {
      EXPECT_GT(mean_degree[v], 0.4 * g.degree(v)) << "node " << v;
    }
    if (g.degree(v) == 0) {
      EXPECT_DOUBLE_EQ(mean_degree[v], 0.0) << "node " << v;
    }
  }
}

TEST(ChungLuTest, FailsOnEmptyHypergraph) {
  const Hypergraph g;
  EXPECT_FALSE(GenerateChungLu(g).ok());
}

TEST(ChungLuTest, HandlesEdgeSpanningAllNodes) {
  auto g = MakeHypergraph({{0, 1, 2, 3}, {0, 1}, {2, 3}}).value();
  const Hypergraph random = GenerateChungLu(g).value();
  EXPECT_EQ(random.edge_size(0), 4u);
}

TEST(ChungLuTest, DedupOptionRemovesDuplicates) {
  // Tiny graph where collisions are certain across many edges.
  std::vector<std::vector<NodeId>> edges(30, {0, 1});
  BuildOptions keep;
  keep.dedup_edges = false;
  auto g = MakeHypergraph(edges, keep).value();
  ChungLuOptions options;
  options.dedup_edges = true;
  const Hypergraph random = GenerateChungLu(g, options).value();
  EXPECT_LT(random.num_edges(), 30u);
}

}  // namespace
}  // namespace mochy
