// Tests for the hyperedge-prediction feature pipeline (HM26 / HM7 / HC).
#include "ml/features.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/generators.h"
#include "gen/perturb.h"
#include "hypergraph/builder.h"
#include "hypergraph/projection.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "motif/per_edge.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

struct TaskFixture {
  Hypergraph history;
  std::vector<std::vector<NodeId>> candidates;
};

TaskFixture MakeFixture(uint64_t seed) {
  TaskFixture f;
  GeneratorConfig config = DefaultConfig(Domain::kCoauthorship, 0.12);
  config.seed = seed;
  f.history = GenerateDomainHypergraph(config).value();
  // Candidates: additional edges from the same generator (a later period).
  config.seed = seed + 999;
  const Hypergraph future = GenerateDomainHypergraph(config).value();
  for (EdgeId e = 0; e < std::min<size_t>(60, future.num_edges()); ++e) {
    const auto span = future.edge(e);
    if (span.size() < 2) continue;
    f.candidates.emplace_back(span.begin(), span.end());
  }
  return f;
}

TEST(FeaturesTest, HandcraftedFeatureShape) {
  auto g = MakeHypergraph({{0, 1, 2}, {1, 2, 3}, {4, 5}}).value();
  const auto rows = ComputeHandcraftedFeatures(g);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 7u);
  // Edge 2 = {4,5}: both nodes have degree 1 and one neighbor; size 2.
  EXPECT_DOUBLE_EQ(rows[2][0], 1.0);  // mean degree
  EXPECT_DOUBLE_EQ(rows[2][1], 1.0);  // max degree
  EXPECT_DOUBLE_EQ(rows[2][2], 1.0);  // min degree
  EXPECT_DOUBLE_EQ(rows[2][3], 1.0);  // mean neighbors
  EXPECT_DOUBLE_EQ(rows[2][6], 2.0);  // size
  // Node 1 and 2 have degree 2; node 0 degree 1.
  EXPECT_DOUBLE_EQ(rows[0][1], 2.0);
  EXPECT_DOUBLE_EQ(rows[0][2], 1.0);
  // Node 1's neighbors: {0, 2, 3} -> 3.
  EXPECT_DOUBLE_EQ(rows[0][4], 3.0);
}

TEST(FeaturesTest, TaskShapeAndLabels) {
  const TaskFixture f = MakeFixture(1);
  const PredictionTask task =
      BuildHyperedgePredictionTask(f.history, f.candidates).value();
  const size_t n = f.candidates.size();
  ASSERT_EQ(task.hm26.size(), 2 * n);
  ASSERT_EQ(task.hm7.size(), 2 * n);
  ASSERT_EQ(task.hc.size(), 2 * n);
  EXPECT_EQ(task.hm26.num_features(), 26u);
  EXPECT_EQ(task.hm7.num_features(), 7u);
  EXPECT_EQ(task.hc.num_features(), 7u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(task.hm26.labels[i], 1);
    EXPECT_EQ(task.hm26.labels[n + i], 0);
  }
  EXPECT_TRUE(task.hm26.Validate().ok());
  EXPECT_TRUE(task.hm7.Validate().ok());
  EXPECT_TRUE(task.hc.Validate().ok());
}

TEST(FeaturesTest, Hm7SelectsDistinctHighVarianceFeatures) {
  const TaskFixture f = MakeFixture(2);
  const PredictionTask task =
      BuildHyperedgePredictionTask(f.history, f.candidates).value();
  std::set<int> indices(task.hm7_feature_indices.begin(),
                        task.hm7_feature_indices.end());
  EXPECT_EQ(indices.size(), 7u);
  for (int idx : indices) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, kNumHMotifs);
  }
  // HM7 columns must be copies of the chosen HM26 columns.
  for (size_t row = 0; row < task.hm7.size(); ++row) {
    for (int f7 = 0; f7 < 7; ++f7) {
      EXPECT_DOUBLE_EQ(
          task.hm7.features[row][static_cast<size_t>(f7)],
          task.hm26.features[row][static_cast<size_t>(
              task.hm7_feature_indices[static_cast<size_t>(f7)])]);
    }
  }
}

TEST(FeaturesTest, MotifFeaturesSeparateRealFromFake) {
  // The paper's core claim for Table 4: HM features are informative.
  // A logistic model on HM26 should beat chance clearly.
  const TaskFixture f = MakeFixture(3);
  PredictionTaskOptions options;
  options.seed = 5;
  const PredictionTask task =
      BuildHyperedgePredictionTask(f.history, f.candidates, options).value();
  Dataset train, test;
  ASSERT_TRUE(TrainTestSplit(task.hm26, 0.3, 7, &train, &test).ok());
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(train).ok());
  EXPECT_GT(AucScore(test.labels, clf.PredictAll(test)), 0.6);
}

TEST(FeaturesTest, DeterministicInSeed) {
  const TaskFixture f = MakeFixture(4);
  PredictionTaskOptions options;
  options.seed = 21;
  const PredictionTask a =
      BuildHyperedgePredictionTask(f.history, f.candidates, options).value();
  const PredictionTask b =
      BuildHyperedgePredictionTask(f.history, f.candidates, options).value();
  EXPECT_EQ(a.hm26.features, b.hm26.features);
  EXPECT_EQ(a.hc.features, b.hc.features);
}

TEST(FeaturesTest, BatchedRowsMatchFullGraphPerEdgeOracle) {
  // The pipeline now computes each candidate's HM26 row from its 2-hop
  // neighborhood subgraph on a BatchRunner worker. The free-function
  // kernel over the FULL combined graph is the oracle: reconstruct the
  // combined hypergraph exactly as BuildHyperedgePredictionTask does
  // (history, then real candidates, then fakes from the same seeded
  // perturbation) and demand bit-identical rows.
  const TaskFixture f = MakeFixture(6);
  PredictionTaskOptions options;
  options.seed = 11;
  const PredictionTask task =
      BuildHyperedgePredictionTask(f.history, f.candidates, options).value();

  BuildOptions candidate_build;
  candidate_build.dedup_edges = false;
  candidate_build.num_nodes = f.history.num_nodes();
  const Hypergraph candidate_graph =
      MakeHypergraph(f.candidates, candidate_build).value();
  PerturbOptions perturb;
  perturb.replace_fraction = options.replace_fraction;
  perturb.seed = options.seed;
  const std::vector<std::vector<NodeId>> fakes =
      MakeFakeHyperedges(candidate_graph, perturb).value();

  HypergraphBuilder builder;
  for (EdgeId e = 0; e < f.history.num_edges(); ++e) {
    builder.AddEdge(f.history.edge(e));
  }
  for (const auto& edge : f.candidates) {
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  for (const auto& edge : fakes) {
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  const Hypergraph combined =
      std::move(builder).Build(candidate_build).value();
  const auto projection = ProjectedGraph::Build(combined, 1).value();
  const auto oracle_rows = ComputePerEdgeMotifCounts(combined, projection);

  const size_t base = f.history.num_edges();
  const size_t n = f.candidates.size();
  ASSERT_EQ(task.hm26.size(), 2 * n);
  for (size_t i = 0; i < 2 * n; ++i) {
    for (int t = 0; t < kNumHMotifs; ++t) {
      EXPECT_EQ(task.hm26.features[i][static_cast<size_t>(t)],
                oracle_rows[base + i][t])
          << "candidate " << i << " motif " << t + 1;
    }
  }
}

TEST(FeaturesTest, RowsAreThreadCountInvariant) {
  const TaskFixture f = MakeFixture(7);
  PredictionTaskOptions serial;
  serial.seed = 13;
  serial.num_threads = 1;
  PredictionTaskOptions parallel = serial;
  parallel.num_threads = 4;
  const PredictionTask a =
      BuildHyperedgePredictionTask(f.history, f.candidates, serial).value();
  const PredictionTask b =
      BuildHyperedgePredictionTask(f.history, f.candidates, parallel).value();
  EXPECT_EQ(a.hm26.features, b.hm26.features);
  EXPECT_EQ(a.hm7_feature_indices, b.hm7_feature_indices);
}

TEST(FeaturesTest, RejectsEmptyCandidates) {
  const TaskFixture f = MakeFixture(5);
  EXPECT_FALSE(BuildHyperedgePredictionTask(f.history, {}).ok());
}

}  // namespace
}  // namespace mochy
