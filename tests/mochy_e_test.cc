#include "motif/mochy_e.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <tuple>

#include "hypergraph/builder.h"
#include "motif/enumerate.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph PaperExample() {
  return MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
}

TEST(MochyETest, PaperExampleHasThreeInstances) {
  // Figure 2(d): the triples {e1,e2,e3}, {e1,e2,e4}, {e1,e3,e4} are the
  // connected triples ({e2,e3,e4} is disconnected: e2∩e4=∅, e3∩e4=∅).
  const Hypergraph g = PaperExample();
  const MotifCounts counts = CountMotifsExact(g);
  EXPECT_DOUBLE_EQ(counts.Total(), 3.0);
}

TEST(MochyETest, MatchesBruteForceOnPaperExample) {
  const Hypergraph g = PaperExample();
  const MotifCounts exact = CountMotifsExact(g);
  const MotifCounts brute = testing::BruteForceCounts(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(exact[t], brute[t]) << "motif " << t;
  }
}

class MochyEBruteForceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MochyEBruteForceSweep, MatchesBruteForceOnRandomGraphs) {
  const uint64_t seed = GetParam();
  // Densities vary with the seed to hit sparse and dense regimes.
  const size_t nodes = 10 + (seed % 4) * 10;
  const size_t edges = 15 + (seed % 3) * 10;
  const Hypergraph g = testing::RandomHypergraph(nodes, edges, 1, 6, seed);
  const MotifCounts exact = CountMotifsExact(g);
  const MotifCounts brute = testing::BruteForceCounts(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(exact[t], brute[t]) << "motif " << t << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MochyEBruteForceSweep,
                         ::testing::Range<uint64_t>(0, 12));

TEST(MochyETest, ParallelMatchesSerial) {
  const Hypergraph g = testing::RandomHypergraph(50, 120, 1, 7, 9);
  const MotifCounts serial = CountMotifsExact(g, 1);
  const MotifCounts parallel = CountMotifsExact(g, 4);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(serial[t], parallel[t]) << "motif " << t;
  }
}

TEST(MochyETest, EmptyAndTinyGraphs) {
  auto single = MakeHypergraph({{0, 1, 2}}).value();
  EXPECT_DOUBLE_EQ(CountMotifsExact(single).Total(), 0.0);
  auto pair = MakeHypergraph({{0, 1}, {1, 2}}).value();
  EXPECT_DOUBLE_EQ(CountMotifsExact(pair).Total(), 0.0);
}

TEST(MochyETest, ThreeNestedEdges) {
  // c ⊂ b ⊂ a: d_a, p_ab, t non-empty; d_b=d_c=p_bc=p_ca=0.
  auto g = MakeHypergraph({{0, 1, 2, 3}, {0, 1, 2}, {0, 1}}).value();
  const MotifCounts counts = CountMotifsExact(g);
  EXPECT_DOUBLE_EQ(counts.Total(), 1.0);
  const int id = ClassifyMotif(4, 3, 2, 3, 2, 2, 2);
  EXPECT_DOUBLE_EQ(counts[id], 1.0);
  EXPECT_TRUE(IsClosedMotif(id));
}

TEST(MochyETest, OpenInstanceCountedExactlyOnce) {
  // Chain a-b-c with a ∩ c = ∅ is counted at its hub only.
  auto g = MakeHypergraph({{0, 1}, {1, 2}, {2, 3}}).value();
  const MotifCounts counts = CountMotifsExact(g);
  EXPECT_DOUBLE_EQ(counts.Total(), 1.0);
  EXPECT_DOUBLE_EQ(counts.TotalOpen(), 1.0);
  EXPECT_DOUBLE_EQ(counts[21], 1.0);
}

TEST(MochyETest, ClosedTriangleCountedExactlyOnce) {
  // {0,1},{1,2},{2,0}: every node lies in a pairwise intersection, so no
  // private regions -> motif 23 (triangle with empty core, d = 000).
  auto g = MakeHypergraph({{0, 1}, {1, 2}, {2, 0}}).value();
  const MotifCounts counts = CountMotifsExact(g);
  EXPECT_DOUBLE_EQ(counts.Total(), 1.0);
  EXPECT_DOUBLE_EQ(counts.TotalClosed(), 1.0);
  EXPECT_DOUBLE_EQ(counts[23], 1.0);
}

TEST(MochyETest, GenericTriangleIsMotif26) {
  // Pairwise overlaps, empty core, all private regions non-empty.
  auto g = MakeHypergraph({{0, 1, 10}, {1, 2, 11}, {2, 0, 12}}).value();
  const MotifCounts counts = CountMotifsExact(g);
  EXPECT_DOUBLE_EQ(counts.Total(), 1.0);
  EXPECT_DOUBLE_EQ(counts[26], 1.0);
}

TEST(MochyETest, SkipsTriplesWithDuplicateEdges) {
  // Duplicate hyperedges arise in null-model samples (dedup disabled).
  // Triples containing duplicates match no h-motif (Figure 4) and must be
  // skipped, consistently with the brute-force reference.
  BuildOptions keep;
  keep.dedup_edges = false;
  auto g = MakeHypergraph(
               {{0, 1, 2}, {0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {0, 1, 2}}, keep)
               .value();
  const MotifCounts exact = CountMotifsExact(g);
  const MotifCounts brute = testing::BruteForceCounts(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(exact[t], brute[t]) << "motif " << t;
  }
  // Sanity: the duplicated triple {0,1,4} (three identical edges) and any
  // triple with two copies contribute nothing; distinct-edge triples do.
  EXPECT_GT(exact.Total(), 0.0);
}

TEST(MochyETest, DuplicateEdgeGraphsMatchBruteForceSweep) {
  BuildOptions keep;
  keep.dedup_edges = false;
  for (uint64_t seed = 50; seed < 54; ++seed) {
    // Small node pool + many edges => frequent duplicates.
    Rng rng(seed);
    std::vector<std::vector<NodeId>> edges;
    for (int e = 0; e < 25; ++e) {
      std::vector<NodeId> edge;
      const size_t size = 1 + rng.UniformInt(3);
      for (size_t i = 0; i < size; ++i) {
        edge.push_back(static_cast<NodeId>(rng.UniformInt(6)));
      }
      edges.push_back(edge);
    }
    auto g = MakeHypergraph(edges, keep).value();
    const MotifCounts exact = CountMotifsExact(g);
    const MotifCounts brute = testing::BruteForceCounts(g);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_DOUBLE_EQ(exact[t], brute[t]) << "motif " << t << " seed " << seed;
    }
  }
}

TEST(EnumerateTest, VisitsEveryInstanceOnceWithCorrectMotif) {
  const Hypergraph g = testing::RandomHypergraph(25, 40, 1, 5, 17);
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  const auto instances = CollectInstances(g, p);
  // Total must match the exact count, per-triple must be unique.
  const MotifCounts exact = CountMotifsExact(g, p);
  EXPECT_EQ(static_cast<double>(instances.size()), exact.Total());
  std::set<std::tuple<EdgeId, EdgeId, EdgeId>> seen;
  for (const auto& inst : instances) {
    EdgeId ids[3] = {inst.i, inst.j, inst.k};
    std::sort(ids, ids + 3);
    EXPECT_TRUE(seen.emplace(ids[0], ids[1], ids[2]).second)
        << "instance visited twice";
    EXPECT_GE(inst.motif, 1);
    EXPECT_LE(inst.motif, kNumHMotifs);
  }
}

TEST(EnumerateTest, ParallelVisitsSameInstanceSet) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 23);
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  std::set<std::tuple<EdgeId, EdgeId, EdgeId, int>> serial, parallel;
  EnumerateInstances(g, p, [&](const MotifInstance& inst) {
    EdgeId ids[3] = {inst.i, inst.j, inst.k};
    std::sort(ids, ids + 3);
    serial.emplace(ids[0], ids[1], ids[2], inst.motif);
  });
  std::mutex mu;
  EnumerateInstancesParallel(
      g, p, 4, [&](size_t, const MotifInstance& inst) {
        EdgeId ids[3] = {inst.i, inst.j, inst.k};
        std::sort(ids, ids + 3);
        std::lock_guard<std::mutex> lock(mu);
        parallel.emplace(ids[0], ids[1], ids[2], inst.motif);
      });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace mochy
