// Tests for the deterministic fault-injection framework (common/fault.h)
// and the backoff/retry helper (common/backoff.h): seed reproducibility
// (the property chaos tests lean on), explicit nth/every rules, counter
// bookkeeping, the disarmed fast path, backoff schedule shape, and the
// retry loop's retriable/non-retriable discrimination.
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/fault.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace mochy {
namespace {

// The injector is process-global; every test arms its own plan and
// disarms on the way out so tests stay independent.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultInjectorTest, DisarmedPointsAreInertAndCheap) {
  EXPECT_FALSE(FaultInjector::Armed());
  const FaultAction action = MOCHY_FAULT_POINT("anything");
  EXPECT_TRUE(action.none());
  // Disarmed hits are not even counted: the macro short-circuits on the
  // atomic without touching the injector.
  EXPECT_EQ(FaultInjector::Global().hits("anything"), 0u);
}

TEST_F(FaultInjectorTest, NthRuleFiresExactlyOnce) {
  FaultPlan plan;
  plan.rules.push_back({"io.write", /*nth=*/3, /*every=*/0, FaultError(5)});
  FaultInjector::Global().Arm(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(!MOCHY_FAULT_POINT("io.write").none());
  }
  EXPECT_EQ(fired, std::vector<bool>({false, false, true, false, false,
                                      false}));
  EXPECT_EQ(FaultInjector::Global().hits("io.write"), 6u);
  EXPECT_EQ(FaultInjector::Global().fired("io.write"), 1u);
}

TEST_F(FaultInjectorTest, EveryRuleFiresOnMultiples) {
  FaultPlan plan;
  plan.rules.push_back(
      {"io.read", /*nth=*/0, /*every=*/3, FaultShortIo(1)});
  FaultInjector::Global().Arm(plan);
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    const FaultAction action = MOCHY_FAULT_POINT("io.read");
    if (!action.none()) {
      ++fired;
      EXPECT_EQ(action.kind, FaultAction::Kind::kShortIo);
      EXPECT_EQ(action.max_bytes, 1u);
      EXPECT_EQ(i % 3, 0) << "fired off-schedule at hit " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FaultInjectorTest, RulesAreScopedToTheirPoint) {
  FaultPlan plan;
  plan.rules.push_back({"a", /*nth=*/1, /*every=*/0, FaultError()});
  FaultInjector::Global().Arm(plan);
  EXPECT_TRUE(MOCHY_FAULT_POINT("b").none());
  EXPECT_FALSE(MOCHY_FAULT_POINT("a").none());
  EXPECT_EQ(FaultInjector::Global().hits("b"), 1u);
  EXPECT_EQ(FaultInjector::Global().fired("b"), 0u);
}

TEST_F(FaultInjectorTest, BackgroundRateIsDeterministicPerSeed) {
  // Same seed + same hit sequence => the exact same fire pattern; a
  // different seed gives a different pattern. This is the property that
  // makes a chaos run reproducible from its seed.
  auto run = [](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.rate = 0.2;
    FaultInjector::Global().Arm(plan);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(!MOCHY_FAULT_POINT("chaos.point").none());
    }
    FaultInjector::Global().Disarm();
    return pattern;
  };
  const auto first = run(7);
  const auto second = run(7);
  const auto other = run(8);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectorTest, BackgroundRateFiresNearTheConfiguredRate) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rate = 0.1;
  FaultInjector::Global().Arm(plan);
  for (int i = 0; i < 2000; ++i) (void)MOCHY_FAULT_POINT("p");
  const uint64_t fired = FaultInjector::Global().fired("p");
  // 2000 Bernoulli(0.1) trials: far outside [100, 300] would mean the
  // coin is broken, not unlucky.
  EXPECT_GE(fired, 100u);
  EXPECT_LE(fired, 300u);
  EXPECT_EQ(FaultInjector::Global().total_fired(), fired);
}

TEST_F(FaultInjectorTest, RateStreamsDifferByPoint) {
  FaultPlan plan;
  plan.seed = 9;
  plan.rate = 0.3;
  FaultInjector::Global().Arm(plan);
  std::vector<bool> a, b;
  for (int i = 0; i < 100; ++i) a.push_back(!MOCHY_FAULT_POINT("pa").none());
  for (int i = 0; i < 100; ++i) b.push_back(!MOCHY_FAULT_POINT("pb").none());
  EXPECT_NE(a, b);  // independent per-point streams
}

// ---------------------------------------------------------- backoff --

TEST(BackoffTest, ScheduleGrowsExponentiallyUnderTheCap) {
  BackoffOptions options;
  options.max_attempts = 10;
  options.initial_delay_ms = 10.0;
  options.multiplier = 2.0;
  options.max_delay_ms = 100.0;
  options.jitter = 0.0;  // pure exponential for this test
  Backoff backoff(options);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 10.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 20.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 40.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 80.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 100.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 100.0);
}

TEST(BackoffTest, JitterIsSeededAndBounded) {
  BackoffOptions options;
  options.initial_delay_ms = 100.0;
  options.jitter = 0.5;
  options.seed = 3;
  options.max_attempts = 8;
  Backoff a(options), b(options);
  BackoffOptions other = options;
  other.seed = 4;
  Backoff c(other);
  bool any_difference = false;
  for (int i = 0; i < 6; ++i) {
    const double da = a.NextDelayMs();
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs());  // same seed, same schedule
    if (da != c.NextDelayMs()) any_difference = true;
    // jitter=0.5 scales into [0.5, 1.0] x the capped delay.
    EXPECT_GE(da, 0.5 * 100.0 - 1e-9);
    EXPECT_LE(da, 100.0 * 128.0);
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryTest, SucceedsWithoutRetryingWhenTheFirstTryWorks) {
  int calls = 0;
  int sleeps = 0;
  const Status status = RetryWithBackoff(
      BackoffOptions{}, [&] { ++calls; return Status::OK(); },
      [&](double) { ++sleeps; });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
}

TEST(RetryTest, RetriesRetriableFailuresUntilSuccess) {
  int calls = 0;
  std::vector<double> delays;
  BackoffOptions options;
  options.max_attempts = 5;
  options.jitter = 0.0;
  options.initial_delay_ms = 1.0;
  auto result = RetryWithBackoff(
      options,
      [&]() -> Result<int> {
        ++calls;
        if (calls < 3) return Status::IOError("flaky");
        return 42;
      },
      [&](double ms) { delays.push_back(ms); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(delays, std::vector<double>({1.0, 2.0}));
}

TEST(RetryTest, DoesNotRetryDeterministicFailures) {
  int calls = 0;
  const Status status = RetryWithBackoff(
      BackoffOptions{},
      [&] {
        ++calls;
        return Status::InvalidArgument("wrong, and will stay wrong");
      },
      [](double) { FAIL() << "must not sleep for a non-retriable failure"; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  BackoffOptions options;
  options.max_attempts = 3;
  const Status status = RetryWithBackoff(
      options, [&] { ++calls; return Status::Unavailable("overloaded"); },
      [](double) {});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, RetriableCodesAreTheTransientOnes) {
  EXPECT_TRUE(IsRetriableStatus(Status::IOError("x")));
  EXPECT_TRUE(IsRetriableStatus(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsRetriableStatus(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetriableStatus(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetriableStatus(Status::NotFound("x")));
  EXPECT_FALSE(IsRetriableStatus(Status::Internal("x")));
  EXPECT_FALSE(IsRetriableStatus(Status::OK()));
}

}  // namespace
}  // namespace mochy
