// Golden-value regression tests for the paper's running example
// (Figure 2): the full 26-motif count vector is pinned so refactors of the
// counting stack cannot silently change results. The engine facade, the
// free-function counter and the brute-force reference must all reproduce
// it bit-for-bit.
#include <gtest/gtest.h>

#include <array>

#include "hypergraph/builder.h"
#include "motif/engine.h"
#include "motif/mochy_e.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

// Authors: L=0, K=1, F=2, H=3, B=4, G=5, S=6, R=7.
//   e1 = {L, K, F} (KDD'05),    e2 = {L, H, K} (WWW'10),
//   e3 = {B, G, L} (Science'16), e4 = {S, R, F} (VLDB'87).
Hypergraph Figure2Example() {
  return MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
}

// Figure 2(d): exactly three instances —
//   {e1, e2, e3} -> h-motif 10 (closed via the shared author L),
//   {e1, e2, e4} -> h-motif 21 (open: e2 ∩ e4 = ∅),
//   {e1, e3, e4} -> h-motif 22 (open: e3 ∩ e4 = ∅).
constexpr std::array<double, kNumHMotifs> kFigure2Golden = {
    /* 1-13 */ 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0,
    /* 14-26 */ 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0};

void ExpectGolden(const MotifCounts& counts, const char* label) {
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(counts[t], kFigure2Golden[t - 1])
        << label << ": motif " << t;
  }
}

TEST(Figure2GoldenTest, EngineExactReproducesGoldenCounts) {
  const Hypergraph g = Figure2Example();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  const EngineResult result = engine.Count(options).value();
  ExpectGolden(result.counts, "engine");
  EXPECT_DOUBLE_EQ(result.counts.Total(), 3.0);
  EXPECT_DOUBLE_EQ(result.counts.TotalOpen(), 2.0);
  EXPECT_DOUBLE_EQ(result.counts.TotalClosed(), 1.0);
}

TEST(Figure2GoldenTest, FreeFunctionCounterReproducesGoldenCounts) {
  ExpectGolden(CountMotifsExact(Figure2Example()), "mochy-e");
}

TEST(Figure2GoldenTest, BruteForceReferenceAgreesWithGolden) {
  ExpectGolden(testing::BruteForceCounts(Figure2Example()), "brute-force");
}

TEST(Figure2GoldenTest, GoldenIsThreadCountInvariant) {
  const Hypergraph g = Figure2Example();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ExpectGolden(CountMotifsExact(g, threads), "threads");
  }
}

TEST(Figure2GoldenTest, ProjectionShapeMatchesFigure2) {
  // Figure 2(b): L connects e1-e2, e1-e3, e2-e3; F connects e1-e4.
  const Hypergraph g = Figure2Example();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EXPECT_EQ(engine.projection().num_wedges(), 4u);
  EXPECT_EQ(engine.projection().Weight(0, 1), 2u);  // e1 ∩ e2 = {L, K}
  EXPECT_EQ(engine.projection().Weight(0, 2), 1u);  // e1 ∩ e3 = {L}
  EXPECT_EQ(engine.projection().Weight(0, 3), 1u);  // e1 ∩ e4 = {F}
  EXPECT_EQ(engine.projection().Weight(1, 2), 1u);  // e2 ∩ e3 = {L}
  EXPECT_EQ(engine.projection().Weight(1, 3), 0u);  // disjoint
  EXPECT_EQ(engine.projection().Weight(2, 3), 0u);  // disjoint
}

}  // namespace
}  // namespace mochy
