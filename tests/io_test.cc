#include "hypergraph/io.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mochy {
namespace {

TEST(IoTest, ParsesSpaceSeparated) {
  const auto g = ParseHypergraph("0 1 2\n1 2\n3\n").value();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.edge_size(0), 3u);
}

TEST(IoTest, ParsesCommaAndTabSeparated) {
  const auto g = ParseHypergraph("0,1,2\n3\t4\n").value();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_nodes(), 5u);
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  const auto g =
      ParseHypergraph("# header\n\n% note\n  \n0 1\n# trailing\n").value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoTest, HandlesCrLfAndMissingTrailingNewline) {
  const auto g = ParseHypergraph("0 1\r\n2 3").value();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(IoTest, RejectsNonNumericTokens) {
  const auto result = ParseHypergraph("0 a 2\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(IoTest, RejectsHugeIds) {
  const auto result = ParseHypergraph("99999999999999999999\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(IoTest, EmptyInputYieldsEmptyGraph) {
  const auto g = ParseHypergraph("").value();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_nodes(), 0u);
}

TEST(IoTest, FormatThenParseRoundTrips) {
  const Hypergraph original = testing::RandomHypergraph(30, 40, 1, 6, 5);
  const std::string text = FormatHypergraph(original);
  const Hypergraph parsed = ParseHypergraph(text).value();
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    const auto a = original.edge(e);
    const auto b = parsed.edge(e);
    ASSERT_EQ(a.size(), b.size()) << "edge " << e;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(IoTest, SaveThenLoadRoundTrips) {
  const Hypergraph original = testing::RandomHypergraph(20, 25, 1, 5, 9);
  const testing::ScopedTempDir tmp;
  const std::string path = tmp.Path("io_round_trip.txt");
  ASSERT_TRUE(SaveHypergraph(original, path).ok());
  const Hypergraph loaded = LoadHypergraph(path).value();
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.num_pins(), original.num_pins());
}

TEST(IoTest, LoadMissingFileFails) {
  const auto result = LoadHypergraph("/nonexistent/path/graph.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace mochy
