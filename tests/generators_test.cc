#include "gen/generators.h"

#include <gtest/gtest.h>

#include "gen/perturb.h"
#include "gen/temporal.h"
#include "hypergraph/builder.h"
#include "hypergraph/stats.h"
#include "motif/mochy_e.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

class DomainSweep : public ::testing::TestWithParam<Domain> {};

TEST_P(DomainSweep, ProducesValidNonTrivialHypergraph) {
  GeneratorConfig config = DefaultConfig(GetParam(), 0.3);
  config.seed = 7;
  const Hypergraph g = GenerateDomainHypergraph(config).value();
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_GT(g.num_edges(), config.num_edges / 4)
      << "generator lost too many edges to dedup";
  EXPECT_GT(g.num_pins(), g.num_edges());  // average size > 1
  // The suite must contain h-motif instances to analyze at all.
  EXPECT_GT(CountMotifsExact(g).Total(), 0.0);
}

TEST_P(DomainSweep, DeterministicInSeed) {
  GeneratorConfig config = DefaultConfig(GetParam(), 0.15);
  config.seed = 11;
  const Hypergraph a = GenerateDomainHypergraph(config).value();
  const Hypergraph b = GenerateDomainHypergraph(config).value();
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_pins(), b.num_pins());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto ea = a.edge(e);
    const auto eb = b.edge(e);
    ASSERT_EQ(ea.size(), eb.size());
    EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin()));
  }
  config.seed = 12;
  const Hypergraph c = GenerateDomainHypergraph(config).value();
  EXPECT_TRUE(c.num_edges() != a.num_edges() ||
              c.num_pins() != a.num_pins() || [&] {
                for (EdgeId e = 0; e < a.num_edges(); ++e) {
                  const auto ea = a.edge(e);
                  const auto ec = c.edge(e);
                  if (ea.size() != ec.size() ||
                      !std::equal(ea.begin(), ea.end(), ec.begin())) {
                    return true;
                  }
                }
                return false;
              }());
}

INSTANTIATE_TEST_SUITE_P(Domains, DomainSweep,
                         ::testing::Values(Domain::kCoauthorship,
                                           Domain::kContact, Domain::kEmail,
                                           Domain::kTags, Domain::kThreads));

TEST(GeneratorsTest, RejectsDegenerateConfig) {
  GeneratorConfig config;
  config.num_nodes = 0;
  EXPECT_FALSE(GenerateDomainHypergraph(config).ok());
  config.num_nodes = 10;
  config.num_edges = 0;
  EXPECT_FALSE(GenerateDomainHypergraph(config).ok());
}

TEST(GeneratorsTest, DomainNamesAreStable) {
  EXPECT_EQ(DomainName(Domain::kCoauthorship), "coauth");
  EXPECT_EQ(DomainName(Domain::kContact), "contact");
  EXPECT_EQ(DomainName(Domain::kEmail), "email");
  EXPECT_EQ(DomainName(Domain::kTags), "tags");
  EXPECT_EQ(DomainName(Domain::kThreads), "threads");
}

TEST(GeneratorsTest, BenchmarkSuiteHasElevenDatasetsAcrossFiveDomains) {
  const auto suite = GenerateBenchmarkSuite(3, 0.1);
  EXPECT_EQ(suite.size(), 11u);
  std::set<std::string> domains, names;
  for (const auto& dataset : suite) {
    domains.insert(dataset.domain);
    names.insert(dataset.name);
    EXPECT_TRUE(dataset.graph.Validate().ok()) << dataset.name;
    EXPECT_GT(dataset.graph.num_edges(), 0u) << dataset.name;
  }
  EXPECT_EQ(domains.size(), 5u);
  EXPECT_EQ(names.size(), 11u);
}

TEST(GeneratorsTest, DomainsHaveDistinctSizeProfiles) {
  // Contact stays small and short; email produces some large edges.
  const Hypergraph contact =
      GenerateDomainHypergraph(DefaultConfig(Domain::kContact, 0.4)).value();
  const Hypergraph email =
      GenerateDomainHypergraph(DefaultConfig(Domain::kEmail, 0.4)).value();
  EXPECT_LE(contact.max_edge_size(), 5u);
  EXPECT_GT(email.max_edge_size(), 5u);
}

TEST(TemporalTest, ProducesRequestedYears) {
  TemporalConfig config;
  config.num_years = 5;
  config.num_nodes = 300;
  config.edges_first_year = 80;
  config.edges_last_year = 200;
  const auto years = GenerateTemporalCoauthorship(config).value();
  ASSERT_EQ(years.size(), 5u);
  for (const auto& g : years) {
    EXPECT_TRUE(g.Validate().ok());
    EXPECT_GT(g.num_edges(), 0u);
  }
  // Publication counts grow over the years (dedup may eat a few).
  EXPECT_GT(years.back().num_edges(), years.front().num_edges());
}

TEST(TemporalTest, OpenMotifFractionIncreasesOverYears) {
  TemporalConfig config;
  config.num_years = 9;
  config.num_nodes = 500;
  config.edges_first_year = 250;
  config.edges_last_year = 500;
  config.seed = 5;
  const auto years = GenerateTemporalCoauthorship(config).value();
  auto open_fraction = [](const Hypergraph& g) {
    const MotifCounts counts = CountMotifsExact(g);
    return counts.Total() == 0.0 ? 0.0 : counts.TotalOpen() / counts.Total();
  };
  // Compare first third vs last third averages for robustness.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 3; ++i) {
    early += open_fraction(years[static_cast<size_t>(i)]) / 3.0;
    late += open_fraction(years[years.size() - 1 - static_cast<size_t>(i)]) / 3.0;
  }
  EXPECT_GT(late, early)
      << "cross-community growth should raise the open-motif fraction";
}

TEST(TemporalTest, RejectsDegenerateConfig) {
  TemporalConfig config;
  config.num_years = 0;
  EXPECT_FALSE(GenerateTemporalCoauthorship(config).ok());
  config.num_years = 3;
  config.num_nodes = 2;
  EXPECT_FALSE(GenerateTemporalCoauthorship(config).ok());
}

TEST(PerturbTest, ReplacesRequestedFraction) {
  const Hypergraph g = testing::RandomHypergraph(100, 30, 4, 8, 3);
  PerturbOptions options;
  options.replace_fraction = 0.5;
  const auto fakes = MakeFakeHyperedges(g, options).value();
  ASSERT_EQ(fakes.size(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto original = g.edge(e);
    const auto& fake = fakes[e];
    EXPECT_EQ(fake.size(), original.size()) << "size must be preserved";
    // Overlap with the original should be roughly half.
    const std::set<NodeId> orig_set(original.begin(), original.end());
    size_t kept = 0;
    for (NodeId v : fake) kept += orig_set.count(v);
    EXPECT_LT(kept, original.size()) << "at least one member replaced";
    EXPECT_GE(kept, original.size() / 2 - 1);
    // Members are distinct and sorted.
    for (size_t i = 1; i < fake.size(); ++i) {
      EXPECT_LT(fake[i - 1], fake[i]);
    }
  }
}

TEST(PerturbTest, AlwaysReplacesAtLeastOneMember) {
  const Hypergraph g = testing::RandomHypergraph(50, 20, 1, 3, 4);
  PerturbOptions options;
  options.replace_fraction = 0.0;
  const auto fakes = MakeFakeHyperedges(g, options).value();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto original = g.edge(e);
    const std::set<NodeId> orig_set(original.begin(), original.end());
    size_t kept = 0;
    for (NodeId v : fakes[e]) kept += orig_set.count(v);
    EXPECT_EQ(kept, original.size() - 1);
  }
}

TEST(PerturbTest, RejectsBadFractionAndTinyUniverse) {
  const Hypergraph g = testing::RandomHypergraph(20, 10, 2, 4, 5);
  PerturbOptions options;
  options.replace_fraction = 1.5;
  EXPECT_FALSE(MakeFakeHyperedges(g, options).ok());
  // Universe equal to edge size: nothing to swap in.
  auto full = MakeHypergraph({{0, 1, 2}}).value();
  EXPECT_FALSE(MakeFakeHyperedges(full, PerturbOptions{}).ok());
}

TEST(PerturbTest, DeterministicInSeed) {
  const Hypergraph g = testing::RandomHypergraph(60, 15, 3, 6, 6);
  PerturbOptions options;
  options.seed = 44;
  const auto a = MakeFakeHyperedges(g, options).value();
  const auto b = MakeFakeHyperedges(g, options).value();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mochy
