#include "motif/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "hypergraph/builder.h"
#include "motif/mochy_e.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph PaperExample() {
  // Figure 2: e1={L,K,F}, e2={L,H,K}, e3={B,G,L}, e4={S,R,F}.
  return MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
}

TEST(AlgorithmNameTest, RoundTripsThroughParse) {
  for (Algorithm a : {Algorithm::kExact, Algorithm::kEdgeSample,
                      Algorithm::kLinkSample, Algorithm::kAuto}) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
  }
}

TEST(AlgorithmNameTest, AcceptsPaperAliases) {
  EXPECT_EQ(ParseAlgorithm("mochy-e").value(), Algorithm::kExact);
  EXPECT_EQ(ParseAlgorithm("mochy-a").value(), Algorithm::kEdgeSample);
  EXPECT_EQ(ParseAlgorithm("mochy-a+").value(), Algorithm::kLinkSample);
  EXPECT_FALSE(ParseAlgorithm("mochy-b").ok());
  EXPECT_FALSE(ParseAlgorithm("").ok());
}

TEST(MotifEngineTest, RejectsInvalidSamplingRatio) {
  const Hypergraph g = PaperExample();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.sampling_ratio = 0.0;
  EXPECT_FALSE(engine.Count(options).ok());
  options.sampling_ratio = -0.5;
  EXPECT_FALSE(engine.Count(options).ok());
  options.sampling_ratio = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(engine.Count(options).ok());
  // Oversampling (> 1) is legal: both samplers draw with replacement.
  options.sampling_ratio = 1.5;
  EXPECT_TRUE(engine.Count(options).ok());
  options.sampling_ratio = 0.0;
  options.num_samples = 10;  // explicit sample count bypasses the ratio
  EXPECT_TRUE(engine.Count(options).ok());
  // Exact counting ignores the sampling knobs entirely.
  options.algorithm = Algorithm::kExact;
  options.num_samples = 0;
  options.sampling_ratio = 0.0;
  EXPECT_TRUE(engine.Count(options).ok());
}

TEST(MotifEngineTest, ExactMatchesBruteForceOnRandomGraphs) {
  // Property sweep: the facade's exact mode must agree with the
  // independent O(|E|^3) set-algebra counter on every random graph.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const size_t nodes = 10 + (seed % 4) * 10;
    const size_t edges = 15 + (seed % 3) * 10;
    const Hypergraph g = testing::RandomHypergraph(nodes, edges, 1, 6, seed);
    const MotifEngine engine = MotifEngine::Create(g).value();
    EngineOptions options;
    options.algorithm = Algorithm::kExact;
    const EngineResult result = engine.Count(options).value();
    const MotifCounts brute = testing::BruteForceCounts(g);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_DOUBLE_EQ(result.counts[t], brute[t])
          << "motif " << t << " seed " << seed;
    }
    EXPECT_EQ(result.stats.algorithm, Algorithm::kExact);
    EXPECT_EQ(result.stats.samples_used, 0u);
    EXPECT_DOUBLE_EQ(result.stats.relative_variance, 0.0);
  }
}

TEST(MotifEngineTest, ExactIsThreadCountInvariant) {
  const Hypergraph g = testing::RandomHypergraph(40, 90, 1, 6, 11);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  const EngineResult serial = engine.Count(options).value();
  options.num_threads = 4;
  const EngineResult parallel = engine.Count(options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(serial.counts[t], parallel.counts[t]) << "motif " << t;
  }
}

TEST(MotifEngineTest, SamplingModesAreDeterministicInSeed) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 3);
  const MotifEngine engine = MotifEngine::Create(g).value();
  for (Algorithm a : {Algorithm::kEdgeSample, Algorithm::kLinkSample}) {
    EngineOptions options;
    options.algorithm = a;
    options.num_samples = 200;
    options.seed = 99;
    const EngineResult once = engine.Count(options).value();
    options.num_threads = 4;  // per-sample RNG fork: threads don't matter
    const EngineResult again = engine.Count(options).value();
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_DOUBLE_EQ(once.counts[t], again.counts[t])
          << AlgorithmName(a) << " motif " << t;
    }
  }
}

TEST(MotifEngineTest, SamplingModesConvergeToExact) {
  // With the whole population sampled many times over, both unbiased
  // estimators must land close to the exact counts (fixed seeds keep this
  // deterministic; tolerance covers the residual sampling noise).
  const Hypergraph g = testing::RandomHypergraph(25, 45, 1, 5, 7);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions exact_options;
  exact_options.algorithm = Algorithm::kExact;
  const MotifCounts exact = engine.Count(exact_options).value().counts;
  ASSERT_GT(exact.Total(), 0.0);

  for (Algorithm a : {Algorithm::kEdgeSample, Algorithm::kLinkSample}) {
    EngineOptions options;
    options.algorithm = a;
    options.num_samples = 60000;
    options.seed = 5;
    const EngineResult result = engine.Count(options).value();
    EXPECT_LT(result.counts.RelativeError(exact), 0.05)
        << AlgorithmName(a) << " did not converge";
    EXPECT_EQ(result.stats.samples_used, 60000u);
  }
}

TEST(MotifEngineTest, VarianceEstimateShrinksWithMoreSamples) {
  const Hypergraph g = testing::RandomHypergraph(20, 35, 1, 5, 13);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.estimate_variance = true;
  options.num_samples = 100;
  const double coarse =
      engine.Count(options).value().stats.relative_variance;
  options.num_samples = 1000;
  const double fine = engine.Count(options).value().stats.relative_variance;
  EXPECT_GT(coarse, 0.0);
  EXPECT_LT(fine, coarse);
  // Var ~ 1/r (Theorems 2 and 4): 10x the samples => ~10x smaller.
  EXPECT_NEAR(coarse / fine, 10.0, 2.0);
}

TEST(MotifEngineTest, AutoPicksExactOnSmallInputs) {
  const Hypergraph g = PaperExample();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;  // algorithm = kAuto
  const EngineResult result = engine.Count(options).value();
  EXPECT_EQ(result.stats.algorithm, Algorithm::kExact);
  EXPECT_EQ(engine.ResolveAuto(options), Algorithm::kExact);
  const MotifCounts brute = testing::BruteForceCounts(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(result.counts[t], brute[t]) << "motif " << t;
  }
}

TEST(MotifEngineTest, MatchesFreeFunctionExactCounter) {
  const Hypergraph g = testing::RandomHypergraph(35, 70, 1, 6, 29);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  const EngineResult facade = engine.Count(options).value();
  const MotifCounts direct = CountMotifsExact(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(facade.counts[t], direct[t]) << "motif " << t;
  }
}

TEST(MotifEngineTest, HandlesEmptyAndWedgeFreeGraphs) {
  // A single hyperedge has no wedges: sampling modes must return all-zero
  // estimates instead of dividing by zero.
  auto single = MakeHypergraph({{0, 1, 2}}).value();
  const MotifEngine engine = MotifEngine::Create(single).value();
  for (Algorithm a : {Algorithm::kExact, Algorithm::kEdgeSample,
                      Algorithm::kLinkSample, Algorithm::kAuto}) {
    EngineOptions options;
    options.algorithm = a;
    options.num_samples = 10;
    const EngineResult result = engine.Count(options).value();
    EXPECT_DOUBLE_EQ(result.counts.Total(), 0.0) << AlgorithmName(a);
  }
}

TEST(MotifEngineTest, StatsReportWedgesAndElapsedTime) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 31);
  const MotifEngine engine = MotifEngine::Create(g).value();
  const EngineResult result = engine.Count().value();
  EXPECT_EQ(result.stats.num_wedges, engine.projection().num_wedges());
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
  const std::string report = result.stats.ToString();
  EXPECT_NE(report.find("algorithm="), std::string::npos);
  EXPECT_NE(report.find("elapsed="), std::string::npos);
}

}  // namespace
}  // namespace mochy
