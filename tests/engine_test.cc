#include "motif/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "hypergraph/builder.h"
#include "motif/mochy_e.h"
#include "motif/mochy_weighted.h"
#include "motif/per_edge.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph PaperExample() {
  // Figure 2: e1={L,K,F}, e2={L,H,K}, e3={B,G,L}, e4={S,R,F}.
  return MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
}

TEST(AlgorithmNameTest, RoundTripsThroughParse) {
  for (Algorithm a : {Algorithm::kExact, Algorithm::kEdgeSample,
                      Algorithm::kLinkSample, Algorithm::kWeighted,
                      Algorithm::kAuto}) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
  }
}

TEST(AlgorithmNameTest, AcceptsPaperAliases) {
  EXPECT_EQ(ParseAlgorithm("mochy-e").value(), Algorithm::kExact);
  EXPECT_EQ(ParseAlgorithm("mochy-a").value(), Algorithm::kEdgeSample);
  EXPECT_EQ(ParseAlgorithm("mochy-a+").value(), Algorithm::kLinkSample);
  EXPECT_EQ(ParseAlgorithm("mochy-a+w").value(), Algorithm::kWeighted);
  EXPECT_FALSE(ParseAlgorithm("mochy-b").ok());
  EXPECT_FALSE(ParseAlgorithm("").ok());
}

TEST(MotifEngineTest, RejectsInvalidSamplingRatio) {
  const Hypergraph g = PaperExample();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.sampling_ratio = 0.0;
  EXPECT_FALSE(engine.Count(options).ok());
  options.sampling_ratio = -0.5;
  EXPECT_FALSE(engine.Count(options).ok());
  options.sampling_ratio = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(engine.Count(options).ok());
  // Oversampling (> 1) is legal: both samplers draw with replacement.
  options.sampling_ratio = 1.5;
  EXPECT_TRUE(engine.Count(options).ok());
  options.sampling_ratio = 0.0;
  options.num_samples = 10;  // explicit sample count bypasses the ratio
  EXPECT_TRUE(engine.Count(options).ok());
  // Exact counting ignores the sampling knobs entirely.
  options.algorithm = Algorithm::kExact;
  options.num_samples = 0;
  options.sampling_ratio = 0.0;
  EXPECT_TRUE(engine.Count(options).ok());
}

TEST(MotifEngineTest, ExactMatchesBruteForceOnRandomGraphs) {
  // Property sweep: the facade's exact mode must agree with the
  // independent O(|E|^3) set-algebra counter on every random graph.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const size_t nodes = 10 + (seed % 4) * 10;
    const size_t edges = 15 + (seed % 3) * 10;
    const Hypergraph g = testing::RandomHypergraph(nodes, edges, 1, 6, seed);
    const MotifEngine engine = MotifEngine::Create(g).value();
    EngineOptions options;
    options.algorithm = Algorithm::kExact;
    const EngineResult result = engine.Count(options).value();
    const MotifCounts brute = testing::BruteForceCounts(g);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_DOUBLE_EQ(result.counts[t], brute[t])
          << "motif " << t << " seed " << seed;
    }
    EXPECT_EQ(result.stats.algorithm, Algorithm::kExact);
    EXPECT_EQ(result.stats.samples_used, 0u);
    EXPECT_DOUBLE_EQ(result.stats.relative_variance, 0.0);
  }
}

TEST(MotifEngineTest, ExactIsThreadCountInvariant) {
  const Hypergraph g = testing::RandomHypergraph(40, 90, 1, 6, 11);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  const EngineResult serial = engine.Count(options).value();
  options.num_threads = 4;
  const EngineResult parallel = engine.Count(options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(serial.counts[t], parallel.counts[t]) << "motif " << t;
  }
}

TEST(MotifEngineTest, SamplingModesAreDeterministicInSeed) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 3);
  const MotifEngine engine = MotifEngine::Create(g).value();
  for (Algorithm a : {Algorithm::kEdgeSample, Algorithm::kLinkSample}) {
    EngineOptions options;
    options.algorithm = a;
    options.num_samples = 200;
    options.seed = 99;
    const EngineResult once = engine.Count(options).value();
    options.num_threads = 4;  // per-sample RNG fork: threads don't matter
    const EngineResult again = engine.Count(options).value();
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_DOUBLE_EQ(once.counts[t], again.counts[t])
          << AlgorithmName(a) << " motif " << t;
    }
  }
}

TEST(MotifEngineTest, SamplingModesConvergeToExact) {
  // With the whole population sampled many times over, both unbiased
  // estimators must land close to the exact counts (fixed seeds keep this
  // deterministic; tolerance covers the residual sampling noise).
  const Hypergraph g = testing::RandomHypergraph(25, 45, 1, 5, 7);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions exact_options;
  exact_options.algorithm = Algorithm::kExact;
  const MotifCounts exact = engine.Count(exact_options).value().counts;
  ASSERT_GT(exact.Total(), 0.0);

  for (Algorithm a : {Algorithm::kEdgeSample, Algorithm::kLinkSample}) {
    EngineOptions options;
    options.algorithm = a;
    options.num_samples = 60000;
    options.seed = 5;
    const EngineResult result = engine.Count(options).value();
    EXPECT_LT(result.counts.RelativeError(exact), 0.05)
        << AlgorithmName(a) << " did not converge";
    EXPECT_EQ(result.stats.samples_used, 60000u);
  }
}

TEST(MotifEngineTest, VarianceEstimateShrinksWithMoreSamples) {
  const Hypergraph g = testing::RandomHypergraph(20, 35, 1, 5, 13);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.estimate_variance = true;
  options.num_samples = 100;
  const double coarse =
      engine.Count(options).value().stats.relative_variance;
  options.num_samples = 1000;
  const double fine = engine.Count(options).value().stats.relative_variance;
  EXPECT_GT(coarse, 0.0);
  EXPECT_LT(fine, coarse);
  // Var ~ 1/r (Theorems 2 and 4): 10x the samples => ~10x smaller.
  EXPECT_NEAR(coarse / fine, 10.0, 2.0);
}

TEST(MotifEngineTest, AutoPicksExactOnSmallInputs) {
  const Hypergraph g = PaperExample();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;  // algorithm = kAuto
  const EngineResult result = engine.Count(options).value();
  EXPECT_EQ(result.stats.algorithm, Algorithm::kExact);
  EXPECT_EQ(engine.ResolveAuto(options), Algorithm::kExact);
  const MotifCounts brute = testing::BruteForceCounts(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(result.counts[t], brute[t]) << "motif " << t;
  }
}

TEST(MotifEngineTest, MatchesFreeFunctionExactCounter) {
  const Hypergraph g = testing::RandomHypergraph(35, 70, 1, 6, 29);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  const EngineResult facade = engine.Count(options).value();
  const MotifCounts direct = CountMotifsExact(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(facade.counts[t], direct[t]) << "motif " << t;
  }
}

TEST(MotifEngineTest, HandlesEmptyAndWedgeFreeGraphs) {
  // A single hyperedge has no wedges: sampling modes must return all-zero
  // estimates instead of dividing by zero.
  auto single = MakeHypergraph({{0, 1, 2}}).value();
  const MotifEngine engine = MotifEngine::Create(single).value();
  for (Algorithm a : {Algorithm::kExact, Algorithm::kEdgeSample,
                      Algorithm::kLinkSample, Algorithm::kWeighted,
                      Algorithm::kAuto}) {
    EngineOptions options;
    options.algorithm = a;
    options.num_samples = 10;
    const EngineResult result = engine.Count(options).value();
    EXPECT_DOUBLE_EQ(result.counts.Total(), 0.0) << AlgorithmName(a);
  }
}

// Random hypergraph with a skewed size distribution and deliberate
// duplicate edges kept (dedup off) — the weighted sampler's alias table
// and the per-edge credit assignment must both survive duplicates.
Hypergraph SkewedDuplicateGraph(uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder builder;
  std::vector<std::vector<NodeId>> added;
  for (size_t e = 0; e < 50; ++e) {
    if (!added.empty() && rng.UniformInt(4) == 0) {
      const auto& dup = added[rng.UniformInt(added.size())];
      builder.AddEdge(std::span<const NodeId>(dup.data(), dup.size()));
      added.push_back(dup);
      continue;
    }
    const size_t size = std::min<uint64_t>(rng.Zipf(6, 1.2) + 1, 25);
    const auto ids = rng.SampleDistinct(25, size);
    std::vector<NodeId> edge(ids.begin(), ids.end());
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
    added.push_back(std::move(edge));
  }
  BuildOptions options;
  options.dedup_edges = false;
  options.num_nodes = 25;
  return std::move(builder).Build(options).value();
}

TEST(MotifEngineWeightedTest, BitIdenticalToFreeFunctionAtEveryThreadCount) {
  // kWeighted must be a promotion, not a reimplementation: at 1, 2, and
  // the default thread count the facade's estimates are bit-identical to
  // the pre-existing CountMotifsWeightedWedge kernel with the same
  // sample budget and seed (the kernel is single-threaded by design, so
  // the thread knob may never leak into the results).
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph g = SkewedDuplicateGraph(seed);
    const MotifEngine engine = MotifEngine::Create(g).value();
    MochyWeightedOptions direct_options;
    direct_options.num_samples = 500;
    direct_options.seed = 40 + seed;
    const MochyWeightedResult direct =
        CountMotifsWeightedWedge(g, direct_options).value();
    for (size_t threads : {size_t{1}, size_t{2}, size_t{0}}) {
      EngineOptions options;
      options.algorithm = Algorithm::kWeighted;
      options.num_samples = 500;
      options.seed = 40 + seed;
      options.num_threads = threads;
      const EngineResult facade = engine.Count(options).value();
      for (int t = 1; t <= kNumHMotifs; ++t) {
        EXPECT_EQ(facade.counts[t], direct.counts[t])
            << "motif " << t << " seed " << seed << " threads " << threads;
      }
      EXPECT_EQ(facade.stats.algorithm, Algorithm::kWeighted);
      EXPECT_EQ(facade.stats.samples_used, 500u);
      EXPECT_EQ(facade.stats.num_threads, 1u);  // kernel is single-threaded
    }
  }
}

TEST(MotifEngineWeightedTest, DeterministicInSeedAndRatioDrivesBudget) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 17);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kWeighted;
  options.num_samples = 300;
  options.seed = 9;
  const EngineResult once = engine.Count(options).value();
  const EngineResult again = engine.Count(options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(once.counts[t], again.counts[t]) << "motif " << t;
  }
  // With num_samples unset the budget derives from ratio * |wedges|,
  // exactly like the other samplers.
  options.num_samples = 0;
  options.sampling_ratio = 0.5;
  const EngineResult derived = engine.Count(options).value();
  const uint64_t expected = static_cast<uint64_t>(
      0.5 * static_cast<double>(engine.num_wedges()));
  EXPECT_EQ(derived.stats.samples_used, std::max<uint64_t>(1, expected));
}

TEST(MotifEngineWeightedTest, RejectsVarianceEstimation) {
  // Theorems 2 and 4 cover MoCHy-A/A+ only; the weighted estimator has
  // no closed-form variance, so asking for one is an error, not a 0.
  const Hypergraph g = PaperExample();
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kWeighted;
  options.num_samples = 10;
  options.estimate_variance = true;
  const auto result = engine.Count(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MotifEngineWeightedTest, RunsProjectionFreeOnLazyEngines) {
  // The weighted sampler never touches the projection, so it must work
  // on a lazy engine and agree bit-for-bit with the materialized path.
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 23);
  EngineOptions create;
  create.projection = ProjectionPolicy::kLazy;
  create.algorithm = Algorithm::kLinkSample;
  const MotifEngine lazy = MotifEngine::Create(g, create).value();
  const MotifEngine materialized = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kWeighted;
  options.num_samples = 400;
  options.seed = 3;
  const EngineResult from_lazy = lazy.Count(options).value();
  const EngineResult from_materialized = materialized.Count(options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(from_lazy.counts[t], from_materialized.counts[t])
        << "motif " << t;
  }
}

TEST(MotifEngineWeightedTest, CanonicalizeAndCacheKey) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 29);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions options;
  options.algorithm = Algorithm::kWeighted;
  options.num_samples = 123;
  options.seed = 7;
  options.num_threads = 8;          // scheduling knob: canonicalized away
  options.estimate_variance = true; // unsupported: forced off in the key
  const EngineOptions canonical = engine.Canonicalize(options);
  EXPECT_EQ(canonical.algorithm, Algorithm::kWeighted);
  EXPECT_EQ(canonical.num_samples, 123u);
  EXPECT_EQ(canonical.seed, 7u);
  EXPECT_EQ(canonical.num_threads, 0u);
  EXPECT_FALSE(canonical.estimate_variance);
  const std::string key = EngineOptionsCacheKey(canonical);
  EXPECT_NE(key.find("alg=weighted"), std::string::npos) << key;
  EXPECT_NE(key.find("samples=123"), std::string::npos) << key;
  EXPECT_NE(key.find("seed=7"), std::string::npos) << key;
  // kAuto never resolves to the weighted estimator; it must be opted
  // into explicitly.
  EngineOptions auto_options;
  EXPECT_NE(engine.ResolveAuto(auto_options), Algorithm::kWeighted);
}

TEST(MotifEnginePerEdgeTest, MatchesFreeFunctionRowsExactly) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph g = SkewedDuplicateGraph(100 + seed);
    const MotifEngine engine = MotifEngine::Create(g).value();
    const PerEdgeResult result = engine.CountPerEdge().value();
    const auto oracle = ComputePerEdgeMotifCounts(g, engine.projection());
    ASSERT_EQ(result.rows.size(), g.num_edges());
    ASSERT_EQ(oracle.size(), g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      for (int m = 0; m < kNumHMotifs; ++m) {
        EXPECT_EQ(result.rows[e][m], oracle[e][m])
            << "edge " << e << " motif " << m + 1 << " seed " << seed;
      }
    }
  }
}

TEST(MotifEnginePerEdgeTest, ColumnsSumToThriceGlobalCounts) {
  // Every instance has exactly 3 member edges, so summing any motif's
  // column over all edges triple-counts the global total — integer
  // arithmetic in doubles, so the identity is exact, not approximate.
  const Hypergraph g = testing::RandomHypergraph(35, 70, 1, 6, 41);
  const MotifEngine engine = MotifEngine::Create(g).value();
  const PerEdgeResult per_edge = engine.CountPerEdge().value();
  const MotifCounts global = engine.Count().value().counts;
  for (int m = 0; m < kNumHMotifs; ++m) {
    double column = 0.0;
    for (const auto& row : per_edge.rows) column += row[m];
    EXPECT_EQ(column, 3.0 * global[m + 1]) << "motif " << m + 1;
  }
}

TEST(MotifEnginePerEdgeTest, BitIdenticalAtEveryThreadCount) {
  const Hypergraph g = testing::RandomHypergraph(40, 90, 1, 6, 43);
  const MotifEngine engine = MotifEngine::Create(g).value();
  EngineOptions serial;
  serial.num_threads = 1;
  const PerEdgeResult baseline = engine.CountPerEdge(serial).value();
  for (size_t threads : {size_t{2}, size_t{0}}) {
    EngineOptions options;
    options.num_threads = threads;
    const PerEdgeResult result = engine.CountPerEdge(options).value();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      for (int m = 0; m < kNumHMotifs; ++m) {
        EXPECT_EQ(result.rows[e][m], baseline.rows[e][m])
            << "edge " << e << " motif " << m + 1 << " threads " << threads;
      }
    }
  }
}

TEST(MotifEnginePerEdgeTest, RequiresMaterializedProjection) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 47);
  EngineOptions create;
  create.projection = ProjectionPolicy::kLazy;
  create.algorithm = Algorithm::kLinkSample;
  const MotifEngine lazy = MotifEngine::Create(g, create).value();
  const auto result = lazy.CountPerEdge();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MotifEngineTest, StatsReportWedgesAndElapsedTime) {
  const Hypergraph g = testing::RandomHypergraph(30, 60, 1, 5, 31);
  const MotifEngine engine = MotifEngine::Create(g).value();
  const EngineResult result = engine.Count().value();
  EXPECT_EQ(result.stats.num_wedges, engine.projection().num_wedges());
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
  const std::string report = result.stats.ToString();
  EXPECT_NE(report.find("algorithm="), std::string::npos);
  EXPECT_NE(report.find("elapsed="), std::string::npos);
}

}  // namespace
}  // namespace mochy
